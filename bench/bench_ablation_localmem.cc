/**
 * @file
 * Ablation: local-memory fraction x replacement policy for the
 * memory-blade design (extends paper Figure 4b).
 *
 * Sweeps the local fraction from 6.25% to 50% under all three
 * replacement policies and reports the PCIe-x4 slowdown per workload,
 * locating where the paper's "25% local is nearly free" claim breaks.
 */

#include <iostream>

#include "memblade/latency.hh"
#include "util/table.hh"

using namespace wsc;
using namespace wsc::memblade;

int
main()
{
    std::cout << "=== Ablation: local-memory fraction x replacement "
                 "policy (PCIe x4 slowdowns) ===\n\n";
    const std::uint64_t n = 1500000;
    for (auto kind :
         {PolicyKind::Random, PolicyKind::Lru, PolicyKind::Clock}) {
        std::cout << "Policy: " << to_string(kind) << "\n";
        Table t({"Local fraction", "websearch", "webmail", "ytube",
                 "mapred-wc", "mapred-wr"});
        for (double f : {0.0625, 0.125, 0.25, 0.5}) {
            std::vector<std::string> row{fmtPct(f, 2)};
            for (auto b : workloads::allBenchmarks) {
                auto prof = profileFor(b);
                auto st = replayProfile(prof, f, kind, n, 42);
                row.push_back(fmtPct(
                    slowdown(st, prof, RemoteLink::pcieX4()), 1));
            }
            t.addRow(std::move(row));
        }
        t.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
