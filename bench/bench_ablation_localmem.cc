/**
 * @file
 * Ablation: local-memory fraction x replacement policy for the
 * memory-blade design (extends paper Figure 4b).
 *
 * Sweeps the local fraction from 6.25% to 50% under all three
 * replacement policies and reports the PCIe-x4 slowdown per workload,
 * locating where the paper's "25% local is nearly free" claim breaks.
 */

#include <iostream>

#include "memblade/latency.hh"
#include "memblade/stack_distance.hh"
#include "util/table.hh"

using namespace wsc;
using namespace wsc::memblade;

int
main()
{
    std::cout << "=== Ablation: local-memory fraction x replacement "
                 "policy (PCIe x4 slowdowns) ===\n\n";
    const std::uint64_t n = 1500000;
    const std::vector<double> fractions{0.0625, 0.125, 0.25, 0.5};
    for (auto kind :
         {PolicyKind::Random, PolicyKind::Lru, PolicyKind::Clock}) {
        std::cout << "Policy: " << to_string(kind) << "\n";
        Table t({"Local fraction", "websearch", "webmail", "ytube",
                 "mapred-wc", "mapred-wr"});
        // LRU: the whole fraction sweep falls out of one stack-
        // distance pass per workload; random/clock replay per cell.
        std::vector<std::vector<ReplayStats>> cols;
        for (auto b : workloads::allBenchmarks) {
            auto prof = profileFor(b);
            if (kind == PolicyKind::Lru) {
                cols.push_back(
                    replayProfileSweep(prof, fractions, n, 42));
            } else {
                std::vector<ReplayStats> col;
                for (double f : fractions)
                    col.push_back(replayProfile(prof, f, kind, n, 42));
                cols.push_back(std::move(col));
            }
        }
        for (std::size_t fi = 0; fi < fractions.size(); ++fi) {
            std::vector<std::string> row{fmtPct(fractions[fi], 2)};
            std::size_t w = 0;
            for (auto b : workloads::allBenchmarks) {
                auto prof = profileFor(b);
                row.push_back(fmtPct(slowdown(cols[w][fi], prof,
                                              RemoteLink::pcieX4()),
                                     1));
                ++w;
            }
            t.addRow(std::move(row));
        }
        t.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
