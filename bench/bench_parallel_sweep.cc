/**
 * @file
 * Parallel design-space evaluation: serial vs N-thread wall-clock.
 *
 * Runs the full 216-design screening sweep (the stage-1 scan of
 * bench_design_space) twice — once on a single thread, once on the
 * requested pool width — verifies the two produce bit-identical
 * metrics, and reports the speedup. Also microbenchmarks the DES
 * kernel's dispatch and cancel-heavy throughput, the fast path the
 * generation-stamped event queue targets.
 *
 * Emits machine-readable BENCH_parallel_sweep.json (schema documented
 * in README.md) so later PRs can track the perf trajectory.
 */

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include <optional>

#include "core/design_space.hh"
#include "sim/event_queue.hh"
#include "util/args.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace wsc;
using namespace wsc::core;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Exact double equality across two metric sets (bitwise identity is
 * the determinism contract, not approximate agreement). */
bool
bitIdentical(const std::vector<EfficiencyMetrics> &a,
             const std::vector<EfficiencyMetrics> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::memcmp(&a[i].perf, &b[i].perf, sizeof(double)) ||
            std::memcmp(&a[i].watts, &b[i].watts, sizeof(double)) ||
            std::memcmp(&a[i].tcoDollars, &b[i].tcoDollars,
                        sizeof(double)))
            return false;
    }
    return true;
}

/** Pure schedule/dispatch churn: the kernel's common case. */
double
dispatchEventsPerSec()
{
    sim::EventQueue eq;
    std::uint64_t sink = 0;
    const int rounds = 200, burst = 1024;
    auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < rounds; ++r) {
        for (int i = 0; i < burst; ++i)
            eq.scheduleAfter(double(i), [&sink] { ++sink; });
        eq.runAll();
    }
    return double(sink) / secondsSince(start);
}

/**
 * Cancel-heavy churn modeled on the QoS-timer pattern: every request
 * schedules a deadline event that is almost always cancelled before
 * firing. Dispatched events are the denominator — the cancelled
 * bookkeeping is pure overhead the fast path must absorb.
 */
double
cancelHeavyEventsPerSec()
{
    sim::EventQueue eq;
    std::uint64_t sink = 0;
    const int rounds = 200, burst = 1024;
    auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < rounds; ++r) {
        std::vector<sim::EventId> deadlines;
        deadlines.reserve(burst);
        for (int i = 0; i < burst; ++i) {
            eq.scheduleAfter(double(i), [&sink] { ++sink; });
            deadlines.push_back(
                eq.scheduleAfter(1e6 + double(i), [&sink] { ++sink; }));
        }
        // 15/16 deadlines met: cancel before the timer fires.
        for (int i = 0; i < burst; ++i)
            if (i % 16 != 0)
                eq.cancel(deadlines[std::size_t(i)]);
        eq.runAll();
    }
    return double(eq.dispatched()) / secondsSince(start);
}

} // namespace

int
run(int argc, char **argv)
{
    ArgParser args("bench_parallel_sweep",
                   "serial vs parallel design-space sweep, with DES "
                   "kernel microbenchmarks");
    args.addOption("threads",
                   "pool width for the parallel run "
                   "(0 = hardware concurrency / WSC_THREADS)",
                   "0")
        .addOption("benchmark",
                   "workload swept per design; websearch exercises "
                   "the full sustainable-rate search, mapred-wc is "
                   "the quick batch screen",
                   "websearch")
        .addOption("out", "JSON output path",
                   "BENCH_parallel_sweep.json");
    if (!args.parse(argc, argv))
        return 0;

    double threadsArg = args.getDouble("threads");
    if (threadsArg < 0 || threadsArg > 4096)
        fatal("--threads must be in [0, 4096]");
    unsigned threads = unsigned(threadsArg);
    if (threads == 0)
        threads = ThreadPool::defaultThreads();
    unsigned hw = std::thread::hardware_concurrency();

    EvaluatorParams params;
    params.search.window.warmupSeconds = 4.0;
    params.search.window.measureSeconds = 20.0;
    params.search.iterations = 7;

    auto designs = enumerateDesigns();
    std::optional<workloads::Benchmark> chosen;
    for (auto b : workloads::allBenchmarks)
        if (workloads::to_string(b) == args.get("benchmark"))
            chosen = b;
    if (!chosen)
        fatal("unknown benchmark '" + args.get("benchmark") + "'");
    auto benchmark = *chosen;

    std::cout << "=== Parallel sweep: " << designs.size()
              << " designs x " << workloads::to_string(benchmark)
              << " ===\n\n";

    // Untimed warmup: pays the one-time lazy initialization (platform
    // catalogs, calibration tables, allocator growth) so neither
    // timed run is charged for it.
    ThreadPool serialPool(1);
    {
        DesignEvaluator warmup(params);
        evaluateSweep(warmup, designs, benchmark, &serialPool);
    }

    // Serial reference: a one-thread pool, fresh evaluator (cold
    // cache), wall-clocked.
    DesignEvaluator serialEval(params);
    auto t0 = std::chrono::steady_clock::now();
    auto serial =
        evaluateSweep(serialEval, designs, benchmark, &serialPool);
    double serialSec = secondsSince(t0);

    // Parallel run: same work, N-thread pool, fresh evaluator.
    ThreadPool pool(threads);
    DesignEvaluator parallelEval(params);
    t0 = std::chrono::steady_clock::now();
    auto parallel =
        evaluateSweep(parallelEval, designs, benchmark, &pool);
    double parallelSec = secondsSince(t0);

    bool identical = bitIdentical(serial.metrics, parallel.metrics);
    double speedup = serialSec / parallelSec;

    double dispatchEps = dispatchEventsPerSec();
    double cancelEps = cancelHeavyEventsPerSec();

    Table t({"Configuration", "Wall-clock (s)", "Cells/s"});
    t.addRow({"serial (1 thread)", fmtF(serialSec, 3),
              fmtF(double(designs.size()) / serialSec, 1)});
    t.addRow({"parallel (" + std::to_string(threads) + " threads)",
              fmtF(parallelSec, 3),
              fmtF(double(designs.size()) / parallelSec, 1)});
    t.addSeparator();
    t.addRow({"speedup", fmtF(speedup, 2) + "x",
              identical ? "bit-identical" : "MISMATCH"});
    t.print(std::cout);

    std::cout << "\nDES kernel: " << fmtF(dispatchEps / 1e6, 2)
              << "M events/s dispatch, " << fmtF(cancelEps / 1e6, 2)
              << "M events/s under 15/16 cancel load\n";
    if (hw < 2) {
        std::cout << "\nNote: only " << std::max(hw, 1u)
                  << " hardware thread(s) visible; speedup is "
                     "bounded by the machine, not the engine.\n";
    }

    std::ostringstream json;
    json.setf(std::ios::fixed);
    json.precision(6);
    json << "{\n"
         << "  \"bench\": \"parallel_sweep\",\n"
         << "  \"schema_version\": 1,\n"
         << "  \"config\": {\n"
         << "    \"designs\": " << designs.size() << ",\n"
         << "    \"benchmark\": \""
         << workloads::to_string(benchmark) << "\",\n"
         << "    \"base_seed\": " << params.seed << ",\n"
         << "    \"threads\": " << threads << ",\n"
         << "    \"hardware_threads\": " << hw << "\n"
         << "  },\n"
         << "  \"serial_seconds\": " << serialSec << ",\n"
         << "  \"parallel_seconds\": " << parallelSec << ",\n"
         << "  \"speedup\": " << speedup << ",\n"
         << "  \"bit_identical\": "
         << (identical ? "true" : "false") << ",\n"
         << "  \"event_queue\": {\n"
         << "    \"dispatch_events_per_sec\": " << dispatchEps
         << ",\n"
         << "    \"cancel_heavy_events_per_sec\": " << cancelEps
         << "\n"
         << "  }\n"
         << "}\n";

    std::ofstream out(args.get("out"));
    out << json.str();
    std::cout << "\nWrote " << args.get("out") << "\n";

    return identical ? 0 : 1;
}

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
