/**
 * @file
 * Ablation: memory-blade sharing limits under PCIe link contention.
 *
 * The paper amortizes the blade over "multiple servers" and notes its
 * trace methodology ignores PCIe link contention. This bench closes
 * the loop: for each workload, how many servers can share one blade
 * before queueing pushes the slowdown past 1.5x its uncontended value,
 * and how the per-blade channel count moves that limit.
 */

#include <iostream>

#include "memblade/contention.hh"
#include "util/table.hh"

using namespace wsc;
using namespace wsc::memblade;

int
main()
{
    std::cout << "=== Ablation: servers per memory blade under link "
                 "contention ===\n\n";
    const std::uint64_t n = 1500000;
    auto link = RemoteLink::pcieX4();

    Table t({"Workload", "Uncontended slowdown",
             "Max servers (1 ch)", "Max servers (2 ch)",
             "Max servers (4 ch)"});
    // Saved for the utilization table below (same replay parameters).
    ReplayStats websearch_stats;
    for (auto b : workloads::allBenchmarks) {
        auto prof = profileFor(b);
        auto st = replayProfile(prof, 0.25, PolicyKind::Random, n, 42);
        if (b == workloads::Benchmark::Websearch)
            websearch_stats = st;
        double base = contendedSlowdown(st, prof, link, 1,
                                        BladeLinkParams{});
        std::vector<std::string> row{prof.name, fmtPct(base, 2)};
        if (base <= 0.0) {
            // No steady-state remote traffic (webmail's working set
            // fits the local tier): sharing is unconstrained.
            for (int i = 0; i < 3; ++i)
                row.push_back("unbounded");
        } else {
            double budget = 1.5 * base;
            for (unsigned ch : {1u, 2u, 4u}) {
                BladeLinkParams p;
                p.channels = ch;
                row.push_back(std::to_string(maxServersPerBlade(
                    st, prof, link, budget, p, 4096)));
            }
        }
        t.addRow(std::move(row));
    }
    t.print(std::cout);

    std::cout << "\nBlade utilization vs sharers (websearch):\n";
    auto prof = profileFor(workloads::Benchmark::Websearch);
    const auto &st = websearch_stats;
    double per_server = st.warmMissRate() * prof.touchesPerSecond;
    Table u({"Servers", "Fetches/s", "Utilization", "Mean wait (us)",
             "Slowdown"});
    for (unsigned servers : {1u, 8u, 16u, 32u, 40u}) {
        auto c = analyzeContention(per_server * servers,
                                   BladeLinkParams{}, link);
        u.addRow({std::to_string(servers),
                  fmtF(per_server * servers, 0),
                  fmtPct(c.utilization),
                  c.stable ? fmtF(c.meanWaitSeconds * 1e6, 2) : "inf",
                  c.stable ? fmtPct(contendedSlowdown(
                                        st, prof, link, servers,
                                        BladeLinkParams{}),
                                    2)
                           : "unstable"});
    }
    u.print(std::cout);
    return 0;
}
