/**
 * @file
 * google-benchmark microbenchmarks of the fault-injection subsystem.
 *
 * The headline bound: an availability run with an EMPTY fault spec
 * must cost essentially the same as the degraded-mode client loop
 * alone — the injector registers no units and schedules nothing, so
 * BM_Availability/none vs BM_Availability/all separates the protocol's
 * fixed cost from the fault machinery. Compare the closed-loop pairs
 * the same way: with the request timer off, the classic driver's event
 * sequence is untouched, so BM_ClosedLoop/classic and
 * BM_ClosedLoop/timer-off must agree within noise (<2%).
 *
 * Run with --benchmark_repetitions for CI-grade comparisons.
 */

#include <benchmark/benchmark.h>

#include "faults/availability_sim.hh"
#include "perfsim/closed_loop.hh"
#include "perfsim/perf_eval.hh"
#include "platform/catalog.hh"
#include "workloads/suite.hh"
#include "workloads/ytube.hh"

using namespace wsc;

namespace {

perfsim::StationConfig
websearchStations()
{
    perfsim::PerfEvaluator perf;
    auto server = platform::makeSystem(platform::SystemClass::Emb1);
    auto workload =
        workloads::makeBenchmark(workloads::Benchmark::Websearch);
    return perf.stationsFor(server, workload->traits(), {});
}

faults::AvailabilityParams
availParams(bool injected)
{
    faults::AvailabilityParams p;
    p.servers = 4;
    p.horizonSeconds = 60.0;
    p.epochSeconds = 5.0;
    p.offeredRps = 200.0;
    p.seed = 7;
    if (injected) {
        p.injector.spec = faults::FaultSpec::all();
        p.injector.spec.mttfScale = 1e-6;
        p.injector.memoryBlade = true;
    }
    return p;
}

void
BM_Availability(benchmark::State &state, bool injected)
{
    auto st = websearchStations();
    auto workload =
        workloads::makeBenchmark(workloads::Benchmark::Websearch);
    auto &iw =
        dynamic_cast<workloads::InteractiveWorkload &>(*workload);
    auto p = availParams(injected);
    std::uint64_t events = 0;
    for (auto _ : state) {
        auto r = faults::simulateAvailability(iw, st, p);
        events += r.kernel.dispatched;
        benchmark::DoNotOptimize(r.availability);
    }
    state.SetItemsProcessed(std::int64_t(events));
}

void
BM_AvailabilityNone(benchmark::State &state)
{
    BM_Availability(state, false);
}
BENCHMARK(BM_AvailabilityNone);

void
BM_AvailabilityAll(benchmark::State &state)
{
    BM_Availability(state, true);
}
BENCHMARK(BM_AvailabilityAll);

void
BM_InjectorZeroFaultSetup(benchmark::State &state)
{
    // Construction + start() with an empty spec: the entire fixed
    // price a zero-fault run pays for carrying the injector.
    for (auto _ : state) {
        sim::EventQueue eq;
        faults::FaultInjector inj(eq, faults::InjectorConfig{}, 64);
        inj.start();
        benchmark::DoNotOptimize(inj.upCount());
    }
}
BENCHMARK(BM_InjectorZeroFaultSetup);

void
BM_ClosedLoop(benchmark::State &state, double timeoutSeconds)
{
    perfsim::PerfEvaluator perf;
    workloads::Ytube yt;
    auto st = perf.stationsFor(
        platform::makeSystem(platform::SystemClass::Srvr2), yt.traits(),
        {});
    perfsim::ClosedLoopParams p;
    p.epochSeconds = 5.0;
    p.epochs = 6;
    p.requestTimeoutSeconds = timeoutSeconds;
    for (auto _ : state) {
        Rng rng(11);
        auto r = perfsim::runClosedLoop(yt, st, p, rng);
        benchmark::DoNotOptimize(r.sustainedRps);
    }
}

void
BM_ClosedLoopClassic(benchmark::State &state)
{
    BM_ClosedLoop(state, 0.0);
}
BENCHMARK(BM_ClosedLoopClassic);

void
BM_ClosedLoopTimerArmed(benchmark::State &state)
{
    // Generous timeout: timers are scheduled and cancelled but almost
    // never fire, pricing the protocol bookkeeping itself.
    BM_ClosedLoop(state, 1e3);
}
BENCHMARK(BM_ClosedLoopTimerArmed);

} // namespace

BENCHMARK_MAIN();
