/**
 * @file
 * Reproduces paper Table 2: the six systems under study.
 */

#include <iostream>
#include <sstream>

#include "cost/tco.hh"
#include "platform/catalog.hh"
#include "util/table.hh"

using namespace wsc;
using namespace wsc::platform;

int
main()
{
    std::cout << "=== Table 2: summary of systems considered ===\n\n";
    cost::TcoModel model(cost::RackCostParams{}, power::RackPowerParams{},
                         cost::BurdenedPowerParams{});

    Table t({"System", "Similar to", "System features", "Watt",
             "Inf-$"});
    for (const auto &s : allSystems()) {
        std::ostringstream feats;
        feats << s.cpu.sockets << "p x " << s.cpu.coresPerSocket
              << " cores, " << s.cpu.freqGHz << " GHz, "
              << (s.cpu.outOfOrder ? "OoO" : "in-order") << ", "
              << s.cpu.l1KB << "K/";
        if (s.cpu.l2KB >= 1024)
            feats << (s.cpu.l2KB / 1024) << "MB";
        else
            feats << s.cpu.l2KB << "K";
        feats << " L1/L2";
        auto r = model.evaluate(s.hardwareCost(), s.hardwarePower());
        t.addRow({s.name, s.cpu.similarTo, feats.str(),
                  fmtF(s.totalWatts(), 0),
                  fmtDollars(r.infrastructure())});
    }
    t.print(std::cout);
    std::cout << "\nPaper: srvr1 340W/$3,294; srvr2 215W/$1,689; desk "
                 "135W/$849; mobl 78W/$989; emb1 52W/$499; emb2 "
                 "35W/$379.\n";

    std::cout << "\nPlatform peripherals:\n";
    Table p({"System", "Memory", "Disk", "NIC"});
    for (const auto &s : allSystems()) {
        p.addRow({s.name,
                  fmtF(s.memory.capacityGB, 0) + " GB " +
                      to_string(s.memory.tech),
                  to_string(s.disk.cls), fmtF(s.nic.gbps, 0) + " GbE"});
    }
    p.print(std::cout);
    return 0;
}
