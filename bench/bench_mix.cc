/**
 * @file
 * Workload mixes: design recommendations for heterogeneous
 * datacenters (extends the paper's uniform harmonic mean).
 *
 * For each deployment shape (search-, mail-, media-, batch-heavy, and
 * uniform), evaluates the candidate designs against the srvr1
 * baseline and names the Perf/TCO-$ winner — turning Figure 5's
 * "webmail degrades" caveat into a selection boundary.
 */

#include <iostream>

#include "core/mix.hh"
#include "memblade/hybrid.hh"
#include "util/table.hh"

using namespace wsc;
using namespace wsc::core;

int
main()
{
    std::cout << "=== Workload-mix design recommendations "
                 "(Perf/TCO-$ vs srvr1) ===\n\n";
    EvaluatorParams params;
    params.search.window.warmupSeconds = 4.0;
    params.search.window.measureSeconds = 20.0;
    params.search.iterations = 7;
    DesignEvaluator ev(params);

    auto baseline = DesignConfig::baseline(platform::SystemClass::Srvr1);
    std::vector<DesignConfig> candidates{
        DesignConfig::baseline(platform::SystemClass::Srvr2),
        DesignConfig::baseline(platform::SystemClass::Desk),
        DesignConfig::baseline(platform::SystemClass::Emb1),
        DesignConfig::n1(), DesignConfig::n2()};

    struct NamedMix {
        std::string name;
        WorkloadMix mix;
    };
    std::vector<NamedMix> mixes{
        {"uniform", WorkloadMix::uniform()},
        {"search-heavy", WorkloadMix::searchHeavy()},
        {"mail-heavy", WorkloadMix::mailHeavy()},
        {"media-heavy", WorkloadMix::mediaHeavy()},
        {"batch-heavy", WorkloadMix::batchHeavy()},
    };

    Table t({"Mix", "srvr2", "desk", "emb1", "N1", "N2", "Winner"});
    for (const auto &nm : mixes) {
        std::vector<std::string> row{nm.name};
        for (const auto &d : candidates) {
            auto rel = mixRelative(ev, d, baseline, nm.mix);
            row.push_back(fmtPct(rel.perfPerTcoDollar));
        }
        auto choice = bestDesignFor(ev, candidates, baseline, nm.mix,
                                    Metric::PerfPerTcoDollar);
        row.push_back(choice.bestName);
        t.addRow(std::move(row));
    }
    t.print(std::cout);

    std::cout << "\n--- Hybrid DRAM/flash blade (Section 3.4 "
                 "follow-on) on emb1 memory economics ---\n";
    auto emb1 = platform::makeSystem(platform::SystemClass::Emb1);
    auto prof = memblade::profileFor(workloads::Benchmark::Websearch);
    Table h({"Blade organization", "Memory $", "Memory W",
             "websearch slowdown"});
    {
        auto plain = memblade::applyMemorySharing(
            emb1, memblade::BladeParams{},
            memblade::Provisioning::Static);
        auto st = memblade::replayProfile(
            prof, 0.25, memblade::PolicyKind::Random, 2000000, 42);
        h.addRow({"all-DRAM blade",
                  fmtDollars(plain.memoryDollars),
                  fmtF(plain.memoryWatts, 2),
                  fmtPct(memblade::slowdown(
                             st, prof, memblade::RemoteLink::pcieX4()),
                         1)});
    }
    for (double dram : {0.5, 0.25, 0.1}) {
        memblade::HybridParams hp;
        hp.dramTierFraction = dram;
        auto cost = memblade::applyHybridSharing(
            emb1, memblade::BladeParams{},
            memblade::Provisioning::Static, hp);
        auto stats = memblade::replayHybrid(
            prof, 0.25, hp, memblade::PolicyKind::Random, 2000000, 42);
        h.addRow({"hybrid, " + fmtPct(dram) + " DRAM tier",
                  fmtDollars(cost.memoryDollars),
                  fmtF(cost.memoryWatts, 2),
                  fmtPct(memblade::hybridSlowdown(stats, prof, hp),
                         1)});
    }
    h.print(std::cout);
    std::cout << "\nFlash-backing the blade halves the memory line "
                 "item but punishes websearch, the most blade-"
                 "intensive workload; low-traffic workloads (webmail, "
                 "mapreduce) would keep the saving nearly for free. A "
                 "50% DRAM tier is the balanced point.\n";
    return 0;
}
