/**
 * @file
 * Reproduces paper Table 3: flash as disk cache with low-power disks.
 *
 * (a) The flash and disk parameter listing.
 * (b) Net cost and power efficiencies of the storage options on the
 *     emb1 deployment target, relative to the local desktop disk.
 */

#include <iostream>

#include "core/design.hh"
#include "core/evaluator.hh"
#include "core/report.hh"
#include "flashcache/io_trace.hh"
#include "flashcache/storage.hh"
#include "util/table.hh"

using namespace wsc;
using namespace wsc::flashcache;

int
main()
{
    std::cout << "=== Table 3(a): flash and disk parameters ===\n\n";
    Table a({"Device", "Bandwidth", "Access time", "Capacity", "Power",
             "Price"});
    FlashSpec flash;
    a.addRow({"Flash", fmtF(flash.bandwidthMBs, 0) + " MB/s",
              fmtF(flash.readLatencyUs, 0) + " us rd / " +
                  fmtF(flash.writeLatencyUs, 0) + " us wr / " +
                  fmtF(flash.eraseLatencyMs, 1) + " ms er",
              fmtF(flash.capacityGB, 0) + " GB",
              fmtF(flash.watts, 1) + " W", fmtDollars(flash.dollars)});
    for (auto d : {laptopDisk(), laptop2Disk(), desktopDisk()}) {
        a.addRow({to_string(d.cls) + (d.remote ? " (remote)" : " (local)"),
                  fmtF(d.bandwidthMBs, 0) + " MB/s",
                  fmtF(d.avgAccessMs, 0) + " ms avg",
                  fmtF(d.capacityGB, 0) + " GB",
                  fmtF(d.watts, 0) + " W", fmtDollars(d.dollars)});
    }
    a.print(std::cout);

    std::cout << "\n--- Flash-cache behaviour per workload (1 GB cache) "
                 "---\n";
    Table fc({"Workload", "Flash hit rate", "Lifetime (years)"});
    for (auto b : workloads::allBenchmarks) {
        auto out = evaluateFlashCache(b, flash, 2000000, 5.0e6, 777);
        fc.addRow({workloads::to_string(b), fmtPct(out.hitRate, 1),
                   fmtF(out.lifetimeYears, 1)});
    }
    fc.print(std::cout);
    std::cout << "\n(100k program/erase cycles; the 3-year depreciation "
                 "window is the paper's viability bar.)\n";

    std::cout << "\n=== Table 3(b): net cost and power efficiencies "
                 "(emb1, vs local desktop disk) ===\n\n";
    core::EvaluatorParams params;
    params.search.window.warmupSeconds = 5.0;
    params.search.window.measureSeconds = 30.0;
    params.search.iterations = 8;
    core::DesignEvaluator ev(params);

    auto base =
        core::DesignConfig::baseline(platform::SystemClass::Emb1);
    Table b({"Disk type", "Perf/Inf-$", "Perf/Watt", "Perf/TCO-$",
             "HMean perf"});
    for (const auto &opt :
         {StorageOption::remoteLaptop(), StorageOption::remoteLaptopFlash(),
          StorageOption::remoteLaptop2Flash()}) {
        auto design = base;
        design.name = "emb1 " + opt.name;
        design.storage = opt;
        auto agg = ev.aggregateRelative(design, base);
        b.addRow({opt.name, fmtPct(agg.perfPerInfDollar),
                  fmtPct(agg.perfPerWatt), fmtPct(agg.perfPerTcoDollar),
                  fmtPct(agg.perf)});
    }
    b.print(std::cout);
    std::cout << "\nPaper: remote laptop 93/100/96%; + flash "
                 "99/109/104%; laptop-2 + flash 110/109/110%.\n";
    return 0;
}
