/**
 * @file
 * Reproduces paper Figure 3: the new cooling architectures.
 *
 * Quantifies the dual-entry enclosure and aggregated micro-blade
 * cooling: per-design cooling efficiency, gain over the conventional
 * baseline (paper: ~2X and ~4X), rack density (40 / 320 / ~1250
 * systems), the heat-pipe aggregation analysis, and the Section 3.2
 * rack-power comparison (13.6 kW vs 2.7 kW class).
 */

#include <iostream>

#include "platform/catalog.hh"
#include "power/rack_power.hh"
#include "thermal/cooling_cost.hh"
#include "thermal/enclosure.hh"
#include "util/table.hh"

using namespace wsc;
using namespace wsc::thermal;

int
main()
{
    std::cout << "=== Figure 3: packaging and cooling designs ===\n\n";

    Table t({"Design", "Flow len (m)", "DeltaT (K)", "W/server",
             "Systems/rack", "Cooling eff (W/W)", "Gain vs conv"});
    for (auto d :
         {PackagingDesign::Conventional1U, PackagingDesign::DualEntry,
          PackagingDesign::AggregatedMicroblade}) {
        auto m = makeEnclosure(d);
        t.addRow({to_string(d), fmtF(m.flowLengthM, 2),
                  fmtF(m.allowableDeltaT, 1),
                  fmtF(m.serverPowerBudgetW, 0),
                  std::to_string(m.systemsPerRack()),
                  fmtF(m.coolingEfficiency(), 0),
                  fmtF(coolingGainOverBaseline(d), 2) + "x"});
    }
    t.print(std::cout);
    std::cout << "\nPaper: 40 -> 320 (dual-entry, 40 x 75 W blades per "
                 "5U) -> ~1250 systems/rack; cooling-efficiency "
                 "improvements of ~2X and ~4X.\n";

    std::cout << "\n--- Aggregated cooling analysis (heat pipe at 3x "
                 "copper + shared sink) ---\n";
    auto a = analyzeAggregation(4);
    Table agg({"Configuration", "Max W per 25 W module"});
    agg.addRow({"Discrete copper spreader + private sink",
                fmtF(a.discreteMaxW, 1)});
    agg.addRow({"Heat pipe + aggregated sink (4 modules)",
                fmtF(a.aggregatedMaxW, 1)});
    agg.print(std::cout);

    std::cout << "\n--- Burdened-cost impact of the cooling designs "
                 "---\n";
    cost::BurdenedPowerParams base;
    Table burden({"Design", "L1 (cooling load)", "Burden multiplier"});
    for (auto d :
         {PackagingDesign::Conventional1U, PackagingDesign::DualEntry,
          PackagingDesign::AggregatedMicroblade}) {
        auto p = applyCooling(base, d);
        burden.addRow({to_string(d), fmtF(p.l1, 3),
                       fmtF(p.burdenMultiplier(), 3)});
    }
    burden.print(std::cout);

    std::cout << "\n--- Section 3.2 rack-power comparison ---\n";
    Table rp({"System", "Rack power (kW, 40 servers + switch)"});
    for (auto cls :
         {platform::SystemClass::Srvr1, platform::SystemClass::Emb1}) {
        auto s = platform::makeSystem(cls);
        power::RackPower r(s.hardwarePower(), power::RackPowerParams{});
        rp.addRow({s.name, fmtF(r.rackWatts() / 1000.0, 2)});
    }
    rp.print(std::cout);
    std::cout << "\nPaper: srvr1 13.6 kW/rack; emb1 ~2.7 kW/rack.\n";
    return 0;
}
