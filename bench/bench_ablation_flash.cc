/**
 * @file
 * Ablation: flash cache size sweep and wear accounting.
 *
 * The paper fixes a 1 GB flash disk cache; this bench sweeps the
 * capacity and reports per-workload hit rates and projected device
 * lifetime against the 3-year depreciation window (the wear-out
 * concern of Section 3.5).
 */

#include <iostream>

#include "flashcache/io_trace.hh"
#include "util/table.hh"

using namespace wsc;
using namespace wsc::flashcache;

int
main()
{
    std::cout << "=== Ablation: flash cache capacity sweep ===\n\n";
    const std::uint64_t accesses = 1500000;
    const std::vector<double> capacities{0.25, 0.5, 1.0, 2.0, 4.0};
    for (auto b : workloads::allBenchmarks) {
        std::cout << workloads::to_string(b) << ":\n";
        Table t({"Flash GB", "Hit rate", "Lifetime (years)",
                 "Viable for 3-yr depreciation"});
        // All capacities from one stack-distance pass over the trace.
        std::vector<FlashSpec> specs;
        for (double gb : capacities) {
            FlashSpec spec;
            spec.capacityGB = gb;
            specs.push_back(spec);
        }
        auto outs = evaluateFlashCacheSweep(b, specs, accesses, 5.0e6,
                                            99);
        for (std::size_t i = 0; i < specs.size(); ++i) {
            const auto &out = outs[i];
            t.addRow({fmtF(capacities[i], 2), fmtPct(out.hitRate, 1),
                      fmtF(out.lifetimeYears, 1),
                      out.lifetimeYears >= 3.0 ? "yes" : "no"});
        }
        t.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
