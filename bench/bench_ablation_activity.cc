/**
 * @file
 * Ablation: sensitivity of the TCO picture to the activity factor.
 *
 * The paper de-rates nameplate power with an activity factor of 0.75
 * and reports that results for 0.5-1.0 are qualitatively similar
 * (Section 2.2). This bench sweeps the factor and reports the emb1 vs
 * srvr1 Perf/TCO-$ ratio (the study's key comparison) at each point.
 */

#include <iostream>

#include "core/design.hh"
#include "core/evaluator.hh"
#include "util/table.hh"

using namespace wsc;
using namespace wsc::core;

int
main()
{
    std::cout << "=== Ablation: activity factor sweep (0.5 - 1.0) "
                 "===\n\n";
    Table t({"Activity factor", "srvr1 TCO", "emb1 TCO",
             "emb1/srvr1 Perf/TCO-$ (mapred-wc)"});
    for (double af : {0.5, 0.625, 0.75, 0.875, 1.0}) {
        EvaluatorParams params;
        params.burden.activityFactor = af;
        DesignEvaluator ev(params);
        auto s1 = DesignConfig::baseline(platform::SystemClass::Srvr1);
        auto e1 = DesignConfig::baseline(platform::SystemClass::Emb1);
        auto m_s1 = ev.evaluate(s1, workloads::Benchmark::MapredWc);
        auto m_e1 = ev.evaluate(e1, workloads::Benchmark::MapredWc);
        auto r = relativeTo(m_e1, m_s1);
        t.addRow({fmtF(af, 3), fmtDollars(m_s1.tcoDollars),
                  fmtDollars(m_e1.tcoDollars),
                  fmtPct(r.perfPerTcoDollar)});
    }
    t.print(std::cout);
    std::cout << "\nThe embedded platform's advantage holds across the "
                 "whole range (paper: \"qualitatively similar\").\n";
    return 0;
}
