/**
 * @file
 * Reproduces paper Figure 5: cost and power efficiencies of the two
 * unified designs (N1, N2) against srvr1, plus the Section 3.6
 * comparison against srvr2 and desk baselines.
 */

#include <iostream>

#include "core/design.hh"
#include "core/evaluator.hh"
#include "core/report.hh"

using namespace wsc;
using namespace wsc::core;

int
main()
{
    std::cout << "=== Figure 5: unified designs N1 and N2 (relative to "
                 "srvr1) ===\n\n";
    EvaluatorParams params;
    params.search.window.warmupSeconds = 5.0;
    params.search.window.measureSeconds = 30.0;
    params.search.iterations = 8;
    DesignEvaluator ev(params);

    auto srvr1 = DesignConfig::baseline(platform::SystemClass::Srvr1);
    std::vector<DesignConfig> designs{DesignConfig::n1(),
                                      DesignConfig::n2()};

    for (auto metric : {Metric::PerfPerInfDollar, Metric::PerfPerWatt,
                        Metric::PerfPerTcoDollar}) {
        relativeTable(ev, designs, srvr1, metric).print(std::cout);
        std::cout << "\n";
    }
    std::cout
        << "Paper: Perf/TCO-$ improves ~1.5X (N1) and ~2X (N2) at the "
           "harmonic mean;\n2X-3.5X (N1) and 3.5X-6X (N2) on ytube and "
           "mapreduce; websearch gains 10-70%;\nwebmail degrades (~40% "
           "N1, ~20% N2).\n";

    std::cout << "\n=== Section 3.6: N1/N2 against srvr2 and desk "
                 "baselines (Perf/TCO-$) ===\n\n";
    for (auto cls :
         {platform::SystemClass::Srvr2, platform::SystemClass::Desk}) {
        auto base = DesignConfig::baseline(cls);
        std::cout << "Baseline " << base.name << ":\n";
        relativeTable(ev, designs, base, Metric::PerfPerTcoDollar)
            .print(std::cout);
        std::cout << "\n";
    }
    std::cout << "Paper: N2 averages 1.8-2X over srvr2/desk; ytube and "
                 "mapreduce reach 2.5-4.1X (vs srvr2) and 1.7-2.5X (vs "
                 "desk).\n";
    return 0;
}
