/**
 * @file
 * Design-space exploration: the full platform x packaging x memory x
 * storage cross product (216 designs), screened on the batch
 * benchmarks, with the Pareto frontier (mapreduce capability vs
 * 3-year TCO) evaluated on the full suite.
 *
 * This is the architect's view the paper's hand-picked N1/N2 points
 * come from: where do they sit on the frontier, and what else is on
 * it?
 */

#include <iostream>

#include "core/design_space.hh"
#include "core/evaluator.hh"
#include "core/report.hh"
#include "util/table.hh"

using namespace wsc;
using namespace wsc::core;

int
main()
{
    std::cout << "=== Design-space exploration (216 designs) ===\n\n";
    EvaluatorParams params;
    params.search.window.warmupSeconds = 4.0;
    params.search.window.measureSeconds = 20.0;
    params.search.iterations = 7;
    DesignEvaluator ev(params);

    auto designs = enumerateDesigns();
    auto baseline = DesignConfig::baseline(platform::SystemClass::Srvr1);

    // Stage 1: screen on the fast batch benchmark, fanned out over
    // the global thread pool (WSC_THREADS overrides the width).
    auto sweep =
        evaluateSweep(ev, designs, workloads::Benchmark::MapredWc);
    const auto &perf = sweep.perf;
    const auto &tco = sweep.tco;
    auto frontier = paretoFrontier(perf, tco);
    std::cout << "Pareto frontier (mapred-wc capability vs per-server "
                 "TCO): "
              << frontier.size() << " of " << designs.size()
              << " designs\n\n";

    Table t({"Design", "TCO-$", "mapred-wc perf (rel srvr1)",
             "Suite HMean Perf/TCO-$ (rel srvr1)"});
    auto base_m =
        ev.evaluate(baseline, workloads::Benchmark::MapredWc);
    for (auto idx : frontier) {
        // Full-suite aggregate only for the survivors (the expensive
        // interactive searches run here).
        auto agg = ev.aggregateRelative(designs[idx], baseline);
        t.addRow({designs[idx].name, fmtDollars(tco[idx]),
                  fmtPct(perf[idx] / base_m.perf),
                  fmtPct(agg.perfPerTcoDollar)});
    }
    t.print(std::cout);

    std::cout << "\nWhere the paper's unified designs sit:\n";
    Table n({"Design", "On frontier?", "Suite HMean Perf/TCO-$"});
    for (const auto &named : {std::string("mobl/dual-entry"),
                              std::string("emb1/aggregated-microblade/"
                                          "mem-dynamic/laptop-flash")}) {
        std::size_t idx = designs.size();
        for (std::size_t i = 0; i < designs.size(); ++i)
            if (designs[i].name == named)
                idx = i;
        if (idx == designs.size())
            continue;
        bool on = false;
        for (auto f : frontier)
            on |= (f == idx);
        auto agg = ev.aggregateRelative(designs[idx], baseline);
        n.addRow({named + (named.find("mobl") == 0 ? " (= N1)" :
                                                     " (= N2)"),
                  on ? "yes" : "no",
                  fmtPct(agg.perfPerTcoDollar)});
    }
    n.print(std::cout);
    return 0;
}
