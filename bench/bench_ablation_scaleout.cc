/**
 * @file
 * Ablation: Amdahl/USL limits on scale-out (paper Section 4).
 *
 * N1/N2 reach their Perf/TCO-$ advantage by deploying more, weaker
 * nodes. This bench applies the Universal Scalability Law to quantify
 * when that stops being free: the penalized performance ratio of each
 * design at a 100-node baseline cluster across contention levels, and
 * the break-even serial fraction at which each design's measured
 * Perf/TCO-$ advantage is fully erased.
 */

#include <iostream>

#include "core/cluster.hh"
#include "core/scaleout.hh"
#include "util/table.hh"

using namespace wsc;
using namespace wsc::core;

int
main()
{
    std::cout << "=== Ablation: scale-out friction (USL) ===\n\n";
    EvaluatorParams eval;
    eval.search.window.warmupSeconds = 5.0;
    eval.search.window.measureSeconds = 30.0;
    eval.search.iterations = 8;
    DesignEvaluator ev(eval);
    auto srvr1 = DesignConfig::baseline(platform::SystemClass::Srvr1);
    const double baseline_nodes = 100.0;

    for (auto design : {DesignConfig::n1(), DesignConfig::n2()}) {
        auto agg = ev.aggregateRelative(design, srvr1);
        double ratio = agg.perf;
        double advantage = agg.perfPerTcoDollar;
        std::cout << design.name << ": per-node perf "
                  << fmtPct(ratio) << " of srvr1 -> needs "
                  << fmtF(1.0 / ratio, 1)
                  << "x the nodes; nominal Perf/TCO-$ advantage "
                  << fmtPct(advantage) << "\n";
        Table t({"sigma (serial fraction)", "penalized perf ratio",
                 "surviving advantage"});
        for (double sigma : {0.0, 0.0005, 0.001, 0.002, 0.005, 0.01}) {
            ScaleOutParams p{sigma, 0.0};
            double pen =
                penalizedPerfRatio(ratio, baseline_nodes, p);
            t.addRow({fmtF(sigma, 4), fmtPct(pen),
                      fmtPct(advantage * pen / ratio)});
        }
        t.addSeparator();
        double brk = breakEvenSigma(ratio, baseline_nodes, advantage);
        t.addRow({"break-even sigma", fmtF(brk, 4), "100%"});
        t.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "Reading: the ensemble advantage survives realistic "
                 "contention (sigma well below 1%) but a strongly "
                 "serial workload erases it - the paper's caveat, "
                 "quantified.\n";
    return 0;
}
