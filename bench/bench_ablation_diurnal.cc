/**
 * @file
 * Ablation: time-of-day load and ensemble power policies (paper
 * Section 4 future work, after Fan et al.).
 *
 * Compares one day of ensemble energy for srvr1- and emb1-class
 * clusters sized for the same peak, under the three power policies,
 * on the internet-service diurnal profile.
 */

#include <iostream>

#include "core/diurnal.hh"
#include "cost/burdened_power.hh"
#include "platform/catalog.hh"
#include "util/table.hh"

using namespace wsc;
using namespace wsc::core;

int
main()
{
    std::cout << "=== Ablation: diurnal load and power policies "
                 "===\n\n";
    auto profile = DiurnalProfile::internetService();
    std::cout << "Profile mean load: " << fmtPct(profile.meanLoad())
              << " of peak\n\n";

    // emb1 needs ~3.7x the servers of srvr1 for equal peak capacity
    // (Figure 2c harmonic mean); size both for the same peak.
    struct Fleet {
        std::string name;
        unsigned servers;
        double watts;
    };
    auto s1 = platform::makeSystem(platform::SystemClass::Srvr1);
    auto e1 = platform::makeSystem(platform::SystemClass::Emb1);
    std::vector<Fleet> fleets{
        {"srvr1 x 1000", 1000, s1.totalWatts() + 1.0},
        {"emb1 x 3700", 3700, e1.totalWatts() + 1.0},
    };

    cost::BurdenedPowerParams burden;
    double burdened_per_kwh =
        burden.burdenMultiplier() * burden.tariffPerMWh / 1000.0;

    for (const auto &f : fleets) {
        std::cout << f.name << " (" << fmtF(f.watts, 0)
                  << " W/server):\n";
        EnsembleEnergyParams params;
        params.servers = f.servers;
        params.wattsPerServer = f.watts;
        Table t({"Policy", "kWh/day", "Mean active servers",
                 "Savings vs always-on", "Burdened $/day"});
        for (auto policy :
             {PowerPolicy::AlwaysOn, PowerPolicy::ConsolidateIdle,
              PowerPolicy::PowerOff}) {
            auto e = dailyEnergy(profile, policy, params);
            t.addRow({to_string(policy), fmtF(e.kWhPerDay, 0),
                      fmtF(e.meanActiveServers, 0),
                      fmtPct(e.savingsVsAlwaysOn, 1),
                      fmtDollars(e.kWhPerDay * burdened_per_kwh)});
        }
        t.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "Reading: with non-energy-proportional servers, "
                 "consolidation without power-off saves ~nothing; "
                 "power-off recovers most of the trough. The paper's "
                 "sustained-peak methodology therefore bounds, rather "
                 "than measures, daily energy.\n";
    return 0;
}
