/**
 * @file
 * Reproduces paper Figure 4: the memory-sharing architecture.
 *
 * (b) Two-level memory slowdowns under random replacement, at 25% and
 *     12.5% local memory, for the PCIe x4 (4 us) link and the
 *     critical-block-first optimization.
 * (c) Net cost and power efficiencies of the static and dynamic
 *     provisioning schemes on the emb1 deployment target (assumed 2%
 *     slowdown, remote DRAM 24% cheaper and in active power-down).
 */

#include <cmath>
#include <iostream>

#include "core/design.hh"
#include "core/evaluator.hh"
#include "memblade/blade.hh"
#include "memblade/latency.hh"
#include "memblade/stack_distance.hh"
#include "util/table.hh"

using namespace wsc;
using namespace wsc::memblade;

namespace {

constexpr std::uint64_t traceLength = 2000000;
constexpr std::uint64_t seed = 42;

void
slowdownTable(double local_fraction)
{
    // One replay per workload; the link only changes the stall math.
    std::vector<ReplayStats> stats;
    std::vector<TraceProfile> profs;
    for (auto b : workloads::allBenchmarks) {
        profs.push_back(profileFor(b));
        stats.push_back(replayProfile(profs.back(), local_fraction,
                                      PolicyKind::Random, traceLength,
                                      seed));
    }
    Table t({"Link", "websearch", "webmail", "ytube", "mapred-wc",
             "mapred-wr"});
    for (auto link : {RemoteLink::pcieX4(), RemoteLink::cbf(),
                      RemoteLink::cbfWithSetup()}) {
        std::vector<std::string> row{link.name};
        for (std::size_t i = 0; i < stats.size(); ++i)
            row.push_back(fmtPct(slowdown(stats[i], profs[i], link), 1));
        t.addRow(std::move(row));
    }
    t.print(std::cout);
}

} // namespace

int
main()
{
    std::cout << "=== Figure 4(b): two-level memory slowdowns (random "
                 "replacement) ===\n\n";
    std::cout << "25% local memory:\n";
    slowdownTable(0.25);
    std::cout << "\nPaper (25%): PCIe x4 4.7/0.2/1.4/0.7/0.7%; CBF "
                 "1.2/0.1/0.4/0.2/0.2%.\n";
    std::cout << "\n12.5% local memory:\n";
    slowdownTable(0.125);
    std::cout << "\nPaper: up to ~10% (websearch) at 12.5% local.\n";

    std::cout << "\n--- Extension (paper Section 4): trap-handling "
                 "cost on the miss path (25% local) ---\n";
    Table trap({"Configuration", "websearch", "ytube"});
    for (auto handling :
         {TrapHandling::None, TrapHandling::SoftwareTrap,
          TrapHandling::HardwareTlb}) {
        auto link = withTrapCost(RemoteLink::cbf(), handling);
        std::vector<std::string> row{link.name};
        for (auto b :
             {workloads::Benchmark::Websearch, workloads::Benchmark::Ytube}) {
            auto prof = profileFor(b);
            auto st = replayProfile(prof, 0.25, PolicyKind::Random,
                                    traceLength, seed);
            row.push_back(fmtPct(slowdown(st, prof, link), 2));
        }
        trap.addRow(std::move(row));
    }
    trap.print(std::cout);
    std::cout << "\nA software trap on every miss dominates the CBF "
                 "stall itself; the Section 4 hardware-TLB extension "
                 "recovers it.\n";

    std::cout << "\n--- LRU vs random (warm miss rates, 25% local) "
                 "---\n";
    Table pol({"Workload", "random", "lru", "clock"});
    for (auto b : workloads::allBenchmarks) {
        auto prof = profileFor(b);
        // The LRU cell reads off the stack-distance curve (exactly
        // what a direct LRU replay reports); random and clock lack
        // the inclusion property and replay per-access.
        auto curve = lruCurveForProfile(prof, traceLength, seed);
        auto frames = std::size_t(
            std::ceil(double(prof.footprintPages) * 0.25));
        pol.addRow(
            {prof.name,
             fmtPct(replayProfile(prof, 0.25, PolicyKind::Random,
                                  traceLength, seed)
                        .warmMissRate(),
                    2),
             fmtPct(curve.statsAt(frames).warmMissRate(), 2),
             fmtPct(replayProfile(prof, 0.25, PolicyKind::Clock,
                                  traceLength, seed)
                        .warmMissRate(),
                    2)});
    }
    pol.print(std::cout);

    std::cout << "\n--- Fine-grained LRU local-fraction curve "
                 "(25 points from one stack-distance pass) ---\n";
    Table fine({"Local fraction", "websearch", "webmail", "ytube",
                "mapred-wc", "mapred-wr"});
    {
        std::vector<TraceProfile> profs;
        std::vector<StackDistanceCurve> curves;
        for (auto b : workloads::allBenchmarks) {
            profs.push_back(profileFor(b));
            curves.push_back(
                lruCurveForProfile(profs.back(), traceLength, seed));
        }
        for (unsigned i = 1; i <= 25; ++i) {
            double f = double(i) / 25.0;
            std::vector<std::string> row{fmtPct(f, 0)};
            for (std::size_t w = 0; w < profs.size(); ++w) {
                auto frames = std::size_t(
                    std::ceil(double(profs[w].footprintPages) * f));
                row.push_back(fmtPct(
                    slowdown(curves[w].statsAt(frames), profs[w],
                             RemoteLink::pcieX4()),
                    2));
            }
            fine.addRow(std::move(row));
        }
    }
    fine.print(std::cout);
    std::cout << "\nThe paper samples this curve at 4 local fractions "
                 "(Figure 4b); the single-pass engine makes every "
                 "capacity free.\n";

    std::cout << "\n=== Figure 4(c): net cost and power efficiencies "
                 "(emb1, assumed 2% slowdown) ===\n\n";
    core::DesignEvaluator ev;
    auto base =
        core::DesignConfig::baseline(platform::SystemClass::Emb1);
    Table eff({"Scheme", "Perf/Inf-$", "Perf/W", "Perf/TCO-$"});
    for (auto scheme : {Provisioning::Static, Provisioning::Dynamic}) {
        auto shared = base;
        shared.name = "emb1+" + to_string(scheme);
        shared.memorySharing = scheme;
        // Uniform 2% slowdown: relative metrics are workload-
        // independent, so one batch benchmark suffices.
        auto r = ev.evaluateRelative(shared, base,
                                     workloads::Benchmark::MapredWc);
        eff.addRow({to_string(scheme), fmtPct(r.perfPerInfDollar),
                    fmtPct(r.perfPerWatt),
                    fmtPct(r.perfPerTcoDollar)});
    }
    eff.print(std::cout);
    std::cout << "\nPaper: static 102/116/108%; dynamic 106/116/111%.\n";
    return 0;
}
