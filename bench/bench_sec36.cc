/**
 * @file
 * Reproduces the Section 3.6 restated result: for the same aggregate
 * performance as the srvr1 baseline, how much power, cost, and rack
 * space do N1/N2 consume?
 *
 * Paper: "For the same performance as the baseline, N2 gets a 60%
 * reduction in power, and 55% reduction in overall costs, and consumes
 * 30% less racks (assuming 4 embedded blades per blade, air-cooled)."
 */

#include <iostream>

#include "core/cluster.hh"
#include "util/table.hh"

using namespace wsc;
using namespace wsc::core;

int
main()
{
    std::cout << "=== Section 3.6: equal-performance cluster "
                 "comparison (baseline: 400 x srvr1 = 10 racks) "
                 "===\n\n";
    EvaluatorParams eval;
    eval.search.window.warmupSeconds = 5.0;
    eval.search.window.measureSeconds = 30.0;
    eval.search.iterations = 8;
    ClusterParams cp;
    cp.realEstatePerRackYear = 3000.0; // typical colo space, 2008
    ClusterPlanner planner(cp, eval);

    auto srvr1 = DesignConfig::baseline(platform::SystemClass::Srvr1);
    const unsigned baseline_servers = 400;

    auto base = planner.planSuite(srvr1, srvr1, baseline_servers);
    Table t({"Design", "Servers", "Racks", "Power (kW)", "HW $",
             "P&C $", "Real estate $", "Total $", "vs baseline"});
    auto add = [&](const std::string &name, const ClusterPlan &p) {
        t.addRow({name, fmtF(p.serversNeeded, 0),
                  std::to_string(p.racks), fmtF(p.totalPowerKW, 1),
                  fmtDollars(p.hardwareDollars),
                  fmtDollars(p.powerCoolingDollars),
                  fmtDollars(p.realEstateDollars),
                  fmtDollars(p.totalDollars()),
                  fmtPct(p.totalDollars() / base.totalDollars())});
    };
    add("srvr1 (baseline)", base);
    for (auto design : {DesignConfig::n1(), DesignConfig::n2()}) {
        auto plan =
            planner.planSuite(design, srvr1, baseline_servers);
        add(design.name, plan);
    }
    t.print(std::cout);

    std::cout << "\nPaper: at equal performance N2 uses ~60% less "
                 "power and ~55% lower cost; our packaging model packs "
                 "micro-blades far denser (1248/rack), so the rack "
                 "saving exceeds the paper's conservative 30% "
                 "(4-blades-per-blade, air-cooled assumption).\n";
    return 0;
}
