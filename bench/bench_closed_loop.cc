/**
 * @file
 * Closed-loop driver throughput: the seed lambda-chain driver (kept
 * compiled as runClosedLoopOracle) vs the pooled request-arena driver
 * (runClosedLoop), across the interactive workloads with both the
 * classic and the timeout/retry client protocols.
 *
 * Every comparison is gated on a bit-identical ClosedLoopResult —
 * same sustained throughput, same per-epoch traces, same protocol
 * counters, same DES kernel counters — and the bench exits nonzero on
 * any mismatch, so CI catches a driver that got fast by getting
 * wrong. Timings land in BENCH_closed_loop.json for the perf
 * trajectory.
 *
 * The --fast-mode half of the bench compares the exact pooled driver
 * against the batched fast path (sim/fast_mode.hh). Fast mode gives
 * up bit-identity by construction, so its gate is statistical
 * (stats/equivalence.hh): two-sample KS on service-demand and latency
 * distributions plus CI-overlap on per-seed sustained-RPS/p95 across
 * several seeds, and the gate's verdict joins bit-identity in the
 * exit code.
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "perfsim/closed_loop.hh"
#include "perfsim/perf_eval.hh"
#include "platform/catalog.hh"
#include "stats/equivalence.hh"
#include "util/args.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "workloads/suite.hh"

using namespace wsc;
using namespace wsc::perfsim;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

bool
sameKernel(const sim::EventQueue::Counters &a,
           const sim::EventQueue::Counters &b)
{
    return a.scheduled == b.scheduled && a.dispatched == b.dispatched &&
           a.cancelled == b.cancelled &&
           a.compactions == b.compactions && a.peakHeap == b.peakHeap;
}

/** Field-by-field bit comparison (doubles compared exactly). */
bool
sameResult(const ClosedLoopResult &a, const ClosedLoopResult &b)
{
    return a.sustainedRps == b.sustainedRps &&
           a.clientsAtBest == b.clientsAtBest &&
           a.finalClients == b.finalClients &&
           a.finalLiveClients == b.finalLiveClients &&
           a.p95AtBest == b.p95AtBest && a.epochRps == b.epochRps &&
           a.epochPassed == b.epochPassed &&
           a.epochCompleted == b.epochCompleted &&
           a.epochViolations == b.epochViolations &&
           a.epochGiveups == b.epochGiveups &&
           a.epochP95 == b.epochP95 && a.timeouts == b.timeouts &&
           a.retries == b.retries && a.giveups == b.giveups &&
           a.lateCompletions == b.lateCompletions &&
           sameKernel(a.kernel, b.kernel);
}

std::uint64_t
totalCompleted(const ClosedLoopResult &r)
{
    std::uint64_t n = 0;
    for (auto c : r.epochCompleted)
        n += c;
    return n;
}

struct Comparison {
    std::string name;
    double oracleSec = 0.0;
    double pooledSec = 0.0;
    std::uint64_t requests = 0;
    std::uint64_t events = 0;
    bool identical = false;

    double
    speedup() const
    {
        return pooledSec > 0.0 ? oracleSec / pooledSec : 0.0;
    }
    double
    oracleReqPerSec() const
    {
        return oracleSec > 0.0 ? double(requests) / oracleSec : 0.0;
    }
    double
    pooledReqPerSec() const
    {
        return pooledSec > 0.0 ? double(requests) / pooledSec : 0.0;
    }
    double
    pooledEventsPerSec() const
    {
        return pooledSec > 0.0 ? double(events) / pooledSec : 0.0;
    }
};

/** Best-of-N timing: the minimum discards interference from a noisy
 * shared host, which the mean does not. */
constexpr int kTimedReps = 3;

Comparison
compareDrivers(workloads::Benchmark b, const StationConfig &st,
               const ClosedLoopParams &params, std::uint64_t seed,
               const std::string &tag)
{
    Comparison c;
    c.name = workloads::to_string(b) + " " + tag;

    auto wl = workloads::makeBenchmark(b);
    auto *iw = dynamic_cast<workloads::InteractiveWorkload *>(wl.get());
    WSC_ASSERT(iw, "closed-loop bench needs an interactive workload");

    ClosedLoopResult oracle, pooled;
    for (int rep = 0; rep < kTimedReps; ++rep) {
        Rng rng(seed);
        auto t0 = std::chrono::steady_clock::now();
        oracle = runClosedLoopOracle(*iw, st, params, rng);
        double sec = secondsSince(t0);
        if (rep == 0 || sec < c.oracleSec)
            c.oracleSec = sec;
    }
    for (int rep = 0; rep < kTimedReps; ++rep) {
        Rng rng(seed);
        auto t0 = std::chrono::steady_clock::now();
        pooled = runClosedLoop(*iw, st, params, rng);
        double sec = secondsSince(t0);
        if (rep == 0 || sec < c.pooledSec)
            c.pooledSec = sec;
    }

    c.requests = totalCompleted(pooled);
    c.events = pooled.kernel.dispatched;
    c.identical = sameResult(oracle, pooled);
    return c;
}

/** Exact pooled vs fast pooled timing for one workload. */
struct FastRow {
    std::string name;
    double exactSec = 0.0;
    double fastSec = 0.0;
    std::uint64_t exactRequests = 0;
    std::uint64_t fastRequests = 0;

    double
    exactReqPerSec() const
    {
        return exactSec > 0.0 ? double(exactRequests) / exactSec : 0.0;
    }
    double
    fastReqPerSec() const
    {
        return fastSec > 0.0 ? double(fastRequests) / fastSec : 0.0;
    }
    /** Requests/sec ratio (request counts differ between the modes). */
    double
    speedup() const
    {
        double ex = exactReqPerSec();
        return ex > 0.0 ? fastReqPerSec() / ex : 0.0;
    }
};

FastRow
compareFastMode(workloads::Benchmark b, const StationConfig &st,
                const ClosedLoopParams &params, std::uint64_t seed)
{
    FastRow row;
    row.name = workloads::to_string(b);

    auto wl = workloads::makeBenchmark(b);
    auto *iw = dynamic_cast<workloads::InteractiveWorkload *>(wl.get());
    WSC_ASSERT(iw, "closed-loop bench needs an interactive workload");

    ClosedLoopParams exact = params;
    ClosedLoopParams fast = params;
    fast.fastMode.enabled = true;

    // One run is only ~15 ms of wall time — too close to scheduler
    // noise for a stable ratio — so each timed sample is a burst of
    // identical runs and the best-of-kTimedReps picks the cleanest.
    constexpr int kBurst = 6;
    ClosedLoopResult er, fr;
    for (int rep = 0; rep < kTimedReps; ++rep) {
        auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < kBurst; ++i) {
            Rng rng(seed);
            er = runClosedLoop(*iw, st, exact, rng);
        }
        double sec = secondsSince(t0) / kBurst;
        if (rep == 0 || sec < row.exactSec)
            row.exactSec = sec;
    }
    for (int rep = 0; rep < kTimedReps; ++rep) {
        auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < kBurst; ++i) {
            Rng rng(seed);
            fr = runClosedLoop(*iw, st, fast, rng);
        }
        double sec = secondsSince(t0) / kBurst;
        if (rep == 0 || sec < row.fastSec)
            row.fastSec = sec;
    }
    row.exactRequests = totalCompleted(er);
    row.fastRequests = totalCompleted(fr);
    return row;
}

/** Thin every sample set to at most @p cap points (uniform stride).
 * Latency sequences are autocorrelated through the queues, so the KS
 * test runs on thinned sets: the reduced count keeps the test's
 * effective-sample-size assumption honest and the threshold lenient
 * against realization noise, while real distribution shifts still
 * drive D far past it. */
std::vector<double>
thinned(const std::vector<double> &xs, std::size_t cap)
{
    if (xs.size() <= cap)
        return xs;
    std::vector<double> out;
    out.reserve(cap);
    double stride = double(xs.size()) / double(cap);
    for (std::size_t i = 0; i < cap; ++i)
        out.push_back(xs[std::size_t(double(i) * stride)]);
    return out;
}

/**
 * The statistical-equivalence gate for one workload: across
 * @p seeds seeds, run exact and fast closed loops, then compare
 *  - KS: i.i.d. service-demand draws (cpuWork, diskReadBytes) from
 *    the scalar vs the batched generator,
 *  - KS: pooled (thinned) request-latency samples,
 *  - CI-overlap: per-seed sustained RPS and p95-at-best.
 */
stats::GateVerdict
equivalenceGateFor(workloads::Benchmark b, const StationConfig &st,
                   const ClosedLoopParams &params,
                   const std::vector<std::uint64_t> &seeds)
{
    auto wl = workloads::makeBenchmark(b);
    auto *iw = dynamic_cast<workloads::InteractiveWorkload *>(wl.get());
    WSC_ASSERT(iw, "closed-loop bench needs an interactive workload");
    std::string name = workloads::to_string(b);

    // Demand-law check on i.i.d. draws: scalar path vs batched path,
    // independent streams, no queueing in the way.
    constexpr std::size_t kDemandDraws = 20000;
    std::vector<workloads::ServiceDemand> ed(kDemandDraws),
        fd(kDemandDraws);
    {
        Rng er(seeds.front() ^ 0xE0E0E0E0ULL);
        for (auto &d : ed)
            d = iw->nextRequest(er);
        workloads::BatchStream fr(Rng(seeds.front() ^ 0xF0F0F0F0ULL));
        iw->nextRequestBatch(fr, fd.data(), fd.size());
    }
    auto field = [](const std::vector<workloads::ServiceDemand> &v,
                    double workloads::ServiceDemand::*m) {
        std::vector<double> out;
        out.reserve(v.size());
        for (const auto &d : v)
            out.push_back(d.*m);
        return out;
    };

    stats::NamedSamples cpuWork{
        name + " demand.cpuWork",
        field(ed, &workloads::ServiceDemand::cpuWork),
        field(fd, &workloads::ServiceDemand::cpuWork)};
    stats::NamedSamples diskBytes{
        name + " demand.diskReadBytes",
        field(ed, &workloads::ServiceDemand::diskReadBytes),
        field(fd, &workloads::ServiceDemand::diskReadBytes)};

    // Closed-loop runs per seed, both modes, retaining latencies.
    stats::NamedSamples latency{name + " latency", {}, {}};
    stats::NamedSamples rps{name + " sustainedRps", {}, {}};
    stats::NamedSamples p95{name + " p95AtBest", {}, {}};
    constexpr std::size_t kLatencyCapPerSeed = 400;
    for (auto seed : seeds) {
        ClosedLoopParams exact = params;
        exact.collectLatencySamples = true;
        ClosedLoopParams fast = exact;
        fast.fastMode.enabled = true;

        Rng er(seed);
        auto exactRun = runClosedLoop(*iw, st, exact, er);
        Rng fr(seed);
        auto fastRun = runClosedLoop(*iw, st, fast, fr);

        auto el = thinned(exactRun.latencySamples, kLatencyCapPerSeed);
        auto fl = thinned(fastRun.latencySamples, kLatencyCapPerSeed);
        latency.exact.insert(latency.exact.end(), el.begin(), el.end());
        latency.fast.insert(latency.fast.end(), fl.begin(), fl.end());
        rps.exact.push_back(exactRun.sustainedRps);
        rps.fast.push_back(fastRun.sustainedRps);
        p95.exact.push_back(exactRun.p95AtBest);
        p95.fast.push_back(fastRun.p95AtBest);
    }

    return stats::equivalenceGate({cpuWork, diskBytes, latency},
                                  {rps, p95});
}

} // namespace

int
run(int argc, char **argv)
{
    ArgParser args("bench_closed_loop",
                   "oracle (lambda-chain) vs pooled (request-arena) "
                   "closed-loop drivers, classic and timeout paths");
    args.addOption("epochs", "adaptation epochs per run", "14")
        .addOption("epoch-seconds", "simulated seconds per epoch", "15")
        .addOption("gate-seeds",
                   "seeds for the fast-mode equivalence gate", "5")
        .addOption("out", "JSON output path", "BENCH_closed_loop.json");
    if (!args.parse(argc, argv))
        return 0;

    double epochsArg = args.getDouble("epochs");
    if (epochsArg < 1.0 || epochsArg > 1000.0)
        fatal("--epochs must be in [1, 1000]");
    double epochSecArg = args.getDouble("epoch-seconds");
    if (epochSecArg <= 0.0 || epochSecArg > 1e6)
        fatal("--epoch-seconds must be in (0, 1e6]");
    double gateSeedsArg = args.getDouble("gate-seeds");
    if (gateSeedsArg < 2.0 || gateSeedsArg > 64.0)
        fatal("--gate-seeds must be in [2, 64]");

    PerfEvaluator ev;
    auto srvr2 = platform::makeSystem(platform::SystemClass::Srvr2);

    ClosedLoopParams classic;
    classic.epochs = unsigned(epochsArg);
    classic.epochSeconds = epochSecArg;

    ClosedLoopParams timeout = classic;
    timeout.requestTimeoutSeconds = 0.05;
    timeout.maxRetries = 2;
    timeout.retryBackoffSeconds = 0.01;

    const std::vector<workloads::Benchmark> benches{
        workloads::Benchmark::Websearch, workloads::Benchmark::Webmail,
        workloads::Benchmark::Ytube};

    std::cout << "=== Closed-loop driver throughput (srvr2, "
              << classic.epochs << " epochs x " << classic.epochSeconds
              << "s) ===\n\n";

    std::vector<Comparison> rows;
    bool allIdentical = true;
    for (auto b : benches) {
        auto wl = workloads::makeBenchmark(b);
        auto *iw =
            dynamic_cast<workloads::InteractiveWorkload *>(wl.get());
        WSC_ASSERT(iw, "interactive workload expected");
        auto st = ev.stationsFor(srvr2, iw->traits(), {});
        rows.push_back(
            compareDrivers(b, st, classic, 101, "classic"));
        allIdentical = allIdentical && rows.back().identical;
        rows.push_back(
            compareDrivers(b, st, timeout, 202, "timeout"));
        allIdentical = allIdentical && rows.back().identical;
    }

    Table t({"Driver run", "Requests", "Oracle req/s", "Pooled req/s",
             "Pooled Mev/s", "Speedup", "Result"});
    for (const auto &c : rows) {
        t.addRow({c.name, std::to_string(c.requests),
                  fmtF(c.oracleReqPerSec() / 1e3, 1) + "k",
                  fmtF(c.pooledReqPerSec() / 1e3, 1) + "k",
                  fmtF(c.pooledEventsPerSec() / 1e6, 2),
                  fmtF(c.speedup(), 2) + "x",
                  c.identical ? "bit-identical" : "MISMATCH"});
    }
    t.print(std::cout);

    // Acceptance target: >= 3x requests per wallclock second on the
    // classic websearch and webmail runs.
    bool target = true;
    for (const auto &c : rows)
        if (c.name == "websearch classic" || c.name == "webmail classic")
            target = target && c.speedup() >= 3.0;
    std::cout << "\nTarget: websearch+webmail classic >= 3x "
              << (target ? "met" : "NOT MET") << "\n";

    // ---- Fast mode: exact pooled vs batched fast path ----
    std::cout << "\n=== Fast mode ("
              << sim::FastModeConfig::contractVersion()
              << ", batched demand sampling) ===\n\n";

    std::vector<FastRow> fastRows;
    for (auto b : benches) {
        auto wl = workloads::makeBenchmark(b);
        auto *iw =
            dynamic_cast<workloads::InteractiveWorkload *>(wl.get());
        WSC_ASSERT(iw, "interactive workload expected");
        auto st = ev.stationsFor(srvr2, iw->traits(), {});
        fastRows.push_back(compareFastMode(b, st, classic, 101));
    }

    Table ft({"Workload", "Exact req/s", "Fast req/s", "Speedup"});
    for (const auto &f : fastRows)
        ft.addRow({f.name, fmtF(f.exactReqPerSec() / 1e3, 1) + "k",
                   fmtF(f.fastReqPerSec() / 1e3, 1) + "k",
                   fmtF(f.speedup(), 2) + "x"});
    ft.print(std::cout);

    // Demand sampling is ~34% of the exact closed loop (EXPERIMENTS.md
    // "Closed-loop driver rebuild"), so Amdahl caps end-to-end fast-mode
    // gains near 1.5x even with free sampling; the >= 2x claim lives at
    // the sampling kernel itself (bench_sampler splitmix64 rows). Here
    // the target is the end-to-end share of that ceiling.
    bool fastTarget = false;
    for (const auto &f : fastRows)
        fastTarget = fastTarget || f.speedup() >= 1.25;
    std::cout << "\nTarget: fast mode >= 1.25x end-to-end on at least "
                 "one workload (sampling kernel >= 2x: see "
                 "bench_sampler) "
              << (fastTarget ? "met" : "NOT MET") << "\n";

    // ---- Statistical-equivalence gate ----
    std::vector<std::uint64_t> gateSeeds;
    for (unsigned i = 0; i < unsigned(gateSeedsArg); ++i)
        gateSeeds.push_back(1001 + 7 * i);

    std::cout << "\n=== Equivalence gate (" << gateSeeds.size()
              << " seeds: KS on demand/latency, CI-overlap on "
                 "RPS/p95) ===\n\n";

    std::vector<stats::GateCheck> gateChecks;
    bool gatePassed = true;
    for (auto b : benches) {
        auto wl = workloads::makeBenchmark(b);
        auto *iw =
            dynamic_cast<workloads::InteractiveWorkload *>(wl.get());
        WSC_ASSERT(iw, "interactive workload expected");
        auto st = ev.stationsFor(srvr2, iw->traits(), {});
        auto verdict = equivalenceGateFor(b, st, classic, gateSeeds);
        gatePassed = gatePassed && verdict.passed;
        gateChecks.insert(gateChecks.end(), verdict.checks.begin(),
                          verdict.checks.end());
    }

    Table gt({"Check", "Kind", "Statistic", "p-value", "Verdict"});
    for (const auto &c : gateChecks)
        gt.addRow({c.name, c.kind, fmtF(c.statistic, 4),
                   c.kind == "ks" ? fmtF(c.pValue, 4) : std::string("-"),
                   c.passed ? "pass" : "FAIL"});
    gt.print(std::cout);
    std::cout << "\nEquivalence gate: "
              << (gatePassed ? "PASSED" : "FAILED") << "\n";

    std::ostringstream json;
    json.setf(std::ios::fixed);
    json.precision(6);
    json << "{\n"
         << "  \"bench\": \"closed_loop\",\n"
         << "  \"schema_version\": 1,\n"
         << "  \"config\": {\n"
         << "    \"system\": \"srvr2\",\n"
         << "    \"epochs\": " << classic.epochs << ",\n"
         << "    \"epoch_seconds\": " << classic.epochSeconds << ",\n"
         << "    \"timeout_seconds\": "
         << timeout.requestTimeoutSeconds << ",\n"
         << "    \"hardware_threads\": "
         << std::thread::hardware_concurrency() << "\n"
         << "  },\n"
         << "  \"runs\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto &c = rows[i];
        json << "    {\"run\": \"" << c.name
             << "\", \"requests\": " << c.requests
             << ", \"events\": " << c.events
             << ", \"oracle_seconds\": " << c.oracleSec
             << ", \"pooled_seconds\": " << c.pooledSec
             << ", \"oracle_req_per_sec\": " << c.oracleReqPerSec()
             << ", \"pooled_req_per_sec\": " << c.pooledReqPerSec()
             << ", \"pooled_events_per_sec\": "
             << c.pooledEventsPerSec()
             << ", \"speedup\": " << c.speedup()
             << ", \"bit_identical\": "
             << (c.identical ? "true" : "false") << "}"
             << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"fast_mode\": {\n"
         << "    \"contract\": \""
         << sim::FastModeConfig::contractVersion() << "\",\n"
         << "    \"gate_seeds\": " << gateSeeds.size() << ",\n"
         << "    \"runs\": [\n";
    for (std::size_t i = 0; i < fastRows.size(); ++i) {
        const auto &f = fastRows[i];
        json << "      {\"workload\": \"" << f.name
             << "\", \"exact_seconds\": " << f.exactSec
             << ", \"fast_seconds\": " << f.fastSec
             << ", \"exact_requests\": " << f.exactRequests
             << ", \"fast_requests\": " << f.fastRequests
             << ", \"exact_req_per_sec\": " << f.exactReqPerSec()
             << ", \"fast_req_per_sec\": " << f.fastReqPerSec()
             << ", \"speedup\": " << f.speedup() << "}"
             << (i + 1 < fastRows.size() ? "," : "") << "\n";
    }
    json << "    ],\n"
         << "    \"gate\": [\n";
    for (std::size_t i = 0; i < gateChecks.size(); ++i) {
        const auto &c = gateChecks[i];
        json << "      {\"check\": \"" << c.name << "\", \"kind\": \""
             << c.kind << "\", \"statistic\": " << c.statistic
             << ", \"p_value\": " << c.pValue << ", \"passed\": "
             << (c.passed ? "true" : "false") << "}"
             << (i + 1 < gateChecks.size() ? "," : "") << "\n";
    }
    json << "    ],\n"
         << "    \"gate_passed\": " << (gatePassed ? "true" : "false")
         << "\n"
         << "  },\n"
         << "  \"targets\": {\n"
         << "    \"classic_3x\": " << (target ? "true" : "false")
         << ",\n"
         << "    \"fast_end_to_end_1_25x\": "
         << (fastTarget ? "true" : "false")
         << "\n"
         << "  }\n"
         << "}\n";

    std::ofstream out(args.get("out"));
    out << json.str();
    std::cout << "\nWrote " << args.get("out") << "\n";

    // Bit-identity (exact mode) and the statistical gate (fast mode)
    // are both correctness contracts; either failing fails the bench.
    return (allIdentical && gatePassed) ? 0 : 1;
}

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
