/**
 * @file
 * Closed-loop driver throughput: the seed lambda-chain driver (kept
 * compiled as runClosedLoopOracle) vs the pooled request-arena driver
 * (runClosedLoop), across the interactive workloads with both the
 * classic and the timeout/retry client protocols.
 *
 * Every comparison is gated on a bit-identical ClosedLoopResult —
 * same sustained throughput, same per-epoch traces, same protocol
 * counters, same DES kernel counters — and the bench exits nonzero on
 * any mismatch, so CI catches a driver that got fast by getting
 * wrong. Timings land in BENCH_closed_loop.json for the perf
 * trajectory.
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "perfsim/closed_loop.hh"
#include "perfsim/perf_eval.hh"
#include "platform/catalog.hh"
#include "util/args.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "workloads/suite.hh"

using namespace wsc;
using namespace wsc::perfsim;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

bool
sameKernel(const sim::EventQueue::Counters &a,
           const sim::EventQueue::Counters &b)
{
    return a.scheduled == b.scheduled && a.dispatched == b.dispatched &&
           a.cancelled == b.cancelled &&
           a.compactions == b.compactions && a.peakHeap == b.peakHeap;
}

/** Field-by-field bit comparison (doubles compared exactly). */
bool
sameResult(const ClosedLoopResult &a, const ClosedLoopResult &b)
{
    return a.sustainedRps == b.sustainedRps &&
           a.clientsAtBest == b.clientsAtBest &&
           a.finalClients == b.finalClients &&
           a.finalLiveClients == b.finalLiveClients &&
           a.p95AtBest == b.p95AtBest && a.epochRps == b.epochRps &&
           a.epochPassed == b.epochPassed &&
           a.epochCompleted == b.epochCompleted &&
           a.epochViolations == b.epochViolations &&
           a.epochGiveups == b.epochGiveups &&
           a.epochP95 == b.epochP95 && a.timeouts == b.timeouts &&
           a.retries == b.retries && a.giveups == b.giveups &&
           a.lateCompletions == b.lateCompletions &&
           sameKernel(a.kernel, b.kernel);
}

std::uint64_t
totalCompleted(const ClosedLoopResult &r)
{
    std::uint64_t n = 0;
    for (auto c : r.epochCompleted)
        n += c;
    return n;
}

struct Comparison {
    std::string name;
    double oracleSec = 0.0;
    double pooledSec = 0.0;
    std::uint64_t requests = 0;
    std::uint64_t events = 0;
    bool identical = false;

    double
    speedup() const
    {
        return pooledSec > 0.0 ? oracleSec / pooledSec : 0.0;
    }
    double
    oracleReqPerSec() const
    {
        return oracleSec > 0.0 ? double(requests) / oracleSec : 0.0;
    }
    double
    pooledReqPerSec() const
    {
        return pooledSec > 0.0 ? double(requests) / pooledSec : 0.0;
    }
    double
    pooledEventsPerSec() const
    {
        return pooledSec > 0.0 ? double(events) / pooledSec : 0.0;
    }
};

/** Best-of-N timing: the minimum discards interference from a noisy
 * shared host, which the mean does not. */
constexpr int kTimedReps = 3;

Comparison
compareDrivers(workloads::Benchmark b, const StationConfig &st,
               const ClosedLoopParams &params, std::uint64_t seed,
               const std::string &tag)
{
    Comparison c;
    c.name = workloads::to_string(b) + " " + tag;

    auto wl = workloads::makeBenchmark(b);
    auto *iw = dynamic_cast<workloads::InteractiveWorkload *>(wl.get());
    WSC_ASSERT(iw, "closed-loop bench needs an interactive workload");

    ClosedLoopResult oracle, pooled;
    for (int rep = 0; rep < kTimedReps; ++rep) {
        Rng rng(seed);
        auto t0 = std::chrono::steady_clock::now();
        oracle = runClosedLoopOracle(*iw, st, params, rng);
        double sec = secondsSince(t0);
        if (rep == 0 || sec < c.oracleSec)
            c.oracleSec = sec;
    }
    for (int rep = 0; rep < kTimedReps; ++rep) {
        Rng rng(seed);
        auto t0 = std::chrono::steady_clock::now();
        pooled = runClosedLoop(*iw, st, params, rng);
        double sec = secondsSince(t0);
        if (rep == 0 || sec < c.pooledSec)
            c.pooledSec = sec;
    }

    c.requests = totalCompleted(pooled);
    c.events = pooled.kernel.dispatched;
    c.identical = sameResult(oracle, pooled);
    return c;
}

} // namespace

int
run(int argc, char **argv)
{
    ArgParser args("bench_closed_loop",
                   "oracle (lambda-chain) vs pooled (request-arena) "
                   "closed-loop drivers, classic and timeout paths");
    args.addOption("epochs", "adaptation epochs per run", "14")
        .addOption("epoch-seconds", "simulated seconds per epoch", "15")
        .addOption("out", "JSON output path", "BENCH_closed_loop.json");
    if (!args.parse(argc, argv))
        return 0;

    double epochsArg = args.getDouble("epochs");
    if (epochsArg < 1.0 || epochsArg > 1000.0)
        fatal("--epochs must be in [1, 1000]");
    double epochSecArg = args.getDouble("epoch-seconds");
    if (epochSecArg <= 0.0 || epochSecArg > 1e6)
        fatal("--epoch-seconds must be in (0, 1e6]");

    PerfEvaluator ev;
    auto srvr2 = platform::makeSystem(platform::SystemClass::Srvr2);

    ClosedLoopParams classic;
    classic.epochs = unsigned(epochsArg);
    classic.epochSeconds = epochSecArg;

    ClosedLoopParams timeout = classic;
    timeout.requestTimeoutSeconds = 0.05;
    timeout.maxRetries = 2;
    timeout.retryBackoffSeconds = 0.01;

    const std::vector<workloads::Benchmark> benches{
        workloads::Benchmark::Websearch, workloads::Benchmark::Webmail,
        workloads::Benchmark::Ytube};

    std::cout << "=== Closed-loop driver throughput (srvr2, "
              << classic.epochs << " epochs x " << classic.epochSeconds
              << "s) ===\n\n";

    std::vector<Comparison> rows;
    bool allIdentical = true;
    for (auto b : benches) {
        auto wl = workloads::makeBenchmark(b);
        auto *iw =
            dynamic_cast<workloads::InteractiveWorkload *>(wl.get());
        WSC_ASSERT(iw, "interactive workload expected");
        auto st = ev.stationsFor(srvr2, iw->traits(), {});
        rows.push_back(
            compareDrivers(b, st, classic, 101, "classic"));
        allIdentical = allIdentical && rows.back().identical;
        rows.push_back(
            compareDrivers(b, st, timeout, 202, "timeout"));
        allIdentical = allIdentical && rows.back().identical;
    }

    Table t({"Driver run", "Requests", "Oracle req/s", "Pooled req/s",
             "Pooled Mev/s", "Speedup", "Result"});
    for (const auto &c : rows) {
        t.addRow({c.name, std::to_string(c.requests),
                  fmtF(c.oracleReqPerSec() / 1e3, 1) + "k",
                  fmtF(c.pooledReqPerSec() / 1e3, 1) + "k",
                  fmtF(c.pooledEventsPerSec() / 1e6, 2),
                  fmtF(c.speedup(), 2) + "x",
                  c.identical ? "bit-identical" : "MISMATCH"});
    }
    t.print(std::cout);

    // Acceptance target: >= 3x requests per wallclock second on the
    // classic websearch and webmail runs.
    bool target = true;
    for (const auto &c : rows)
        if (c.name == "websearch classic" || c.name == "webmail classic")
            target = target && c.speedup() >= 3.0;
    std::cout << "\nTarget: websearch+webmail classic >= 3x "
              << (target ? "met" : "NOT MET") << "\n";

    std::ostringstream json;
    json.setf(std::ios::fixed);
    json.precision(6);
    json << "{\n"
         << "  \"bench\": \"closed_loop\",\n"
         << "  \"schema_version\": 1,\n"
         << "  \"config\": {\n"
         << "    \"system\": \"srvr2\",\n"
         << "    \"epochs\": " << classic.epochs << ",\n"
         << "    \"epoch_seconds\": " << classic.epochSeconds << ",\n"
         << "    \"timeout_seconds\": "
         << timeout.requestTimeoutSeconds << ",\n"
         << "    \"hardware_threads\": "
         << std::thread::hardware_concurrency() << "\n"
         << "  },\n"
         << "  \"runs\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto &c = rows[i];
        json << "    {\"run\": \"" << c.name
             << "\", \"requests\": " << c.requests
             << ", \"events\": " << c.events
             << ", \"oracle_seconds\": " << c.oracleSec
             << ", \"pooled_seconds\": " << c.pooledSec
             << ", \"oracle_req_per_sec\": " << c.oracleReqPerSec()
             << ", \"pooled_req_per_sec\": " << c.pooledReqPerSec()
             << ", \"pooled_events_per_sec\": "
             << c.pooledEventsPerSec()
             << ", \"speedup\": " << c.speedup()
             << ", \"bit_identical\": "
             << (c.identical ? "true" : "false") << "}"
             << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"targets\": {\n"
         << "    \"classic_3x\": " << (target ? "true" : "false")
         << "\n"
         << "  }\n"
         << "}\n";

    std::ofstream out(args.get("out"));
    out << json.str();
    std::cout << "\nWrote " << args.get("out") << "\n";

    return allIdentical ? 0 : 1;
}

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
