/**
 * @file
 * google-benchmark microbenchmarks of the simulation kernels: event
 * queue throughput, processor-sharing resource, Zipf sampling, and
 * the page-replacement policies that dominate the trace studies.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "memblade/replacement.hh"
#include "memblade/replay.hh"
#include "memblade/stack_distance.hh"
#include "memblade/trace.hh"
#include "sim/distributions.hh"
#include "sim/event_queue.hh"
#include "sim/resources.hh"
#include "util/random.hh"

using namespace wsc;

namespace {

void
BM_EventQueueScheduleDispatch(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        int sink = 0;
        for (int i = 0; i < 1024; ++i)
            eq.schedule(double(i), [&sink] { ++sink; });
        eq.runAll();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleDispatch);

void
BM_EventQueueCancelHeavy(benchmark::State &state)
{
    // Timer-wheel style churn: most scheduled events are cancelled
    // before firing, which drives the stale-slot compaction path.
    for (auto _ : state) {
        sim::EventQueue eq;
        int sink = 0;
        std::vector<sim::EventId> ids;
        ids.reserve(1024);
        for (int i = 0; i < 1024; ++i)
            ids.push_back(
                eq.schedule(double(i + 1), [&sink] { ++sink; }));
        for (int i = 0; i < 1024; ++i)
            if (i % 8 != 0)
                eq.cancel(ids[std::size_t(i)]);
        eq.runAll();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueCancelHeavy);

void
BM_EventQueueTraceEnabled(benchmark::State &state)
{
    // Same workload as BM_EventQueueScheduleDispatch but with a live
    // tracer installed. Compare against that baseline (which runs
    // with instrumentation compiled in but disabled) to measure the
    // tracing cost; the disabled-path overhead budget is < 2%.
    for (auto _ : state) {
        sim::EventQueue eq;
        std::uint64_t records = 0;
        eq.setTracer([&records](const sim::EventQueue::TraceRecord &) {
            ++records;
        });
        int sink = 0;
        for (int i = 0; i < 1024; ++i)
            eq.schedule(double(i), [&sink] { ++sink; });
        eq.runAll();
        benchmark::DoNotOptimize(sink);
        benchmark::DoNotOptimize(records);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueTraceEnabled);

void
BM_QueueHold(benchmark::State &state)
{
    // Classic hold model (Vaucher & Duval): keep the queue at a fixed
    // depth and alternate dispatch-one / schedule-one at an
    // exponential gap ahead. Steady-state cost per event as a function
    // of depth is exactly where the heap's O(log n) and the calendar's
    // amortized O(1) diverge; sweep the depth axis on both backends to
    // find the crossover.
    const auto kind = sim::QueueKind(state.range(0));
    const auto depth = std::size_t(state.range(1));
    sim::EventQueue eq(kind);
    eq.reserve(depth + 16);
    SplitMix64 rng(42);
    std::uint64_t sink = 0;
    for (std::size_t i = 0; i < depth; ++i)
        eq.schedule(rng.exponential(1.0), [&sink] { ++sink; });
    for (auto _ : state) {
        eq.step();
        eq.schedule(eq.now() + rng.exponential(1.0),
                    [&sink] { ++sink; });
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(sim::queueKindName(kind));
}
BENCHMARK(BM_QueueHold)
    ->Args({0, 1 << 8})
    ->Args({1, 1 << 8})
    ->Args({0, 1 << 12})
    ->Args({1, 1 << 12})
    ->Args({0, 1 << 16})
    ->Args({1, 1 << 16})
    ->Args({0, 1 << 18})
    ->Args({1, 1 << 18});

void
BM_QueueEnsembleMix(benchmark::State &state)
{
    // Ensemble-shaped churn at fixed depth: completions arrive at
    // short exponential gaps while every server keeps one governor
    // timer pending at a fixed horizon, rescheduled (cancel + insert)
    // whenever its server sees traffic — the idle-to-sleep governor
    // racing arrivals in perfsim/ensemble_sim. Cancels hit both
    // backends' stale-slot machinery, so the crossover depth here is
    // the one that matters for shard sizing.
    const auto kind = sim::QueueKind(state.range(0));
    const auto depth = std::size_t(state.range(1)); // power of two
    sim::EventQueue eq(kind);
    eq.reserve(2 * depth + 16);
    SplitMix64 rng(7);
    std::uint64_t sink = 0;
    std::vector<sim::EventId> timers(depth, 0);
    for (std::size_t i = 0; i < depth; ++i)
        eq.schedule(rng.exponential(0.25), [&sink] { ++sink; });
    std::size_t cursor = 0;
    for (auto _ : state) {
        eq.step();
        eq.schedule(eq.now() + rng.exponential(0.25),
                    [&sink] { ++sink; });
        sim::EventId &slot = timers[cursor];
        if (slot)
            eq.cancel(slot);
        slot = eq.schedule(eq.now() + 1.0, [&sink] { ++sink; });
        cursor = (cursor + 1) & (depth - 1);
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(sim::queueKindName(kind));
}
BENCHMARK(BM_QueueEnsembleMix)
    ->Args({0, 1 << 8})
    ->Args({1, 1 << 8})
    ->Args({0, 1 << 12})
    ->Args({1, 1 << 12})
    ->Args({0, 1 << 16})
    ->Args({1, 1 << 16});

void
BM_PsResourceChurn(benchmark::State &state)
{
    const auto jobs = std::size_t(state.range(0));
    for (auto _ : state) {
        sim::EventQueue eq;
        sim::PsResource cpu(eq, "cpu", 8.0, 8);
        Rng rng(1);
        std::uint64_t done = 0;
        for (std::size_t i = 0; i < jobs; ++i)
            cpu.submit(rng.uniform(0.001, 0.01), [&done] { ++done; });
        eq.runAll();
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations() * jobs);
}
BENCHMARK(BM_PsResourceChurn)->Arg(64)->Arg(1024)->Arg(8192);

void
BM_ZipfSample(benchmark::State &state)
{
    sim::ZipfDist zipf(std::uint64_t(state.range(0)), 0.9);
    Rng rng(2);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf.sampleRank(rng));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample)->Arg(1000)->Arg(100000)->Arg(1000000);

void
BM_ReplacementReplay(benchmark::State &state)
{
    auto kind = memblade::PolicyKind(state.range(0));
    auto profile =
        memblade::profileFor(workloads::Benchmark::Websearch);
    Rng rng(3);
    memblade::TraceGenerator gen(profile, rng);
    auto policy = memblade::makePolicy(
        kind, std::size_t(double(profile.footprintPages) * 0.25),
        Rng(4));
    for (auto _ : state)
        benchmark::DoNotOptimize(policy->access(gen.next()));
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(memblade::to_string(kind));
}
BENCHMARK(BM_ReplacementReplay)
    ->Arg(int(memblade::PolicyKind::Lru))
    ->Arg(int(memblade::PolicyKind::Random))
    ->Arg(int(memblade::PolicyKind::Clock));

void
BM_TraceGeneration(benchmark::State &state)
{
    auto profile = memblade::profileFor(workloads::Benchmark::Ytube);
    Rng rng(5);
    memblade::TraceGenerator gen(profile, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(gen.next());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceGeneration);

void
BM_TraceGenerationBatch(benchmark::State &state)
{
    // Same stream as BM_TraceGeneration, pulled 4096 ids at a time.
    auto profile = memblade::profileFor(workloads::Benchmark::Ytube);
    memblade::TraceGenerator gen(profile, Rng(5));
    std::vector<memblade::PageId> buf(4096);
    for (auto _ : state) {
        gen.nextBatch(buf.data(), buf.size());
        benchmark::DoNotOptimize(buf[0]);
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_TraceGenerationBatch);

void
BM_KernelReplay(benchmark::State &state)
{
    // Allocation-free kernels over a pregenerated trace; compare with
    // BM_ReplacementReplay (the legacy virtual-dispatch policies).
    auto kind = memblade::PolicyKind(state.range(0));
    auto profile =
        memblade::profileFor(workloads::Benchmark::Websearch);
    auto trace = memblade::generateTrace(profile, 1 << 20, Rng(3));
    auto frames = std::size_t(double(profile.footprintPages) * 0.25);
    for (auto _ : state) {
        auto st = memblade::replayPages(trace.data(), trace.size(),
                                        kind, frames,
                                        profile.footprintPages, Rng(4));
        benchmark::DoNotOptimize(st.hits);
    }
    state.SetItemsProcessed(state.iterations() *
                            std::int64_t(trace.size()));
    state.SetLabel(memblade::to_string(kind));
}
BENCHMARK(BM_KernelReplay)
    ->Arg(int(memblade::PolicyKind::Lru))
    ->Arg(int(memblade::PolicyKind::Random))
    ->Arg(int(memblade::PolicyKind::Clock));

void
BM_StackDistancePass(benchmark::State &state)
{
    // One pass = the exact LRU curve at every capacity.
    auto profile =
        memblade::profileFor(workloads::Benchmark::Websearch);
    const std::uint64_t n = 1 << 19;
    for (auto _ : state) {
        auto curve = memblade::lruCurveForProfile(profile, n, 7);
        benchmark::DoNotOptimize(curve.accesses);
    }
    state.SetItemsProcessed(state.iterations() * std::int64_t(n));
}
BENCHMARK(BM_StackDistancePass);

} // namespace

BENCHMARK_MAIN();
