/**
 * @file
 * Ablation: content-based page sharing and compression on the blade
 * (the Section 3.4 follow-on optimizations).
 *
 * Reports the physical-per-logical capacity factor for each feature
 * combination and the resulting memory line item and Figure 4(c)-style
 * efficiencies on emb1.
 */

#include <iostream>

#include "core/design.hh"
#include "core/evaluator.hh"
#include "memblade/page_sharing.hh"
#include "util/table.hh"

using namespace wsc;
using namespace wsc::memblade;

int
main()
{
    std::cout << "=== Ablation: blade content reduction (sharing + "
                 "compression) ===\n\n";
    auto emb1 = platform::makeSystem(platform::SystemClass::Emb1);

    Table t({"Configuration", "Phys/logical", "Memory $ (static)",
             "Memory W (static)", "Fetch stall"});
    struct Case {
        std::string name;
        bool sharing, compression;
    };
    for (const auto &c : {Case{"neither", false, false},
                          Case{"sharing only", true, false},
                          Case{"compression only", false, true},
                          Case{"both", true, true}}) {
        ContentParams p;
        p.enableSharing = c.sharing;
        p.enableCompression = c.compression;
        auto out = applyMemorySharingWithContent(
            emb1, BladeParams{}, Provisioning::Static, p);
        auto link = linkWith(p, RemoteLink::pcieX4());
        t.addRow({c.name, fmtPct(physicalPerLogical(p)),
                  fmtDollars(out.memoryDollars),
                  fmtF(out.memoryWatts, 2),
                  fmtF(link.stallSecondsPerMiss * 1e6, 2) + " us"});
    }
    t.print(std::cout);
    std::cout << "\n(Baseline per-server memory: "
              << fmtDollars(emb1.memory.dollars) << " / "
              << fmtF(emb1.memory.watts, 0)
              << " W; the 'neither' row is plain static sharing.)\n";

    std::cout << "\nSensitivity to the duplicate fraction (both "
                 "features on):\n";
    Table s({"Dup fraction", "Phys/logical", "Memory $ (static)"});
    for (double dup : {0.05, 0.10, 0.15, 0.25, 0.40}) {
        ContentParams p;
        p.dupFraction = dup;
        auto out = applyMemorySharingWithContent(
            emb1, BladeParams{}, Provisioning::Static, p);
        s.addRow({fmtPct(dup), fmtPct(physicalPerLogical(p)),
                  fmtDollars(out.memoryDollars)});
    }
    s.print(std::cout);
    return 0;
}
