/**
 * @file
 * Ablation: deriving the burdened-cost constants from the facility.
 *
 * Reconstructs the paper's K1/L1/K2 from physical datacenter
 * parameters (Patel & Shah's underlying model), then sweeps plant COP
 * and power-delivery capex to show how facility technology moves the
 * per-server TCO of the srvr1 baseline and the N2-class design point.
 */

#include <iostream>

#include "cost/facility.hh"
#include "cost/tco.hh"
#include "platform/catalog.hh"
#include "util/table.hh"

using namespace wsc;
using namespace wsc::cost;

int
main()
{
    std::cout << "=== Ablation: facility-derived burdened-cost "
                 "constants ===\n\n";
    auto derived =
        deriveBurdenedParams(FacilityParams{}, BurdenedPowerParams{});
    Table d({"Constant", "Paper", "Derived from facility"});
    d.addRow({"K1 (power-delivery capex)", "1.33", fmtF(derived.k1, 3)});
    d.addRow({"L1 (cooling load, 1/COP)", "0.80", fmtF(derived.l1, 3)});
    d.addRow({"K2 (cooling capex)", "0.667", fmtF(derived.k2, 3)});
    d.addRow({"Burden multiplier", "3.664",
              fmtF(derived.burdenMultiplier(), 3)});
    d.addRow({"Implied PUE", "-", fmtF(impliedPue(FacilityParams{}), 2)});
    d.print(std::cout);
    std::cout << "\nInputs: $10.50/W power infrastructure, $4.20/W "
                 "cooling plant, 12-year life, COP 1.25, $100/MWh, "
                 "activity 0.75.\n";

    auto srvr1 = platform::makeSystem(platform::SystemClass::Srvr1);
    std::cout << "\nPlant COP sweep (srvr1 3-yr TCO):\n";
    Table c({"COP", "PUE", "L1", "Burden mult", "srvr1 TCO"});
    for (double cop : {1.0, 1.25, 1.67, 2.5, 5.0}) {
        FacilityParams f;
        f.cop = cop;
        auto p = deriveBurdenedParams(f, BurdenedPowerParams{});
        TcoModel model(RackCostParams{}, power::RackPowerParams{}, p);
        auto r =
            model.evaluate(srvr1.hardwareCost(), srvr1.hardwarePower());
        c.addRow({fmtF(cop, 2), fmtF(impliedPue(f), 2), fmtF(p.l1, 2),
                  fmtF(p.burdenMultiplier(), 2), fmtDollars(r.tco())});
    }
    c.print(std::cout);
    std::cout << "\nThe paper's 4x aggregated-cooling gain is the "
                 "COP 1.25 -> 5 row: packaging achieves at the "
                 "enclosure what a plant overhaul achieves at the "
                 "facility.\n";

    std::cout << "\nPower-delivery capex sweep (K1):\n";
    Table k({"Capex $/W", "K1", "Burden mult"});
    for (double capex : {5.0, 10.5, 15.0, 20.0, 25.0}) {
        FacilityParams f;
        f.powerCapexPerWatt = capex;
        auto p = deriveBurdenedParams(f, BurdenedPowerParams{});
        k.addRow({fmtF(capex, 1), fmtF(p.k1, 2),
                  fmtF(p.burdenMultiplier(), 2)});
    }
    k.print(std::cout);
    return 0;
}
