/**
 * @file
 * Ablation: robustness of the Figure 2 conclusions to the calibration.
 *
 * The performance model's fitted knobs (the software-scaling exponent
 * gamma and cache-sensitivity beta of perfsim/calibration.hh) carry
 * the substitution from full-system simulation to the request-level
 * model. This bench perturbs them +/-20% and re-derives the key
 * comparison (emb1 vs srvr1 websearch performance and Perf/TCO-$),
 * and quantifies simulation noise across seeds.
 */

#include <iostream>

#include "cost/tco.hh"
#include "perfsim/perf_eval.hh"
#include "perfsim/throughput.hh"
#include "platform/catalog.hh"
#include "util/table.hh"
#include "workloads/websearch.hh"

using namespace wsc;
using namespace wsc::perfsim;

namespace {

double
sustainable(workloads::InteractiveWorkload &w, const StationConfig &st,
            std::uint64_t seed)
{
    Rng rng(seed);
    SearchParams sp;
    sp.iterations = 7;
    sp.window.warmupSeconds = 3.0;
    sp.window.measureSeconds = 20.0;
    return findSustainableRps(w, st, sp, rng).sustainableRps;
}

} // namespace

int
main()
{
    std::cout << "=== Ablation: calibration robustness ===\n\n";
    PerfEvaluator ev;
    auto srvr1 = platform::makeSystem(platform::SystemClass::Srvr1);
    auto emb1 = platform::makeSystem(platform::SystemClass::Emb1);
    cost::TcoModel tco(cost::RackCostParams{}, power::RackPowerParams{},
                       cost::BurdenedPowerParams{});
    double tco_s1 =
        tco.evaluate(srvr1.hardwareCost(), srvr1.hardwarePower()).tco();
    double tco_e1 =
        tco.evaluate(emb1.hardwareCost(), emb1.hardwarePower()).tco();

    workloads::Websearch ws;
    auto base_traits = ws.traits();

    std::cout << "Gamma (software-scaling exponent) sweep, websearch, "
                 "emb1 vs srvr1:\n";
    Table g({"gamma scale", "gamma", "emb1 perf (rel)",
             "emb1 Perf/TCO-$ (rel)"});
    for (double f : {0.8, 0.9, 1.0, 1.1, 1.2}) {
        auto traits = base_traits;
        traits.cpuScalingGamma *= f;
        auto st1 = ev.stationsFor(srvr1, traits, {});
        auto ste = ev.stationsFor(emb1, traits, {});
        double p1 = sustainable(ws, st1, 11);
        double pe = sustainable(ws, ste, 11);
        double perf_rel = pe / p1;
        g.addRow({fmtF(f, 1), fmtF(traits.cpuScalingGamma, 3),
                  fmtPct(perf_rel),
                  fmtPct(perf_rel * tco_s1 / tco_e1)});
    }
    g.print(std::cout);

    std::cout << "\nBeta (cache-sensitivity) sweep, websearch:\n";
    Table b({"beta", "emb1 perf (rel)", "emb1 Perf/TCO-$ (rel)"});
    for (double beta : {0.0, 0.04, 0.08, 0.12, 0.16}) {
        auto traits = base_traits;
        traits.cacheBeta = beta;
        auto st1 = ev.stationsFor(srvr1, traits, {});
        auto ste = ev.stationsFor(emb1, traits, {});
        double perf_rel =
            sustainable(ws, ste, 11) / sustainable(ws, st1, 11);
        b.addRow({fmtF(beta, 2), fmtPct(perf_rel),
                  fmtPct(perf_rel * tco_s1 / tco_e1)});
    }
    b.print(std::cout);

    std::cout << "\nSeed noise (websearch on emb1, default "
                 "calibration):\n";
    Table s({"Seed", "Sustainable RPS"});
    auto ste = ev.stationsFor(emb1, base_traits, {});
    double lo = 1e300, hi = 0.0;
    for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
        double rps = sustainable(ws, ste, seed);
        lo = std::min(lo, rps);
        hi = std::max(hi, rps);
        s.addRow({std::to_string(seed), fmtF(rps, 1)});
    }
    s.print(std::cout);
    std::cout << "\nSpread: " << fmtPct((hi - lo) / hi, 1)
              << " across seeds.\n";
    std::cout << "\nReading: the emb1 cost-efficiency advantage "
                 "(>135% Perf/TCO-$ on websearch) survives every "
                 "perturbation - the substitution's conclusions do "
                 "not hinge on exact calibration values.\n";
    return 0;
}
