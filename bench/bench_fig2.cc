/**
 * @file
 * Reproduces paper Figure 2: benefits of low-cost, low-power CPUs from
 * non-server markets.
 *
 * (a) Infrastructure-cost breakdown across the six systems.
 * (b) Burdened power-and-cooling cost breakdown.
 * (c) Perf, Perf/Inf-$, Perf/W, Perf/TCO-$ relative to srvr1 for each
 *     workload, with harmonic means.
 */

#include <iostream>

#include "core/design.hh"
#include "core/evaluator.hh"
#include "core/report.hh"
#include "cost/tco.hh"
#include "platform/catalog.hh"
#include "util/table.hh"

using namespace wsc;
using namespace wsc::core;

int
main()
{
    cost::TcoModel model(cost::RackCostParams{}, power::RackPowerParams{},
                         cost::BurdenedPowerParams{});

    std::cout << "=== Figure 2(a): infrastructure-$ breakdown ===\n\n";
    Table inf({"System", "CPU", "Memory", "Disk", "Board", "Power+fan",
               "Rack", "Total"});
    for (const auto &s : platform::allSystems()) {
        auto r = model.evaluate(s.hardwareCost(), s.hardwarePower());
        inf.addRow({s.name, fmtDollars(r.hw.cpu),
                    fmtDollars(r.hw.memory), fmtDollars(r.hw.disk),
                    fmtDollars(r.hw.boardMgmt),
                    fmtDollars(r.hw.powerFans),
                    fmtDollars(r.rackHwShare),
                    fmtDollars(r.infrastructure())});
    }
    inf.print(std::cout);

    std::cout << "\n=== Figure 2(b): P&C-$ breakdown (3-yr burdened) "
                 "===\n\n";
    Table pc({"System", "CPU", "Memory", "Disk", "Board", "Power+fan",
              "Rack", "Total"});
    for (const auto &s : platform::allSystems()) {
        auto r = model.evaluate(s.hardwareCost(), s.hardwarePower());
        pc.addRow({s.name, fmtDollars(r.pc.cpu),
                   fmtDollars(r.pc.memory), fmtDollars(r.pc.disk),
                   fmtDollars(r.pc.boardMgmt),
                   fmtDollars(r.pc.powerFans),
                   fmtDollars(r.switchPcShare),
                   fmtDollars(r.powerCooling())});
    }
    pc.print(std::cout);

    std::cout << "\n=== Figure 2(c): performance, cost and power "
                 "efficiencies (relative to srvr1) ===\n\n";
    EvaluatorParams params;
    params.search.window.warmupSeconds = 5.0;
    params.search.window.measureSeconds = 30.0;
    params.search.iterations = 8;
    DesignEvaluator ev(params);

    auto baseline = DesignConfig::baseline(platform::SystemClass::Srvr1);
    std::vector<DesignConfig> designs;
    for (auto cls :
         {platform::SystemClass::Srvr2, platform::SystemClass::Desk,
          platform::SystemClass::Mobl, platform::SystemClass::Emb1,
          platform::SystemClass::Emb2})
        designs.push_back(DesignConfig::baseline(cls));

    for (auto metric :
         {Metric::Perf, Metric::PerfPerInfDollar, Metric::PerfPerWatt,
          Metric::PerfPerPcDollar, Metric::PerfPerTcoDollar}) {
        relativeTable(ev, designs, baseline, metric).print(std::cout);
        std::cout << "\n";
    }
    std::cout
        << "Paper Figure 2(c) reference rows (srvr2/desk/mobl/emb1/"
           "emb2):\n"
           "  Perf websearch 68/36/34/24/11%  webmail 48/19/17/11/5%\n"
           "  Perf ytube 97/92/95/86/24%  mapred-wc 93/78/72/51/12%\n"
           "  Perf/TCO-$ HMean 126/132/140/192/95%\n";
    return 0;
}
