/**
 * @file
 * Ablation: measurement methodology - open-loop bisection vs the
 * paper's adaptive closed-loop client driver.
 *
 * The paper measures RPS-with-QoS using a client driver that adapts
 * its population to observed QoS (Section 2.1); this library's default
 * is an open-loop bisection. The two are independent estimators of the
 * same quantity; this bench cross-validates them on every interactive
 * workload and platform pair used in Figure 2(c).
 */

#include <iostream>

#include "perfsim/closed_loop.hh"
#include "perfsim/perf_eval.hh"
#include "perfsim/throughput.hh"
#include "platform/catalog.hh"
#include "util/table.hh"

using namespace wsc;
using namespace wsc::perfsim;

int
main()
{
    std::cout << "=== Ablation: open-loop bisection vs adaptive "
                 "closed-loop driver ===\n\n";
    PerfEvaluator ev;
    SearchParams sp;
    sp.iterations = 7;
    sp.window.warmupSeconds = 3.0;
    sp.window.measureSeconds = 15.0;
    ClosedLoopParams cp;
    cp.initialClients = 16;
    cp.epochSeconds = 12.0;
    cp.epochs = 20; // enough growth headroom for srvr1's ~700 RPS


    for (auto b :
         {workloads::Benchmark::Websearch, workloads::Benchmark::Webmail,
          workloads::Benchmark::Ytube}) {
        std::cout << workloads::to_string(b) << ":\n";
        Table t({"System", "Open-loop RPS", "Closed-loop RPS",
                 "Clients at best", "Agreement"});
        for (auto cls :
             {platform::SystemClass::Srvr1, platform::SystemClass::Desk,
              platform::SystemClass::Emb1}) {
            auto server = platform::makeSystem(cls);
            auto w = workloads::makeBenchmark(b);
            auto &iw =
                dynamic_cast<workloads::InteractiveWorkload &>(*w);
            auto st = ev.stationsFor(server, iw.traits(), {});

            Rng ro(100 + int(cls));
            auto open = findSustainableRps(iw, st, sp, ro);
            Rng rc(200 + int(cls));
            auto closed = runClosedLoop(iw, st, cp, rc);

            double agreement =
                open.sustainableRps > 0.0
                    ? closed.sustainedRps / open.sustainableRps
                    : 0.0;
            t.addRow({server.name, fmtF(open.sustainableRps, 0),
                      fmtF(closed.sustainedRps, 0),
                      std::to_string(closed.clientsAtBest),
                      fmtPct(agreement)});
        }
        t.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "Agreement within ~25% validates the open-loop "
                 "methodology used by the figure benches.\n";
    return 0;
}
