/**
 * @file
 * Guide-table sampling throughput: scalar draws vs the batched
 * SampleBatcher (sim/batch_sampler.hh).
 *
 * The scalar path pays two dependent cache misses per draw on large
 * tables (the uniformly-hit guide cell, then the CDF resolution line);
 * the batcher issues a block of prefetches per pass so the misses
 * overlap. Two comparisons per table:
 *
 *  - mt19937 rows: batched draws from the same Rng must reproduce the
 *    scalar sequence exactly (the batcher consumes one uniform per
 *    draw in draw order) — gated on bit-identity;
 *  - splitmix64 rows: the fast-mode engine (util/random.hh), same
 *    uniform law but different bits, so the gate is a two-sample KS
 *    test on the drawn ranks instead (stats/equivalence.hh).
 *
 * The bench exits nonzero if any gate fails. Timings land in
 * BENCH_sampler.json.
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/batch_sampler.hh"
#include "sim/distributions.hh"
#include "stats/equivalence.hh"
#include "util/args.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace wsc;
using namespace wsc::sim;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Best-of-N timing: the minimum discards interference from a noisy
 * shared host, which the mean does not. */
constexpr int kTimedReps = 3;

struct SamplerRow {
    std::string name;
    std::string engine;  //!< uniform source of the batched side
    std::string gate;    //!< "bit-identity" or "ks"
    std::size_t tableEntries = 0;
    std::size_t draws = 0;
    double scalarSec = 0.0;
    double batchedSec = 0.0;
    bool ok = false;
    double ksP = 1.0; //!< KS-gated rows only

    double
    scalarDrawsPerSec() const
    {
        return scalarSec > 0.0 ? double(draws) / scalarSec : 0.0;
    }
    double
    batchedDrawsPerSec() const
    {
        return batchedSec > 0.0 ? double(draws) / batchedSec : 0.0;
    }
    double
    speedup() const
    {
        return batchedSec > 0.0 ? scalarSec / batchedSec : 0.0;
    }
};

SamplerRow
compareZipf(const std::string &name, std::uint64_t items,
            double exponent, std::size_t draws, std::uint64_t seed)
{
    SamplerRow row;
    row.name = name;
    row.engine = "mt19937";
    row.gate = "bit-identity";
    row.tableEntries = std::size_t(items);
    row.draws = draws;

    ZipfDist dist(items, exponent);
    std::vector<std::uint64_t> scalarOut(draws), batchedOut(draws);

    for (int rep = 0; rep < kTimedReps; ++rep) {
        Rng rng(seed);
        auto t0 = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < draws; ++i)
            scalarOut[i] = dist.sampleRank(rng);
        double sec = secondsSince(t0);
        if (rep == 0 || sec < row.scalarSec)
            row.scalarSec = sec;
    }

    SampleBatcher batcher;
    for (int rep = 0; rep < kTimedReps; ++rep) {
        Rng rng(seed);
        auto t0 = std::chrono::steady_clock::now();
        batcher.drawZipfRanks(dist, rng, batchedOut.data(), draws);
        double sec = secondsSince(t0);
        if (rep == 0 || sec < row.batchedSec)
            row.batchedSec = sec;
    }

    row.ok = scalarOut == batchedOut;
    return row;
}

/**
 * The fast-mode configuration: batched draws over SplitMix64 uniforms
 * vs the scalar mt19937 path. Not bit-comparable, so the gate is a
 * two-sample KS test on the drawn ranks — with millions of draws per
 * side any law mismatch drives the p-value to ~0.
 */
SamplerRow
compareZipfFast(const std::string &name, std::uint64_t items,
                double exponent, std::size_t draws, std::uint64_t seed)
{
    SamplerRow row;
    row.name = name;
    row.engine = "splitmix64";
    row.gate = "ks";
    row.tableEntries = std::size_t(items);
    row.draws = draws;

    ZipfDist dist(items, exponent);
    std::vector<std::uint64_t> scalarOut(draws), batchedOut(draws);

    for (int rep = 0; rep < kTimedReps; ++rep) {
        Rng rng(seed);
        auto t0 = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < draws; ++i)
            scalarOut[i] = dist.sampleRank(rng);
        double sec = secondsSince(t0);
        if (rep == 0 || sec < row.scalarSec)
            row.scalarSec = sec;
    }

    SampleBatcher batcher;
    std::uint64_t fastSeed = Rng(seed).stream("uniforms").seed();
    for (int rep = 0; rep < kTimedReps; ++rep) {
        SplitMix64 rng(fastSeed);
        auto t0 = std::chrono::steady_clock::now();
        batcher.drawZipfRanks(dist, rng, batchedOut.data(), draws);
        double sec = secondsSince(t0);
        if (rep == 0 || sec < row.batchedSec)
            row.batchedSec = sec;
    }

    // KS on (subsampled) ranks: the test is O(n log n) in sample size
    // and saturates in power long before millions of points.
    constexpr std::size_t kKsCap = 200000;
    std::size_t stride = draws > kKsCap ? draws / kKsCap : 1;
    std::vector<double> a, b;
    a.reserve(draws / stride + 1);
    b.reserve(draws / stride + 1);
    for (std::size_t i = 0; i < draws; i += stride) {
        a.push_back(double(scalarOut[i]));
        b.push_back(double(batchedOut[i]));
    }
    auto ks = stats::ksTwoSample(std::move(a), std::move(b));
    row.ksP = ks.pValue;
    row.ok = ks.passes(stats::EquivalenceSpec{}.ksAlpha);
    return row;
}

SamplerRow
compareEmpirical(const std::string &name, std::size_t draws,
                 std::uint64_t seed)
{
    SamplerRow row;
    row.name = name;
    row.engine = "mt19937";
    row.gate = "bit-identity";
    row.draws = draws;

    // The websearch keyword-count mix: a 5-entry table, fully
    // cache-resident — the case where batching must at least not lose.
    EmpiricalDist dist({1.0, 2.0, 3.0, 4.0, 5.0},
                       {0.28, 0.36, 0.22, 0.10, 0.04});
    row.tableEntries = dist.size();
    std::vector<std::uint32_t> scalarOut(draws), batchedOut(draws);

    for (int rep = 0; rep < kTimedReps; ++rep) {
        Rng rng(seed);
        auto t0 = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < draws; ++i)
            scalarOut[i] = std::uint32_t(dist.sampleIndex(rng));
        double sec = secondsSince(t0);
        if (rep == 0 || sec < row.scalarSec)
            row.scalarSec = sec;
    }

    SampleBatcher batcher;
    for (int rep = 0; rep < kTimedReps; ++rep) {
        Rng rng(seed);
        auto t0 = std::chrono::steady_clock::now();
        batcher.drawEmpiricalIndices(dist, rng, batchedOut.data(),
                                     draws);
        double sec = secondsSince(t0);
        if (rep == 0 || sec < row.batchedSec)
            row.batchedSec = sec;
    }

    row.ok = scalarOut == batchedOut;
    return row;
}

} // namespace

int
run(int argc, char **argv)
{
    ArgParser args("bench_sampler",
                   "scalar vs batched guide-table sampling, gated on "
                   "sequence bit-identity");
    args.addOption("draws", "draws per comparison", "2000000")
        .addOption("out", "JSON output path", "BENCH_sampler.json");
    if (!args.parse(argc, argv))
        return 0;

    double drawsArg = args.getDouble("draws");
    if (drawsArg < 1000.0 || drawsArg > 1e9)
        fatal("--draws must be in [1e3, 1e9]");
    std::size_t draws = std::size_t(drawsArg);

    std::cout << "=== Guide-table sampling throughput (" << draws
              << " draws, best of " << kTimedReps << ") ===\n\n";

    std::vector<SamplerRow> rows;
    // The closed-loop suite's actual tables: websearch terms (200k,
    // ~2.4 MB guide+cdf, misses on every draw) and ytube popularity
    // (100k), plus the tiny cache-resident keyword mix. The mt19937
    // rows isolate the batching win (bit-identical draws); the
    // splitmix64 rows measure the full fast-mode configuration.
    rows.push_back(
        compareZipf("zipf-200k (websearch terms)", 200000, 0.95, draws,
                    11));
    rows.push_back(
        compareZipf("zipf-100k (ytube popularity)", 100000, 0.9, draws,
                    22));
    rows.push_back(
        compareZipf("zipf-10k (small table)", 10000, 0.9, draws, 33));
    rows.push_back(
        compareEmpirical("empirical-5 (keyword mix)", draws, 44));
    rows.push_back(compareZipfFast("zipf-200k fast (websearch terms)",
                                   200000, 0.95, draws, 11));
    rows.push_back(compareZipfFast("zipf-100k fast (ytube popularity)",
                                   100000, 0.9, draws, 22));

    Table t({"Table", "Engine", "Entries", "Scalar Mdraw/s",
             "Batched Mdraw/s", "Speedup", "Result"});
    bool allOk = true;
    for (const auto &r : rows) {
        allOk = allOk && r.ok;
        std::string result;
        if (r.gate == "bit-identity")
            result = r.ok ? "bit-identical" : "MISMATCH";
        else
            result = (r.ok ? "KS pass p=" : "KS FAIL p=") +
                     fmtF(r.ksP, 3);
        t.addRow({r.name, r.engine, std::to_string(r.tableEntries),
                  fmtF(r.scalarDrawsPerSec() / 1e6, 2),
                  fmtF(r.batchedDrawsPerSec() / 1e6, 2),
                  fmtF(r.speedup(), 2) + "x", result});
    }
    t.print(std::cout);

    // Acceptance target: >= 2x on at least one workload-sized table
    // (the splitmix64 rows are the fast-mode configuration).
    bool target = false;
    for (const auto &r : rows)
        if (r.tableEntries >= 100000)
            target = target || r.speedup() >= 2.0;
    std::cout << "\nTarget: >= 2x on a workload-sized table "
              << (target ? "met" : "NOT MET") << "\n";

    std::ostringstream json;
    json.setf(std::ios::fixed);
    json.precision(6);
    json << "{\n"
         << "  \"bench\": \"sampler\",\n"
         << "  \"schema_version\": 1,\n"
         << "  \"config\": {\n"
         << "    \"draws\": " << draws << ",\n"
         << "    \"reps\": " << kTimedReps << "\n"
         << "  },\n"
         << "  \"runs\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto &r = rows[i];
        json << "    {\"table\": \"" << r.name
             << "\", \"engine\": \"" << r.engine
             << "\", \"gate\": \"" << r.gate
             << "\", \"entries\": " << r.tableEntries
             << ", \"scalar_seconds\": " << r.scalarSec
             << ", \"batched_seconds\": " << r.batchedSec
             << ", \"scalar_draws_per_sec\": " << r.scalarDrawsPerSec()
             << ", \"batched_draws_per_sec\": "
             << r.batchedDrawsPerSec()
             << ", \"speedup\": " << r.speedup()
             << ", \"ks_p_value\": " << r.ksP
             << ", \"gate_passed\": " << (r.ok ? "true" : "false")
             << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"targets\": {\n"
         << "    \"workload_table_2x\": " << (target ? "true" : "false")
         << "\n"
         << "  }\n"
         << "}\n";

    std::ofstream out(args.get("out"));
    out << json.str();
    std::cout << "\nWrote " << args.get("out") << "\n";

    return allOk ? 0 : 1;
}

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
