/**
 * @file
 * Streaming-trace replay throughput and the replacement-policy zoo.
 *
 * Two questions, both answered with gates:
 *
 *  1. Does the mmap streaming path keep up with a fully-materialized
 *     replay? A large .strace file is generated once, then replayed
 *     (a) straight off the mapping via replayStream and (b) from an
 *     in-RAM vector via replayPages. Target: streaming >= 0.8x the
 *     materialized throughput; the two replays must be bit-identical.
 *
 *  2. Do the zoo kernels (ARC/SLRU/2Q/LFUDA, plus the original trio)
 *     match their per-access reference policies? Every workload x
 *     policy cell replays through both and the exit code is the
 *     identity verdict — a kernel that got fast by getting wrong
 *     fails CI here. The same pass prints the policy-zoo hit-rate
 *     table that EXPERIMENTS.md quotes.
 *
 * Emits BENCH_trace_replay.json.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "memblade/replacement.hh"
#include "memblade/replay.hh"
#include "memblade/trace_stream.hh"
#include "util/args.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace wsc;
using namespace wsc::memblade;

namespace {

constexpr int kTimedReps = 3;

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

bool
sameStats(const ReplayStats &a, const ReplayStats &b)
{
    return a.accesses == b.accesses && a.hits == b.hits &&
           a.misses == b.misses && a.coldMisses == b.coldMisses;
}

struct ZooCell {
    std::string workload;
    std::string policy;
    double hitRate = 0.0;
    bool oracleIdentical = false;
};

/**
 * One workload x policy cell: the batched kernel via replayPages vs
 * the per-access reference policy, on the same pregenerated trace
 * with the same kernel seed. Identity is hits+misses exact.
 */
ZooCell
zooCell(const std::string &workload, const std::vector<PageId> &trace,
        std::uint64_t pageBound, PolicyKind kind, std::size_t frames)
{
    ZooCell cell;
    cell.workload = workload;
    cell.policy = to_string(kind);

    auto fast = replayPages(trace.data(), trace.size(), kind, frames,
                            pageBound, Rng(7));

    auto ref = makePolicy(kind, frames, Rng(7));
    std::uint64_t refHits = 0;
    for (PageId p : trace)
        refHits += ref->access(p);

    cell.hitRate = trace.empty()
                       ? 0.0
                       : double(fast.hits) / double(trace.size());
    cell.oracleIdentical = fast.hits == refHits &&
                           fast.misses == trace.size() - refHits;
    return cell;
}

} // namespace

int
run(int argc, char **argv)
{
    ArgParser args("bench_trace_replay",
                   "streaming vs materialized replay throughput and "
                   "the policy-zoo oracle gate");
    args.addOption("accesses",
                   "streaming-trace length for the throughput race",
                   "100000000")
        .addOption("zoo-accesses",
                   "trace length per policy-zoo cell", "2000000")
        .addOption("trace-file", "scratch .strace path",
                   "bench_trace_replay.strace")
        .addOption("out", "JSON output path",
                   "BENCH_trace_replay.json");
    args.addFlag("keep-trace", "do not delete the scratch trace");
    if (!args.parse(argc, argv))
        return 0;

    double accessesArg = args.getDouble("accesses");
    if (accessesArg < 1.0 || accessesArg > 2e9)
        fatal("--accesses must be in [1, 2e9]");
    const auto accesses = std::uint64_t(accessesArg);
    double zooArg = args.getDouble("zoo-accesses");
    if (zooArg < 1.0 || zooArg > 1e8)
        fatal("--zoo-accesses must be in [1, 1e8]");
    const auto zooAccesses = std::uint64_t(zooArg);
    const std::string tracePath = args.get("trace-file");
    bool allIdentical = true;

    // ----------------------------------------------------------------
    // 1. Streaming vs materialized throughput.
    // ----------------------------------------------------------------
    auto profile = profileFor(workloads::Benchmark::Websearch);
    auto frames =
        std::size_t(std::ceil(double(profile.footprintPages) * 0.25));

    std::cout << "=== Streaming-trace replay (websearch, " << accesses
              << " accesses, 25% local) ===\n\n";

    {
        // Constant-memory generation straight into the stream writer.
        TraceGenerator gen(profile, Rng(3));
        TraceStreamWriter w(tracePath);
        std::vector<PageId> buf(4096);
        std::uint64_t done = 0;
        while (done < accesses) {
            auto n = std::size_t(
                std::min<std::uint64_t>(buf.size(), accesses - done));
            gen.nextBatch(buf.data(), n);
            for (std::size_t i = 0; i < n; ++i)
                w.append(buf[i]);
            done += n;
        }
        w.close();
    }

    double streamSec = 0.0;
    ReplayStats streamStats;
    bool usedMmap = false;
    for (int rep = 0; rep < kTimedReps; ++rep) {
        TraceStream ts(tracePath);
        usedMmap = ts.mapped();
        auto t0 = std::chrono::steady_clock::now();
        auto st = replayStream(ts, PolicyKind::Lru, frames, Rng(4));
        double sec = secondsSince(t0);
        if (rep == 0 || sec < streamSec)
            streamSec = sec;
        streamStats = st;
    }

    double matSec = 0.0;
    ReplayStats matStats;
    {
        auto trace = readTraceStreamPages(tracePath);
        std::uint64_t bound = traceStreamInfo(tracePath).pageBound;
        for (int rep = 0; rep < kTimedReps; ++rep) {
            auto t0 = std::chrono::steady_clock::now();
            auto st = replayPages(trace.data(), trace.size(),
                                  PolicyKind::Lru, frames, bound,
                                  Rng(4));
            double sec = secondsSince(t0);
            if (rep == 0 || sec < matSec)
                matSec = sec;
            matStats = st;
        }
    }

    bool streamIdentical = sameStats(streamStats, matStats);
    allIdentical = allIdentical && streamIdentical;
    double streamRate = double(accesses) / streamSec;
    double matRate = double(accesses) / matSec;
    double ratio = matRate > 0.0 ? streamRate / matRate : 0.0;
    bool throughputTarget = ratio >= 0.8;

    std::cout << "Streaming (" << (usedMmap ? "mmap" : "buffered")
              << "): " << fmtF(streamRate / 1e6, 2)
              << " Mpages/s; materialized: " << fmtF(matRate / 1e6, 2)
              << " Mpages/s; ratio " << fmtF(ratio, 3) << " ("
              << (streamIdentical ? "bit-identical" : "MISMATCH")
              << ")\n";
    std::cout << "Target: streaming >= 0.8x materialized "
              << (throughputTarget ? "met" : "NOT MET") << "\n";

    if (!args.flag("keep-trace"))
        std::remove(tracePath.c_str());

    // ----------------------------------------------------------------
    // 2. Policy zoo: hit-rate table + oracle identity gate.
    // ----------------------------------------------------------------
    std::cout << "\n=== Policy zoo (" << zooAccesses
              << " accesses per cell, 25% local) ===\n\n";

    const workloads::Benchmark benches[] = {
        workloads::Benchmark::Websearch,
        workloads::Benchmark::Webmail,
        workloads::Benchmark::Ytube,
        workloads::Benchmark::MapredWc,
        workloads::Benchmark::MapredWr,
    };

    std::vector<ZooCell> cells;
    std::vector<std::string> header{"Workload"};
    for (PolicyKind kind : allPolicyKinds)
        header.push_back(to_string(kind));
    Table zoo(header);
    for (auto b : benches) {
        auto p = profileFor(b);
        auto trace = generateTrace(p, zooAccesses, Rng(11));
        auto zf = std::size_t(
            std::ceil(double(p.footprintPages) * 0.25));
        std::vector<std::string> row{p.name};
        for (PolicyKind kind : allPolicyKinds) {
            auto cell =
                zooCell(p.name, trace, p.footprintPages, kind, zf);
            allIdentical = allIdentical && cell.oracleIdentical;
            row.push_back(fmtPct(cell.hitRate, 2) +
                          (cell.oracleIdentical ? "" : " (MISMATCH)"));
            cells.push_back(cell);
        }
        zoo.addRow(row);
    }
    zoo.print(std::cout);
    std::cout << "\nOracle gate: every kernel vs per-access reference "
              << (allIdentical ? "identical" : "MISMATCH") << "\n";

    // ----------------------------------------------------------------
    // JSON report.
    // ----------------------------------------------------------------
    std::ostringstream json;
    json.setf(std::ios::fixed);
    json.precision(6);
    json << "{\n"
         << "  \"bench\": \"trace_replay\",\n"
         << "  \"schema_version\": 1,\n"
         << "  \"streaming\": {\n"
         << "    \"accesses\": " << accesses << ",\n"
         << "    \"mmap\": " << (usedMmap ? "true" : "false") << ",\n"
         << "    \"stream_pages_per_sec\": " << streamRate << ",\n"
         << "    \"materialized_pages_per_sec\": " << matRate << ",\n"
         << "    \"ratio\": " << ratio << ",\n"
         << "    \"target_0p8\": "
         << (throughputTarget ? "true" : "false") << ",\n"
         << "    \"bit_identical\": "
         << (streamIdentical ? "true" : "false") << "\n"
         << "  },\n"
         << "  \"zoo\": {\n"
         << "    \"accesses_per_cell\": " << zooAccesses << ",\n"
         << "    \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto &c = cells[i];
        json << "      {\"workload\": \"" << c.workload
             << "\", \"policy\": \"" << c.policy
             << "\", \"hit_rate\": " << c.hitRate
             << ", \"oracle_identical\": "
             << (c.oracleIdentical ? "true" : "false") << "}"
             << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    json << "    ]\n"
         << "  },\n"
         << "  \"all_identical\": "
         << (allIdentical ? "true" : "false") << "\n"
         << "}\n";

    std::ofstream out(args.get("out"));
    out << json.str();
    std::cout << "\nWrote " << args.get("out") << "\n";

    return allIdentical ? 0 : 1;
}

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
