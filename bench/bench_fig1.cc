/**
 * @file
 * Reproduces paper Figure 1: cost models and breakdowns.
 *
 * (a) Per-server hardware and 3-year burdened power & cooling line
 *     items for srvr1 and srvr2 (published totals: $5,758 / $3,249).
 * (b) srvr2 TCO breakdown percentages (the pie chart).
 */

#include <iostream>

#include "cost/tco.hh"
#include "platform/catalog.hh"
#include "util/table.hh"

using namespace wsc;
using namespace wsc::platform;

int
main()
{
    cost::TcoModel model(cost::RackCostParams{}, power::RackPowerParams{},
                         cost::BurdenedPowerParams{});
    auto s1 = makeSystem(SystemClass::Srvr1);
    auto s2 = makeSystem(SystemClass::Srvr2);
    auto r1 = model.evaluate(s1.hardwareCost(), s1.hardwarePower());
    auto r2 = model.evaluate(s2.hardwareCost(), s2.hardwarePower());

    std::cout << "=== Figure 1(a): cost model line items ===\n\n";
    Table t({"Details", "Srvr1", "Srvr2"});
    auto money = [](double v) { return fmtDollars(v); };
    t.addRow({"Per-server cost ($)", money(r1.serverHw()),
              money(r2.serverHw())});
    t.addRow({"  CPU", money(r1.hw.cpu), money(r2.hw.cpu)});
    t.addRow({"  Memory", money(r1.hw.memory), money(r2.hw.memory)});
    t.addRow({"  Disk", money(r1.hw.disk), money(r2.hw.disk)});
    t.addRow({"  Board + mgmt", money(r1.hw.boardMgmt),
              money(r2.hw.boardMgmt)});
    t.addRow({"  Power + fans", money(r1.hw.powerFans),
              money(r2.hw.powerFans)});
    t.addRow({"Switch/rack cost", money(2750.0), money(2750.0)});
    t.addSeparator();
    t.addRow({"Server power (Watt)", fmtF(r1.watts.total(), 0),
              fmtF(r2.watts.total(), 0)});
    t.addRow({"  CPU", fmtF(r1.watts.cpu, 0), fmtF(r2.watts.cpu, 0)});
    t.addRow({"  Memory", fmtF(r1.watts.memory, 0),
              fmtF(r2.watts.memory, 0)});
    t.addRow({"  Disk", fmtF(r1.watts.disk, 0),
              fmtF(r2.watts.disk, 0)});
    t.addRow({"  Board + mgmt", fmtF(r1.watts.boardMgmt, 0),
              fmtF(r2.watts.boardMgmt, 0)});
    t.addRow({"  Power + fans", fmtF(r1.watts.powerFans, 0),
              fmtF(r2.watts.powerFans, 0)});
    t.addRow({"Switch/rack power", "40", "40"});
    t.addSeparator();
    t.addRow({"Activity factor", "0.75", "0.75"});
    t.addRow({"K1 / L1 / K2", "1.33 / 0.8 / 0.667",
              "1.33 / 0.8 / 0.667"});
    t.addRow({"3-yr power & cooling", money(r1.powerCooling()),
              money(r2.powerCooling())});
    t.addRow({"Total costs ($)", money(r1.tco()), money(r2.tco())});
    t.print(std::cout);
    std::cout << "\nPaper totals: $5,758 (srvr1), $3,249 (srvr2); P&C "
                 "$2,464 / $1,561.\n";

    std::cout << "\n=== Figure 1(b): srvr2 TCO breakdown ===\n\n";
    Table pie({"Component", "Dollars", "Share"});
    for (const auto &slice : model.breakdown(r2))
        pie.addRow({slice.label, fmtDollars(slice.dollars),
                    fmtPct(slice.fraction)});
    pie.print(std::cout);
    std::cout << "\nPaper pie: CPU HW 20%, CPU P&C 22%, Mem HW 11%, "
                 "Mem P&C 6%, Disk HW 4%, Disk P&C 2%, Board HW 8%, "
                 "Board P&C 9%, Fan HW 8%, Fans P&C 8%, Rack HW 2%, "
                 "Rack P&C 0%.\n";
    return 0;
}
