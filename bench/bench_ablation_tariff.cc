/**
 * @file
 * Ablation: electricity tariff sweep ($50-$170/MWh, paper Section 2.2).
 *
 * Higher tariffs weight the P&C share of TCO more heavily, which
 * favors the low-power designs; the bench quantifies by how much.
 */

#include <iostream>

#include "core/design.hh"
#include "core/evaluator.hh"
#include "util/table.hh"

using namespace wsc;
using namespace wsc::core;

int
main()
{
    std::cout << "=== Ablation: electricity tariff sweep ===\n\n";
    Table t({"Tariff ($/MWh)", "srvr1 P&C share", "emb1 P&C share",
             "emb1/srvr1 Perf/TCO-$ (mapred-wc)"});
    for (double tariff : {50.0, 80.0, 100.0, 135.0, 170.0}) {
        EvaluatorParams params;
        params.burden.tariffPerMWh = tariff;
        DesignEvaluator ev(params);
        auto s1 = DesignConfig::baseline(platform::SystemClass::Srvr1);
        auto e1 = DesignConfig::baseline(platform::SystemClass::Emb1);
        auto m_s1 = ev.evaluate(s1, workloads::Benchmark::MapredWc);
        auto m_e1 = ev.evaluate(e1, workloads::Benchmark::MapredWc);
        auto r = relativeTo(m_e1, m_s1);
        t.addRow({fmtF(tariff, 0),
                  fmtPct(m_s1.pcDollars / m_s1.tcoDollars),
                  fmtPct(m_e1.pcDollars / m_e1.tcoDollars),
                  fmtPct(r.perfPerTcoDollar)});
    }
    t.print(std::cout);
    return 0;
}
