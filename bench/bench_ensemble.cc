/**
 * @file
 * Ensemble-DES hot-path scaling: events/sec by event-queue backend,
 * shard count, and worker count — plus the fast-mode/2 macro-event
 * arms and their statistical-equivalence gate.
 *
 * Runs the identical warehouse-scale ensemble simulation
 * (nonstationary diurnal arrivals + MMPP flash-crowd process,
 * per-server sleep-state machines, PowerOff autoscaling) across a
 * grid of execution knobs — heap vs calendar event ordering, 1-8
 * shards, 1-4 workers — verifies every run produces byte-identical
 * ensemble report JSON (the kernel's determinism contract), and
 * reports kernel throughput per arm.
 *
 * What the arms mean:
 *  - queue: the heap is the O(log n) oracle; the calendar queue
 *    (sim/calendar_queue.hh) is the amortized-O(1) fast path. Their
 *    serial ratio is the headline number the CI perf gate tracks.
 *  - fast: arms running the fast-mode/2 macro-event engine
 *    (perfsim/ensemble_fast.cc). Fast arms are bit-identical to each
 *    other across backends/shards/workers — same determinism contract
 *    as exact mode — but not to the exact arms; exact vs fast is
 *    gated *statistically* instead (below). The headline is
 *    fast_vs_exact_ratio: simulated requests/sec, fast calendar
 *    serial over exact calendar serial.
 *  - shards on a single hardware thread measure cache locality (each
 *    shard's working set stays L2-resident); with real cores the
 *    worker arms add parallel execution on top. On a 1-CPU host the
 *    workers>1 arms are pure oversubscription noise, so they are
 *    skipped and marked "skipped_oversubscribed" in the JSON rather
 *    than recorded as if they measured something.
 *  - window_imbalance (busiest shard's share x shards, averaged over
 *    windows; 1.0 = balanced) bounds what parallel workers could ever
 *    deliver: speedup <= shards / imbalance regardless of core count.
 *
 * The fast-mode/2 equivalence gate (stats/equivalence.hh) replaces
 * the bit-identity oracle for the fast arms. A naive pooled KS
 * p-value over per-(cell, hour) samples is invalid here: cross-cell
 * spills and shared burst luck correlate every sample from one seed,
 * and exact-vs-exact A/A pools fail it outright. The gate instead
 * treats each run (one seed on one engine) as the exchangeable unit
 * and tests at two scales, on disjoint seed ranges per engine:
 *  - bench scale (the benchmarked config itself): seed-block
 *    permutation KS on per-cell *day-aggregate* utilization and
 *    completion-weighted latency, plus 95% CI overlap on per-seed
 *    kWh/day and QoS attainment. Catches coarse and day-integrated
 *    biases at the exact config whose speedup is being claimed.
 *  - dynamics scale (secondsPerHour = 60, so an "hour" spans many
 *    MMPP dwell cycles and hourly samples resolve the queueing
 *    dynamics): permutation KS on per-(cell, hour) utilization and
 *    mean-latency samples. Catches tail/dynamics distortions (a
 *    spill-ordering bug shows up here at D ~ 0.3 while day
 *    aggregates barely move).
 * Each permutation check mean-centers per-run blocks (removing
 * per-seed common shifts, which the CI-overlap checks own) and
 * rejects only when the observed D is at the top of the exact
 * permutation null. The policy energy ordering under fast mode
 * (power-off < always-on kWh/day) is spot-checked as well. The gate
 * verdict folds into the exit code exactly like the bit-identity
 * gate, so CI fails if fast mode drifts from the law.
 *
 * Methodology: wall times on shared hosts are noisy, so repetitions
 * are interleaved across arms (a slow host phase penalizes every arm
 * equally) and the best time per arm is kept — the least-contended
 * sample is the closest estimate of the true cost.
 *
 * Emits machine-readable BENCH_ensemble.json (schema v3, documented
 * in README.md) so later PRs can track the trajectory; CI recomputes
 * it fresh and gates on bit_identical, the equivalence gate, plus the
 * calendar/heap serial throughput ratio against the committed
 * baseline.
 */

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/diurnal.hh"
#include "core/ensemble.hh"
#include "obs/run_report.hh"
#include "perfsim/ensemble_sim.hh"
#include "stats/equivalence.hh"
#include "util/args.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace wsc;

namespace {

/** The identity serialization the determinism gate compares: the
 * ensemble.* report section without wall-clock fields. */
std::string
identityJson(const perfsim::EnsembleResult &r)
{
    core::EnsemblePolicyOutcome o;
    o.measured = r;
    obs::ReportOptions opts;
    opts.includeTimings = false;
    return obs::toJson(core::ensembleReport(o), opts);
}

struct Arm {
    sim::QueueKind queue = sim::QueueKind::Heap;
    unsigned shards = 1;
    unsigned workers = 1;
    bool fast = false;
    bool skipped = false;  //!< oversubscribed on a 1-CPU host
    double bestWall = 0.0; //!< min over reps
    std::uint64_t events = 0;
    std::uint64_t requests = 0; //!< offered arrivals
    double imbalance = 1.0;
    std::vector<std::uint64_t> shardEvents;

    bool serial() const { return shards == 1 && workers == 1; }
};

} // namespace

int
run(int argc, char **argv)
{
    ArgParser args("bench_ensemble",
                   "ensemble DES throughput by event-queue backend, "
                   "shard count, and worker count, with the "
                   "bit-identity gate and the fast-mode/2 "
                   "statistical-equivalence gate");
    args.addOption("servers", "fleet size", "100000")
        .addOption("cells", "dispatch cells (fixed logical lanes)",
                   "16")
        .addOption("hours", "simulated hours", "24")
        .addOption("seconds-per-hour",
                   "compressed seconds per simulated hour", "1.0")
        .addOption("reps",
                   "timed repetitions per arm (best kept)", "3")
        .addOption("gate-seeds",
                   "seeds per engine for the fast-vs-exact "
                   "equivalence gate (2-8; 5 gives a 126-partition "
                   "permutation null)",
                   "5")
        .addOption("out", "JSON output path", "BENCH_ensemble.json");
    if (!args.parse(argc, argv))
        return 0;

    double serversArg = args.getDouble("servers");
    if (serversArg < 1 || serversArg > 4e6)
        fatal("--servers must be in [1, 4e6]");
    double repsArg = args.getDouble("reps");
    if (repsArg < 1 || repsArg > 100)
        fatal("--reps must be in [1, 100]");
    unsigned reps = unsigned(repsArg);
    double gateSeedsArg = args.getDouble("gate-seeds");
    if (gateSeedsArg < 2 || gateSeedsArg > 8)
        fatal("--gate-seeds must be in [2, 8]");
    unsigned gateSeeds = unsigned(gateSeedsArg);
    double sph = args.getDouble("seconds-per-hour");
    if (sph <= 0.0)
        fatal("--seconds-per-hour must be positive");
    unsigned hw = std::max(std::thread::hardware_concurrency(), 1u);

    perfsim::EnsembleConfig cfg;
    cfg.servers = std::uint64_t(serversArg);
    cfg.cells = unsigned(args.getDouble("cells"));
    cfg.hours = unsigned(args.getDouble("hours"));
    cfg.secondsPerHour = sph;
    // Sustained full load rather than a diurnal valley: the bench
    // stresses kernel throughput at the fleet's design-point depth
    // all day (trough hours would just idle the event queue; the
    // diurnal dynamics themselves are covered by test_ensemble and
    // wsc_eval --ensemble).
    cfg.profile = perfsim::flatHourlyProfile();
    cfg.policy = perfsim::EnsemblePolicy::PowerOff;
    cfg.mmpp.enabled = true;
    // The widest legal conservative lookahead: one simulated hour
    // (the control plane reprograms rates at hour boundaries, so
    // windows cannot span them).
    cfg.networkLatencySeconds = sph;
    // Compressed-timescale transitions (a real 30 s boot would span
    // whole compressed hours).
    cfg.power.bootSeconds = sph;
    cfg.power.sleepWakeSeconds = 0.25 * sph;
    cfg.power.idleToSleepSeconds = 0.5 * sph;

    std::cout << "=== Ensemble hot-path scaling: " << cfg.servers
              << " servers x " << cfg.hours << "h, " << cfg.cells
              << " cells, policy " << to_string(cfg.policy)
              << ", " << hw << " hardware thread(s) ===\n\n";

    // Untimed warmup at a reduced fleet: pays one-time lazy costs
    // (allocator growth, page faults on the binary) without charging
    // any timed arm for them. Both engines get warmed.
    {
        perfsim::EnsembleConfig w = cfg;
        w.servers = std::max<std::uint64_t>(cfg.servers / 10, 1000);
        w.shards = 8;
        runEnsemble(w);
        w.shards = 1;
        w.fast.enabled = true;
        runEnsemble(w);
    }

    // The knob grid: every (shards, workers) pair under each backend,
    // workers <= shards (extra workers would idle). The serial pair
    // (1, 1) per backend anchors the speedup and ratio numbers. The
    // fast arms cover both backends serially (backend invariance)
    // plus sharded pairs (shard/worker invariance).
    const std::vector<std::pair<unsigned, unsigned>> knobs{
        {1, 1}, {2, 1}, {2, 2}, {4, 1}, {4, 4}, {8, 1}, {8, 4}};
    std::vector<Arm> arms;
    for (auto kind : {sim::QueueKind::Heap, sim::QueueKind::Calendar})
        for (auto [s, w] : knobs) {
            Arm arm;
            arm.queue = kind;
            arm.shards = s;
            arm.workers = w;
            arms.push_back(std::move(arm));
        }
    const std::vector<std::tuple<sim::QueueKind, unsigned, unsigned>>
        fastKnobs{{sim::QueueKind::Heap, 1, 1},
                  {sim::QueueKind::Calendar, 1, 1},
                  {sim::QueueKind::Calendar, 4, 1},
                  {sim::QueueKind::Calendar, 8, 4}};
    for (auto [kind, s, w] : fastKnobs) {
        Arm arm;
        arm.queue = kind;
        arm.shards = s;
        arm.workers = w;
        arm.fast = true;
        arms.push_back(std::move(arm));
    }
    // Oversubscribed arms on a single-CPU host time-slice one core:
    // their walls measure scheduler noise, not the kernel. Skip them
    // rather than feed noise to the regression gate.
    for (auto &arm : arms)
        if (hw < 2 && arm.workers > 1)
            arm.skipped = true;

    std::string exactRef, fastRef;
    bool identical = true;
    for (unsigned rep = 0; rep < reps; ++rep) {
        for (auto &arm : arms) {
            if (arm.skipped)
                continue;
            cfg.queue = arm.queue;
            cfg.shards = arm.shards;
            cfg.workers = arm.workers;
            cfg.fast.enabled = arm.fast;
            auto r = perfsim::runEnsemble(cfg);
            arm.events = r.eventsDispatched;
            arm.requests = r.offered;
            arm.imbalance = r.meanWindowImbalance;
            arm.shardEvents = r.shardEvents;
            if (arm.bestWall == 0.0 || r.wallSeconds < arm.bestWall)
                arm.bestWall = r.wallSeconds;
            std::string id = identityJson(r);
            std::string &ref = arm.fast ? fastRef : exactRef;
            if (ref.empty())
                ref = id;
            else if (id != ref)
                identical = false;
        }
    }
    cfg.queue = sim::QueueKind::Calendar;
    cfg.shards = 1;
    cfg.workers = 1;
    cfg.fast.enabled = false;

    // Per-backend serial anchors (exact arms; event throughput).
    auto serialArm = [&](sim::QueueKind kind, bool fast) -> Arm & {
        for (auto &arm : arms)
            if (arm.queue == kind && arm.serial() &&
                arm.fast == fast)
                return arm;
        fatal("missing serial arm");
    };
    auto eps = [](const Arm &a) {
        return double(a.events) / a.bestWall;
    };
    auto rps = [](const Arm &a) {
        return double(a.requests) / a.bestWall;
    };
    double heapSerial = eps(serialArm(sim::QueueKind::Heap, false));
    double calSerial = eps(serialArm(sim::QueueKind::Calendar, false));
    // The fast-mode headline: simulated requests per second, best
    // fast arm over the exact calendar-queue serial baseline (the
    // same baseline the exact arms' own speedups anchor on).
    double bestFastRps = 0.0;
    for (const auto &arm : arms)
        if (arm.fast && !arm.skipped)
            bestFastRps = std::max(bestFastRps, rps(arm));
    double fastVsExact =
        bestFastRps / rps(serialArm(sim::QueueKind::Calendar, false));

    Table t({"Queue", "Mode", "Shards", "Workers", "Best wall (s)",
             "Events/s", "Req/s", "vs serial", "Imbalance"});
    for (const auto &arm : arms) {
        if (arm.skipped) {
            t.addRow({sim::queueKindName(arm.queue),
                      arm.fast ? "fast" : "exact",
                      std::to_string(arm.shards),
                      std::to_string(arm.workers), "skipped", "-",
                      "-", "-", "-"});
            continue;
        }
        const Arm &anchor = serialArm(arm.queue, arm.fast);
        t.addRow({sim::queueKindName(arm.queue),
                  arm.fast ? "fast" : "exact",
                  std::to_string(arm.shards),
                  std::to_string(arm.workers), fmtF(arm.bestWall, 3),
                  fmtF(eps(arm) / 1e6, 2) + "M",
                  fmtF(rps(arm) / 1e6, 2) + "M",
                  fmtF(anchor.bestWall / arm.bestWall, 2) + "x",
                  fmtF(arm.imbalance, 2)});
    }
    t.print(std::cout);

    std::cout << "\nCalendar vs heap, serial (exact): "
              << fmtF(calSerial / heapSerial, 2) << "x\n"
              << "Fast (best arm) vs exact calendar serial "
                 "(requests/s): "
              << fmtF(fastVsExact, 2) << "x\n"
              << "Determinism gate: "
              << (identical ? "bit-identical within "
                            : "MISMATCH within ")
              << "exact and fast arm groups x " << reps << " reps\n";
    if (hw < 2)
        std::cout << "Note: 1 hardware thread visible; workers>1 arms "
                     "skipped (oversubscription noise), multi-shard "
                     "gains are cache locality only.\n";

    // ---- fast-mode/2 statistical-equivalence gate ----------------
    //
    // The fast arms gave up bit-identity to the exact arms; this is
    // what they answer to instead (see the file comment for why the
    // statistics are seed-block permutation tests rather than pooled
    // KS p-values). Disjoint seed ranges per engine: the engines
    // consume the per-cell identity streams differently but from the
    // same generators, so same-seed runs are not independent draws.
    std::cout << "\n=== fast-mode/2 equivalence gate (" << gateSeeds
              << " seeds/side) ===\n";
    stats::EquivalenceSpec spec;
    stats::GateVerdict verdict;
    auto addPermCheck = [&](const std::string &name,
                            std::vector<std::vector<double>> exact,
                            std::vector<std::vector<double>> fast) {
        auto pk = stats::blockPermutationKs(std::move(exact),
                                            std::move(fast));
        stats::GateCheck c;
        c.name = name;
        c.kind = "perm-ks";
        c.statistic = pk.statistic;
        c.pValue = pk.pValue;
        c.passed = pk.passes(spec.permAlpha);
        verdict.passed = verdict.passed && c.passed;
        verdict.checks.push_back(std::move(c));
    };
    auto addCiCheck = [&](const std::string &name,
                          const std::vector<double> &exact,
                          const std::vector<double> &fast) {
        auto ov = stats::ciOverlap(exact, fast, spec.ciConfidence);
        stats::GateCheck c;
        c.name = name;
        c.kind = "ci-overlap";
        c.statistic = ov.relGap;
        c.pValue = 1.0;
        c.passed = ov.overlap;
        verdict.passed = verdict.passed && c.passed;
        verdict.checks.push_back(std::move(c));
    };
    // Per-run extraction: [0] per-cell day-mean utilization, [1]
    // per-cell completion-weighted day latency, [2] per-(cell, hour)
    // utilization, [3] per-(cell, hour) mean latency.
    auto extractBlocks = [](const perfsim::EnsembleResult &r,
                            unsigned cells, unsigned hours) {
        std::vector<std::vector<double>> b(4);
        for (unsigned c = 0; c < cells; ++c) {
            double uSum = 0.0, lwSum = 0.0;
            std::uint64_t done = 0;
            for (unsigned h = 0; h < hours; ++h) {
                std::size_t k = std::size_t(c) * hours + h;
                double u = r.cellHourUtilization[k];
                uSum += u;
                b[2].push_back(u);
                if (r.cellHourCompleted[k] > 0) {
                    lwSum += r.cellHourLatencyMean[k] *
                             double(r.cellHourCompleted[k]);
                    done += r.cellHourCompleted[k];
                    b[3].push_back(r.cellHourLatencyMean[k]);
                }
            }
            b[0].push_back(uSum / double(hours));
            if (done > 0)
                b[1].push_back(lwSum / double(done));
        }
        return b;
    };

    // Bench scale: the benchmarked config itself. Day-aggregate
    // permutation KS + per-seed scalar CI overlap.
    std::vector<std::vector<double>> dayUtilE, dayUtilF, dayLatE,
        dayLatF;
    std::vector<double> kwhE, kwhF, qosE, qosF;
    double fastPowerOffKWh = 0.0;
    std::uint64_t baseSeed = cfg.seed;
    for (int fast = 0; fast < 2; ++fast) {
        cfg.fast.enabled = fast;
        for (unsigned i = 0; i < gateSeeds; ++i) {
            cfg.seed = baseSeed + (fast ? gateSeeds : 0) + i;
            auto r = perfsim::runEnsemble(cfg);
            auto b = extractBlocks(r, cfg.cells, cfg.hours);
            (fast ? dayUtilF : dayUtilE).push_back(std::move(b[0]));
            (fast ? dayLatF : dayLatE).push_back(std::move(b[1]));
            (fast ? kwhF : kwhE).push_back(r.kWhPerDay);
            (fast ? qosF : qosE).push_back(r.qosAttainment);
            if (fast && i == 0)
                fastPowerOffKWh = r.kWhPerDay;
        }
    }
    cfg.seed = baseSeed;
    cfg.fast.enabled = false;
    addPermCheck("day_utilization", std::move(dayUtilE),
                 std::move(dayUtilF));
    addPermCheck("day_latency", std::move(dayLatE),
                 std::move(dayLatF));
    addCiCheck("kwh_per_day", kwhE, kwhF);
    addCiCheck("qos_attainment", qosE, qosF);

    // Dynamics scale: stretch the hour to 60 s so it spans many MMPP
    // dwell cycles; per-(cell, hour) samples then resolve queueing
    // dynamics instead of aliasing single burst episodes. Small fleet
    // keeps the 2 x gateSeeds extra runs cheap.
    {
        perfsim::EnsembleConfig dyn = cfg;
        dyn.servers = std::min<std::uint64_t>(cfg.servers, 2000);
        dyn.secondsPerHour = 60.0;
        dyn.networkLatencySeconds = 1.0;
        dyn.power.bootSeconds = 1.0;
        dyn.power.sleepWakeSeconds = 0.25;
        dyn.power.idleToSleepSeconds = 0.5;
        std::vector<std::vector<double>> utilE, utilF, latE, latF;
        for (int fast = 0; fast < 2; ++fast) {
            dyn.fast.enabled = fast;
            for (unsigned i = 0; i < gateSeeds; ++i) {
                dyn.seed = baseSeed + (fast ? gateSeeds : 0) + i;
                auto r = perfsim::runEnsemble(dyn);
                auto b = extractBlocks(r, dyn.cells, dyn.hours);
                (fast ? utilF : utilE).push_back(std::move(b[2]));
                (fast ? latF : latE).push_back(std::move(b[3]));
            }
        }
        addPermCheck("hourly_utilization", std::move(utilE),
                     std::move(utilF));
        addPermCheck("hourly_latency", std::move(latE),
                     std::move(latF));
    }
    // Ranking preservation: the paper's headline ordering must
    // survive the macro-event engine. One fast AlwaysOn run at the
    // base seed against the fast PowerOff run above.
    {
        cfg.fast.enabled = true;
        cfg.policy = perfsim::EnsemblePolicy::AlwaysOn;
        auto r = perfsim::runEnsemble(cfg);
        cfg.policy = perfsim::EnsemblePolicy::PowerOff;
        cfg.fast.enabled = false;
        stats::GateCheck c;
        c.name = "power_off_below_always_on_kwh";
        c.kind = "ordering";
        c.passed = fastPowerOffKWh < r.kWhPerDay;
        c.statistic = fastPowerOffKWh / r.kWhPerDay;
        verdict.checks.push_back(c);
        verdict.passed = verdict.passed && c.passed;
    }
    for (const auto &c : verdict.checks)
        std::cout << (c.passed ? "  pass  " : "  FAIL  ") << c.name
                  << " (" << c.kind << ", stat=" << fmtF(c.statistic, 4)
                  << (c.kind == "perm-ks"
                          ? ", p_perm=" + fmtF(c.pValue, 4)
                          : std::string())
                  << ")\n";
    std::cout << "Equivalence gate: "
              << (verdict.passed ? "PASS" : "FAIL") << "\n";

    std::ostringstream json;
    json.setf(std::ios::fixed);
    json.precision(6);
    json << "{\n"
         << "  \"bench\": \"ensemble\",\n"
         << "  \"schema_version\": 3,\n"
         << "  \"config\": {\n"
         << "    \"servers\": " << cfg.servers << ",\n"
         << "    \"cells\": " << cfg.cells << ",\n"
         << "    \"hours\": " << cfg.hours << ",\n"
         << "    \"seconds_per_hour\": " << cfg.secondsPerHour
         << ",\n"
         << "    \"policy\": \"" << to_string(cfg.policy) << "\",\n"
         << "    \"mmpp\": " << (cfg.mmpp.enabled ? "true" : "false")
         << ",\n"
         << "    \"lookahead_seconds\": " << cfg.networkLatencySeconds
         << ",\n"
         << "    \"seed\": " << cfg.seed << ",\n"
         << "    \"reps\": " << reps << ",\n"
         << "    \"gate_seeds\": " << gateSeeds << ",\n"
         << "    \"fast_contract\": \""
         << sim::EnsembleFastConfig::contractVersion() << "\",\n"
         << "    \"hardware_threads\": " << hw << "\n"
         << "  },\n"
         << "  \"events_dispatched\": " << arms[0].events << ",\n"
         << "  \"arms\": [\n";
    for (std::size_t i = 0; i < arms.size(); ++i) {
        const Arm &arm = arms[i];
        json << "    {\"queue\": \"" << sim::queueKindName(arm.queue)
             << "\", \"shards\": " << arm.shards
             << ", \"workers\": " << arm.workers
             << ", \"fast\": " << (arm.fast ? "true" : "false");
        if (arm.skipped) {
            json << ", \"skipped_oversubscribed\": true}";
        } else {
            const Arm &anchor = serialArm(arm.queue, arm.fast);
            json << ", \"skipped_oversubscribed\": false"
                 << ", \"best_wall_seconds\": " << arm.bestWall
                 << ", \"events_per_sec\": " << eps(arm)
                 << ", \"requests_per_sec\": " << rps(arm)
                 << ", \"speedup_vs_serial\": "
                 << anchor.bestWall / arm.bestWall
                 << ", \"window_imbalance\": " << arm.imbalance
                 << ", \"shard_events\": [";
            for (std::size_t s = 0; s < arm.shardEvents.size(); ++s)
                json << (s ? ", " : "") << arm.shardEvents[s];
            json << "]}";
        }
        json << (i + 1 < arms.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"serial_events_per_sec\": {\"heap\": " << heapSerial
         << ", \"calendar\": " << calSerial << "},\n"
         << "  \"calendar_vs_heap_serial_ratio\": "
         << calSerial / heapSerial << ",\n"
         << "  \"fast_vs_exact_ratio\": " << fastVsExact << ",\n"
         << "  \"equivalence_gate\": {\n"
         << "    \"passed\": "
         << (verdict.passed ? "true" : "false") << ",\n"
         << "    \"seeds\": " << gateSeeds << ",\n"
         << "    \"checks\": [\n";
    for (std::size_t i = 0; i < verdict.checks.size(); ++i) {
        const auto &c = verdict.checks[i];
        json << "      {\"name\": \"" << c.name << "\", \"kind\": \""
             << c.kind << "\", \"passed\": "
             << (c.passed ? "true" : "false")
             << ", \"statistic\": " << c.statistic
             << ", \"p_value\": " << c.pValue << "}"
             << (i + 1 < verdict.checks.size() ? "," : "") << "\n";
    }
    json << "    ]\n"
         << "  },\n"
         << "  \"single_thread_host\": "
         << (hw < 2 ? "true" : "false") << ",\n"
         << "  \"bit_identical\": "
         << (identical ? "true" : "false") << "\n"
         << "}\n";

    std::ofstream out(args.get("out"));
    out << json.str();
    std::cout << "\nWrote " << args.get("out") << "\n";

    return (identical && verdict.passed) ? 0 : 1;
}

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
