/**
 * @file
 * Ensemble-DES hot-path scaling: events/sec by event-queue backend,
 * shard count, and worker count.
 *
 * Runs the identical warehouse-scale ensemble simulation
 * (nonstationary diurnal arrivals + MMPP flash-crowd process,
 * per-server sleep-state machines, PowerOff autoscaling) across a
 * grid of execution knobs — heap vs calendar event ordering, 1-8
 * shards, 1-4 workers — verifies every run produces byte-identical
 * ensemble report JSON (the kernel's determinism contract), and
 * reports kernel throughput per arm.
 *
 * What the arms mean:
 *  - queue: the heap is the O(log n) oracle; the calendar queue
 *    (sim/calendar_queue.hh) is the amortized-O(1) fast path. Their
 *    serial ratio is the headline number the CI perf gate tracks.
 *  - shards on a single hardware thread measure cache locality (each
 *    shard's working set stays L2-resident); with real cores the
 *    worker arms add parallel execution on top. The recorded
 *    `hardware_threads` and `single_thread_host` fields say which
 *    regime a result came from — on a 1-CPU host the worker arms
 *    time-slice one core and their "speedup" is locality only.
 *  - window_imbalance (busiest shard's share x shards, averaged over
 *    windows; 1.0 = balanced) bounds what parallel workers could ever
 *    deliver: speedup <= shards / imbalance regardless of core count.
 *
 * Methodology: wall times on shared hosts are noisy, so repetitions
 * are interleaved across arms (a slow host phase penalizes every arm
 * equally) and the best time per arm is kept — the least-contended
 * sample is the closest estimate of the true cost.
 *
 * Emits machine-readable BENCH_ensemble.json (schema v2, documented
 * in README.md) so later PRs can track the trajectory; CI recomputes
 * it fresh and gates on bit_identical plus the calendar/heap serial
 * throughput ratio against the committed baseline.
 */

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/diurnal.hh"
#include "core/ensemble.hh"
#include "obs/run_report.hh"
#include "perfsim/ensemble_sim.hh"
#include "util/args.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace wsc;

namespace {

/** The identity serialization the determinism gate compares: the
 * ensemble.* report section without wall-clock fields. */
std::string
identityJson(const perfsim::EnsembleResult &r)
{
    core::EnsemblePolicyOutcome o;
    o.measured = r;
    obs::ReportOptions opts;
    opts.includeTimings = false;
    return obs::toJson(core::ensembleReport(o), opts);
}

struct Arm {
    sim::QueueKind queue = sim::QueueKind::Heap;
    unsigned shards = 1;
    unsigned workers = 1;
    double bestWall = 0.0; //!< min over reps
    std::uint64_t events = 0;
    double imbalance = 1.0;
    std::vector<std::uint64_t> shardEvents;

    bool serial() const { return shards == 1 && workers == 1; }
};

} // namespace

int
run(int argc, char **argv)
{
    ArgParser args("bench_ensemble",
                   "ensemble DES throughput by event-queue backend, "
                   "shard count, and worker count, with the "
                   "bit-identity gate");
    args.addOption("servers", "fleet size", "100000")
        .addOption("cells", "dispatch cells (fixed logical lanes)",
                   "16")
        .addOption("hours", "simulated hours", "24")
        .addOption("seconds-per-hour",
                   "compressed seconds per simulated hour", "1.0")
        .addOption("reps",
                   "timed repetitions per arm (best kept)", "3")
        .addOption("out", "JSON output path", "BENCH_ensemble.json");
    if (!args.parse(argc, argv))
        return 0;

    double serversArg = args.getDouble("servers");
    if (serversArg < 1 || serversArg > 4e6)
        fatal("--servers must be in [1, 4e6]");
    double repsArg = args.getDouble("reps");
    if (repsArg < 1 || repsArg > 100)
        fatal("--reps must be in [1, 100]");
    unsigned reps = unsigned(repsArg);
    double sph = args.getDouble("seconds-per-hour");
    if (sph <= 0.0)
        fatal("--seconds-per-hour must be positive");
    unsigned hw = std::max(std::thread::hardware_concurrency(), 1u);

    perfsim::EnsembleConfig cfg;
    cfg.servers = std::uint64_t(serversArg);
    cfg.cells = unsigned(args.getDouble("cells"));
    cfg.hours = unsigned(args.getDouble("hours"));
    cfg.secondsPerHour = sph;
    // Sustained full load rather than a diurnal valley: the bench
    // stresses kernel throughput at the fleet's design-point depth
    // all day (trough hours would just idle the event queue; the
    // diurnal dynamics themselves are covered by test_ensemble and
    // wsc_eval --ensemble).
    cfg.profile = perfsim::flatHourlyProfile();
    cfg.policy = perfsim::EnsemblePolicy::PowerOff;
    cfg.mmpp.enabled = true;
    // The widest legal conservative lookahead: one simulated hour
    // (the control plane reprograms rates at hour boundaries, so
    // windows cannot span them).
    cfg.networkLatencySeconds = sph;
    // Compressed-timescale transitions (a real 30 s boot would span
    // whole compressed hours).
    cfg.power.bootSeconds = sph;
    cfg.power.sleepWakeSeconds = 0.25 * sph;
    cfg.power.idleToSleepSeconds = 0.5 * sph;

    std::cout << "=== Ensemble hot-path scaling: " << cfg.servers
              << " servers x " << cfg.hours << "h, " << cfg.cells
              << " cells, policy " << to_string(cfg.policy)
              << ", " << hw << " hardware thread(s) ===\n\n";

    // Untimed warmup at a reduced fleet: pays one-time lazy costs
    // (allocator growth, page faults on the binary) without charging
    // any timed arm for them.
    {
        perfsim::EnsembleConfig w = cfg;
        w.servers = std::max<std::uint64_t>(cfg.servers / 10, 1000);
        w.shards = 8;
        runEnsemble(w);
    }

    // The knob grid: every (shards, workers) pair under each backend,
    // workers <= shards (extra workers would idle). The serial pair
    // (1, 1) per backend anchors the speedup and ratio numbers.
    const std::vector<std::pair<unsigned, unsigned>> knobs{
        {1, 1}, {2, 1}, {2, 2}, {4, 1}, {4, 4}, {8, 1}, {8, 4}};
    std::vector<Arm> arms;
    for (auto kind : {sim::QueueKind::Heap, sim::QueueKind::Calendar})
        for (auto [s, w] : knobs) {
            Arm arm;
            arm.queue = kind;
            arm.shards = s;
            arm.workers = w;
            arms.push_back(std::move(arm));
        }

    std::string ref;
    bool identical = true;
    for (unsigned rep = 0; rep < reps; ++rep) {
        for (auto &arm : arms) {
            cfg.queue = arm.queue;
            cfg.shards = arm.shards;
            cfg.workers = arm.workers;
            auto r = perfsim::runEnsemble(cfg);
            arm.events = r.eventsDispatched;
            arm.imbalance = r.meanWindowImbalance;
            arm.shardEvents = r.shardEvents;
            if (arm.bestWall == 0.0 || r.wallSeconds < arm.bestWall)
                arm.bestWall = r.wallSeconds;
            std::string id = identityJson(r);
            if (ref.empty())
                ref = id;
            else if (id != ref)
                identical = false;
        }
    }

    // Per-backend serial anchors.
    auto serialEps = [&](sim::QueueKind kind) {
        for (const auto &arm : arms)
            if (arm.queue == kind && arm.serial())
                return double(arm.events) / arm.bestWall;
        fatal("missing serial arm");
    };
    double heapSerial = serialEps(sim::QueueKind::Heap);
    double calSerial = serialEps(sim::QueueKind::Calendar);

    Table t({"Queue", "Shards", "Workers", "Best wall (s)", "Events/s",
             "vs serial", "Imbalance"});
    for (const auto &arm : arms) {
        double eps = double(arm.events) / arm.bestWall;
        double anchor = arm.queue == sim::QueueKind::Heap ? heapSerial
                                                          : calSerial;
        t.addRow({sim::queueKindName(arm.queue),
                  std::to_string(arm.shards),
                  std::to_string(arm.workers),
                  fmtF(arm.bestWall, 3), fmtF(eps / 1e6, 2) + "M",
                  fmtF(eps / anchor, 2) + "x",
                  fmtF(arm.imbalance, 2)});
    }
    t.print(std::cout);

    std::cout << "\nCalendar vs heap, serial: "
              << fmtF(calSerial / heapSerial, 2) << "x\n"
              << "Determinism gate: "
              << (identical ? "bit-identical across all "
                            : "MISMATCH across ")
              << arms.size() << " arms x " << reps << " reps\n";
    if (hw < 2)
        std::cout << "Note: 1 hardware thread visible; worker arms "
                     "time-slice one core, so multi-shard/worker "
                     "gains are cache locality only.\n";

    std::ostringstream json;
    json.setf(std::ios::fixed);
    json.precision(6);
    json << "{\n"
         << "  \"bench\": \"ensemble\",\n"
         << "  \"schema_version\": 2,\n"
         << "  \"config\": {\n"
         << "    \"servers\": " << cfg.servers << ",\n"
         << "    \"cells\": " << cfg.cells << ",\n"
         << "    \"hours\": " << cfg.hours << ",\n"
         << "    \"seconds_per_hour\": " << cfg.secondsPerHour
         << ",\n"
         << "    \"policy\": \"" << to_string(cfg.policy) << "\",\n"
         << "    \"mmpp\": " << (cfg.mmpp.enabled ? "true" : "false")
         << ",\n"
         << "    \"lookahead_seconds\": " << cfg.networkLatencySeconds
         << ",\n"
         << "    \"seed\": " << cfg.seed << ",\n"
         << "    \"reps\": " << reps << ",\n"
         << "    \"hardware_threads\": " << hw << "\n"
         << "  },\n"
         << "  \"events_dispatched\": " << arms[0].events << ",\n"
         << "  \"arms\": [\n";
    for (std::size_t i = 0; i < arms.size(); ++i) {
        const Arm &arm = arms[i];
        double eps = double(arm.events) / arm.bestWall;
        double anchor = arm.queue == sim::QueueKind::Heap ? heapSerial
                                                          : calSerial;
        json << "    {\"queue\": \"" << sim::queueKindName(arm.queue)
             << "\", \"shards\": " << arm.shards
             << ", \"workers\": " << arm.workers
             << ", \"best_wall_seconds\": " << arm.bestWall
             << ", \"events_per_sec\": " << eps
             << ", \"speedup_vs_serial\": " << eps / anchor
             << ", \"window_imbalance\": " << arm.imbalance
             << ", \"shard_events\": [";
        for (std::size_t s = 0; s < arm.shardEvents.size(); ++s)
            json << (s ? ", " : "") << arm.shardEvents[s];
        json << "]}" << (i + 1 < arms.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"serial_events_per_sec\": {\"heap\": " << heapSerial
         << ", \"calendar\": " << calSerial << "},\n"
         << "  \"calendar_vs_heap_serial_ratio\": "
         << calSerial / heapSerial << ",\n"
         << "  \"single_thread_host\": "
         << (hw < 2 ? "true" : "false") << ",\n"
         << "  \"bit_identical\": "
         << (identical ? "true" : "false") << "\n"
         << "}\n";

    std::ofstream out(args.get("out"));
    out << json.str();
    std::cout << "\nWrote " << args.get("out") << "\n";

    return identical ? 0 : 1;
}

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
