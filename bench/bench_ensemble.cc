/**
 * @file
 * Ensemble-DES shard scaling: events/sec vs shard count.
 *
 * Runs the identical warehouse-scale ensemble simulation (nonstationary
 * diurnal arrivals + MMPP flash-crowd process, per-server sleep-state
 * machines, PowerOff autoscaling) at 1/2/4/8 shards, verifies every run
 * produces byte-identical ensemble report JSON (the sharded queue's
 * determinism contract), and reports kernel throughput per shard count.
 *
 * On a single hardware thread the speedup is pure cache locality: each
 * shard's heap and slot pool stay L2-resident where the monolithic
 * queue's sift paths miss to L3. With more cores, shards also run on
 * worker threads and the two effects compound; the recorded
 * `workers` field says which regime a result came from.
 *
 * Methodology: wall times on shared hosts are noisy, so repetitions
 * are interleaved across shard counts (a slow host phase penalizes
 * every arm equally) and the best time per arm is kept — the
 * least-contended sample is the closest estimate of the true cost.
 *
 * Emits machine-readable BENCH_ensemble.json (schema documented in
 * README.md) so later PRs can track the scaling trajectory.
 */

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/diurnal.hh"
#include "core/ensemble.hh"
#include "obs/run_report.hh"
#include "perfsim/ensemble_sim.hh"
#include "util/args.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace wsc;

namespace {

/** The identity serialization the determinism gate compares: the
 * ensemble.* report section without wall-clock fields. */
std::string
identityJson(const perfsim::EnsembleResult &r)
{
    core::EnsemblePolicyOutcome o;
    o.measured = r;
    obs::ReportOptions opts;
    opts.includeTimings = false;
    return obs::toJson(core::ensembleReport(o), opts);
}

struct Arm {
    unsigned shards = 1;
    double bestWall = 0.0; //!< min over reps
    std::uint64_t events = 0;
};

} // namespace

int
run(int argc, char **argv)
{
    ArgParser args("bench_ensemble",
                   "ensemble DES throughput vs event-queue shard "
                   "count, with the bit-identity gate");
    args.addOption("servers", "fleet size", "100000")
        .addOption("cells", "dispatch cells (fixed logical lanes)",
                   "16")
        .addOption("hours", "simulated hours", "24")
        .addOption("seconds-per-hour",
                   "compressed seconds per simulated hour", "1.0")
        .addOption("reps",
                   "timed repetitions per shard count (best kept)",
                   "3")
        .addOption("workers",
                   "worker threads for multi-shard runs (0 = "
                   "min(shards, hardware))",
                   "1")
        .addOption("out", "JSON output path", "BENCH_ensemble.json");
    if (!args.parse(argc, argv))
        return 0;

    double serversArg = args.getDouble("servers");
    if (serversArg < 1 || serversArg > 4e6)
        fatal("--servers must be in [1, 4e6]");
    double repsArg = args.getDouble("reps");
    if (repsArg < 1 || repsArg > 100)
        fatal("--reps must be in [1, 100]");
    unsigned reps = unsigned(repsArg);
    double sph = args.getDouble("seconds-per-hour");
    if (sph <= 0.0)
        fatal("--seconds-per-hour must be positive");
    unsigned hw = std::max(std::thread::hardware_concurrency(), 1u);

    perfsim::EnsembleConfig cfg;
    cfg.servers = std::uint64_t(serversArg);
    cfg.cells = unsigned(args.getDouble("cells"));
    cfg.hours = unsigned(args.getDouble("hours"));
    cfg.secondsPerHour = sph;
    // Sustained full load rather than a diurnal valley: the bench
    // stresses kernel throughput at the fleet's design-point depth
    // all day (trough hours would just idle the event queue; the
    // diurnal dynamics themselves are covered by test_ensemble and
    // wsc_eval --ensemble).
    cfg.profile = perfsim::flatHourlyProfile();
    cfg.policy = perfsim::EnsemblePolicy::PowerOff;
    cfg.mmpp.enabled = true;
    // The widest legal conservative lookahead: one simulated hour
    // (the control plane reprograms rates at hour boundaries, so
    // windows cannot span them).
    cfg.networkLatencySeconds = sph;
    // Compressed-timescale transitions (a real 30 s boot would span
    // whole compressed hours).
    cfg.power.bootSeconds = sph;
    cfg.power.sleepWakeSeconds = 0.25 * sph;
    cfg.power.idleToSleepSeconds = 0.5 * sph;

    const std::vector<unsigned> shardCounts{1, 2, 4, 8};
    double workersArg = args.getDouble("workers");
    if (workersArg < 0 || workersArg > 4096)
        fatal("--workers must be in [0, 4096]");
    unsigned workers = unsigned(workersArg);

    std::cout << "=== Ensemble shard scaling: " << cfg.servers
              << " servers x " << cfg.hours << "h, " << cfg.cells
              << " cells, policy " << to_string(cfg.policy)
              << " ===\n\n";

    // Untimed warmup at a reduced fleet: pays one-time lazy costs
    // (allocator growth, page faults on the binary) without charging
    // any timed arm for them.
    {
        perfsim::EnsembleConfig w = cfg;
        w.servers = std::max<std::uint64_t>(cfg.servers / 10, 1000);
        w.shards = shardCounts.back();
        runEnsemble(w);
    }

    std::vector<Arm> arms;
    for (unsigned s : shardCounts)
        arms.push_back({s, 0.0, 0});
    std::string ref;
    bool identical = true;

    for (unsigned rep = 0; rep < reps; ++rep) {
        for (auto &arm : arms) {
            cfg.shards = arm.shards;
            cfg.workers = arm.shards == 1 ? 1 : workers;
            auto r = perfsim::runEnsemble(cfg);
            arm.events = r.eventsDispatched;
            if (arm.bestWall == 0.0 || r.wallSeconds < arm.bestWall)
                arm.bestWall = r.wallSeconds;
            std::string id = identityJson(r);
            if (ref.empty())
                ref = id;
            else if (id != ref)
                identical = false;
        }
    }

    double serialEps =
        double(arms[0].events) / arms[0].bestWall;
    Table t({"Shards", "Best wall (s)", "Events/s", "Speedup"});
    for (const auto &arm : arms) {
        double eps = double(arm.events) / arm.bestWall;
        t.addRow({std::to_string(arm.shards),
                  fmtF(arm.bestWall, 3),
                  fmtF(eps / 1e6, 2) + "M",
                  fmtF(eps / serialEps, 2) + "x"});
    }
    t.print(std::cout);

    double speedup8 =
        (double(arms.back().events) / arms.back().bestWall) /
        serialEps;
    std::cout << "\nDeterminism gate: "
              << (identical ? "bit-identical across all runs"
                            : "MISMATCH")
              << "\n";
    if (hw < 2)
        std::cout << "Note: 1 hardware thread visible; multi-shard "
                     "speedup is cache locality only.\n";

    std::ostringstream json;
    json.setf(std::ios::fixed);
    json.precision(6);
    json << "{\n"
         << "  \"bench\": \"ensemble\",\n"
         << "  \"schema_version\": 1,\n"
         << "  \"config\": {\n"
         << "    \"servers\": " << cfg.servers << ",\n"
         << "    \"cells\": " << cfg.cells << ",\n"
         << "    \"hours\": " << cfg.hours << ",\n"
         << "    \"seconds_per_hour\": " << cfg.secondsPerHour
         << ",\n"
         << "    \"policy\": \"" << to_string(cfg.policy) << "\",\n"
         << "    \"mmpp\": " << (cfg.mmpp.enabled ? "true" : "false")
         << ",\n"
         << "    \"lookahead_seconds\": " << cfg.networkLatencySeconds
         << ",\n"
         << "    \"seed\": " << cfg.seed << ",\n"
         << "    \"reps\": " << reps << ",\n"
         << "    \"workers\": " << workers << ",\n"
         << "    \"hardware_threads\": " << hw << "\n"
         << "  },\n"
         << "  \"events_dispatched\": " << arms[0].events << ",\n"
         << "  \"arms\": [\n";
    for (std::size_t i = 0; i < arms.size(); ++i) {
        double eps = double(arms[i].events) / arms[i].bestWall;
        json << "    {\"shards\": " << arms[i].shards
             << ", \"best_wall_seconds\": " << arms[i].bestWall
             << ", \"events_per_sec\": " << eps
             << ", \"speedup_vs_serial\": " << eps / serialEps << "}"
             << (i + 1 < arms.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"speedup_8_shards\": " << speedup8 << ",\n"
         << "  \"bit_identical\": "
         << (identical ? "true" : "false") << "\n"
         << "}\n";

    std::ofstream out(args.get("out"));
    out << json.str();
    std::cout << "\nWrote " << args.get("out") << "\n";

    return identical ? 0 : 1;
}

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
