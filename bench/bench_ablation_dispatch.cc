/**
 * @file
 * Ablation: validating the aggregation assumption (paper Section 4).
 *
 * "Our performance model makes the simplifying assumption that
 * cluster-level performance can be approximated by the aggregation of
 * single-machine benchmarks. This needs to be validated." This bench
 * measures the sustainable rate of multi-server clusters behind three
 * dispatch policies against N times the single-server rate.
 */

#include <iostream>

#include "perfsim/cluster_sim.hh"
#include "perfsim/perf_eval.hh"
#include "platform/catalog.hh"
#include "util/table.hh"
#include "workloads/websearch.hh"
#include "workloads/ytube.hh"

using namespace wsc;
using namespace wsc::perfsim;

namespace {

void
scalingTable(workloads::Benchmark benchmark, const StationConfig &st)
{
    SearchParams sp;
    sp.iterations = 6;
    sp.window.warmupSeconds = 3.0;
    sp.window.measureSeconds = 15.0;
    // All nine (servers, policy) points are independent simulations;
    // the sweep fans them out over the global thread pool.
    auto points = sweepClusterScaling(
        benchmark, st, {2u, 4u, 8u},
        {DispatchPolicy::RoundRobin, DispatchPolicy::Random,
         DispatchPolicy::LeastOutstanding},
        sp, 1000);
    Table t({"Servers", "round-robin", "random", "least-outstanding"});
    for (std::size_t i = 0; i < points.size(); i += 3) {
        t.addRow({std::to_string(points[i].servers),
                  fmtPct(points[i].result.scalingEfficiency),
                  fmtPct(points[i + 1].result.scalingEfficiency),
                  fmtPct(points[i + 2].result.scalingEfficiency)});
    }
    t.print(std::cout);
}

} // namespace

int
main()
{
    std::cout << "=== Ablation: cluster scaling efficiency vs the "
                 "aggregation assumption ===\n\n";
    PerfEvaluator ev;
    auto emb1 = platform::makeSystem(platform::SystemClass::Emb1);

    std::cout << "ytube on emb1 (IO-bound):\n";
    workloads::Ytube yt;
    auto st_yt = ev.stationsFor(emb1, yt.traits(), {});
    scalingTable(workloads::Benchmark::Ytube, st_yt);

    std::cout << "\nwebsearch on emb1 (CPU-bound):\n";
    workloads::Websearch ws;
    auto st_ws = ev.stationsFor(emb1, ws.traits(), {});
    scalingTable(workloads::Benchmark::Websearch, st_ws);

    std::cout << "\nReading: sensible dispatch sustains >90% of the "
                 "ideal N-fold aggregate, supporting the paper's "
                 "aggregation assumption; random dispatch leaves a "
                 "few percent on the table at small N.\n";
    return 0;
}
