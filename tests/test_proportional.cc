/**
 * @file
 * Unit tests for the utilization-dependent power curve.
 */

#include <gtest/gtest.h>

#include "power/proportional.hh"
#include "util/logging.hh"

namespace {

using namespace wsc;
using namespace wsc::power;

TEST(PowerCurve, Endpoints)
{
    PowerCurve c;
    EXPECT_DOUBLE_EQ(powerFractionAt(0.0, c), 0.6);
    EXPECT_DOUBLE_EQ(powerFractionAt(1.0, c), 1.0);
    PowerCurve linear;
    linear.useCalibrated = false;
    EXPECT_DOUBLE_EQ(powerFractionAt(0.5, linear), 0.8);
}

TEST(PowerCurve, CalibratedAboveLinearMidRange)
{
    // Fan et al.'s empirical curve rises faster than linear at low
    // and mid utilization (servers reach near-peak power early).
    PowerCurve cal;
    PowerCurve lin;
    lin.useCalibrated = false;
    for (double u : {0.2, 0.4, 0.6, 0.8}) {
        EXPECT_GT(powerFractionAt(u, cal), powerFractionAt(u, lin))
            << "u = " << u;
    }
}

TEST(PowerCurve, MonotoneInUtilization)
{
    PowerCurve c;
    double prev = powerFractionAt(0.0, c);
    for (int i = 1; i <= 20; ++i) {
        double cur = powerFractionAt(double(i) / 20.0, c);
        EXPECT_GE(cur, prev - 1e-12);
        prev = cur;
    }
}

TEST(PowerCurve, PaperActivityFactorImpliedUtilization)
{
    // What operating point does the paper's flat 0.75 correspond to?
    // On the calibrated 2008 curve: modest utilization (~20%), which
    // matches published datacenter utilization figures.
    PowerCurve c;
    double u = utilizationForActivityFactor(0.75, c);
    EXPECT_GT(u, 0.1);
    EXPECT_LT(u, 0.4);
    EXPECT_NEAR(powerFractionAt(u, c), 0.75, 1e-9);
}

TEST(PowerCurve, RoundTripThroughEquivalentFactor)
{
    PowerCurve c;
    for (double u : {0.1, 0.35, 0.7}) {
        double f = equivalentActivityFactor(u, c);
        EXPECT_NEAR(utilizationForActivityFactor(f, c), u, 1e-6);
    }
}

TEST(PowerCurve, ProportionalityIndex)
{
    PowerCurve leaky;
    leaky.idleFraction = 0.6;
    EXPECT_NEAR(proportionalityIndex(leaky), 0.4, 1e-12);
    PowerCurve ideal;
    ideal.idleFraction = 0.0;
    EXPECT_DOUBLE_EQ(proportionalityIndex(ideal), 1.0);
}

TEST(PowerCurve, InvalidArgsPanic)
{
    PowerCurve c;
    EXPECT_THROW(powerFractionAt(-0.1, c), PanicError);
    EXPECT_THROW(powerFractionAt(1.1, c), PanicError);
    EXPECT_THROW(utilizationForActivityFactor(0.2, c), PanicError);
    PowerCurve bad;
    bad.calibrationExponent = 1.0;
    EXPECT_THROW(powerFractionAt(0.5, bad), PanicError);
}

/** Idle-fraction sweep: better proportionality lowers mid-range power. */
class IdleFractionSweep : public ::testing::TestWithParam<double>
{};

TEST_P(IdleFractionSweep, LowerIdleMeansLowerMidPower)
{
    PowerCurve a;
    a.idleFraction = GetParam();
    PowerCurve b;
    b.idleFraction = GetParam() - 0.1;
    EXPECT_GT(powerFractionAt(0.3, a), powerFractionAt(0.3, b));
}

INSTANTIATE_TEST_SUITE_P(Idles, IdleFractionSweep,
                         ::testing::Values(0.3, 0.5, 0.7, 0.9));

} // namespace
