/**
 * @file
 * Unit tests for the platform catalog against Table 2 / Figure 1(a).
 */

#include <gtest/gtest.h>

#include "cost/tco.hh"
#include "platform/catalog.hh"

namespace {

using namespace wsc;
using namespace wsc::platform;

TEST(Catalog, HasAllSixSystems)
{
    auto all = allSystems();
    ASSERT_EQ(all.size(), 6u);
    EXPECT_EQ(all[0].name, "srvr1");
    EXPECT_EQ(all[5].name, "emb2");
    for (const auto &s : all)
        EXPECT_EQ(s.name, to_string(s.cls));
}

TEST(Catalog, Table2WattTotals)
{
    EXPECT_DOUBLE_EQ(makeSystem(SystemClass::Srvr1).totalWatts(), 340.0);
    EXPECT_DOUBLE_EQ(makeSystem(SystemClass::Srvr2).totalWatts(), 215.0);
    EXPECT_DOUBLE_EQ(makeSystem(SystemClass::Desk).totalWatts(), 135.0);
    EXPECT_DOUBLE_EQ(makeSystem(SystemClass::Mobl).totalWatts(), 78.0);
    EXPECT_DOUBLE_EQ(makeSystem(SystemClass::Emb1).totalWatts(), 52.0);
    EXPECT_DOUBLE_EQ(makeSystem(SystemClass::Emb2).totalWatts(), 35.0);
}

TEST(Catalog, Table2InfrastructureDollars)
{
    // Table 2 Inf-$ column includes the amortized rack share ($68.75).
    cost::TcoModel model(cost::RackCostParams{}, power::RackPowerParams{},
                         cost::BurdenedPowerParams{});
    auto inf = [&](SystemClass c) {
        auto s = makeSystem(c);
        return model.evaluate(s.hardwareCost(), s.hardwarePower())
            .infrastructure();
    };
    EXPECT_NEAR(inf(SystemClass::Srvr1), 3294.0, 1.0);
    EXPECT_NEAR(inf(SystemClass::Srvr2), 1689.0, 1.0);
    EXPECT_NEAR(inf(SystemClass::Desk), 849.0, 1.0);
    EXPECT_NEAR(inf(SystemClass::Mobl), 989.0, 1.0);
    EXPECT_NEAR(inf(SystemClass::Emb1), 499.0, 1.0);
    EXPECT_NEAR(inf(SystemClass::Emb2), 379.0, 1.0);
}

TEST(Catalog, Srvr1FigureOneLineItems)
{
    auto s = makeSystem(SystemClass::Srvr1);
    EXPECT_DOUBLE_EQ(s.cpu.dollars, 1700.0);
    EXPECT_DOUBLE_EQ(s.memory.dollars, 350.0);
    EXPECT_DOUBLE_EQ(s.disk.dollars, 275.0);
    EXPECT_DOUBLE_EQ(s.boardMgmtDollars, 400.0);
    EXPECT_DOUBLE_EQ(s.powerFansDollars, 500.0);
    EXPECT_DOUBLE_EQ(s.cpu.watts, 210.0);
    EXPECT_DOUBLE_EQ(s.serverDollars(), 3225.0);
}

TEST(Catalog, Srvr2FigureOneLineItems)
{
    auto s = makeSystem(SystemClass::Srvr2);
    EXPECT_DOUBLE_EQ(s.cpu.dollars, 650.0);
    EXPECT_DOUBLE_EQ(s.serverDollars(), 1620.0);
    EXPECT_DOUBLE_EQ(s.cpu.watts, 105.0);
}

TEST(Catalog, Table2Microarchitecture)
{
    auto s1 = makeSystem(SystemClass::Srvr1);
    EXPECT_EQ(s1.cpu.totalCores(), 8u);
    EXPECT_DOUBLE_EQ(s1.cpu.freqGHz, 2.6);
    EXPECT_TRUE(s1.cpu.outOfOrder);
    EXPECT_EQ(s1.cpu.l2KB, 8192u);

    auto e2 = makeSystem(SystemClass::Emb2);
    EXPECT_EQ(e2.cpu.totalCores(), 1u);
    EXPECT_DOUBLE_EQ(e2.cpu.freqGHz, 0.6);
    EXPECT_FALSE(e2.cpu.outOfOrder);
    EXPECT_EQ(e2.cpu.l2KB, 128u);
}

TEST(Catalog, MemoryTechPerPlatform)
{
    EXPECT_EQ(makeSystem(SystemClass::Srvr1).memory.tech, MemTech::FBDIMM);
    EXPECT_EQ(makeSystem(SystemClass::Srvr2).memory.tech, MemTech::FBDIMM);
    EXPECT_EQ(makeSystem(SystemClass::Desk).memory.tech, MemTech::DDR2);
    EXPECT_EQ(makeSystem(SystemClass::Mobl).memory.tech, MemTech::DDR2);
    EXPECT_EQ(makeSystem(SystemClass::Emb1).memory.tech, MemTech::DDR2);
    EXPECT_EQ(makeSystem(SystemClass::Emb2).memory.tech, MemTech::DDR1);
    // All systems carry 4 GB (Section 3.2: memory capacity held equal).
    for (const auto &s : allSystems())
        EXPECT_DOUBLE_EQ(s.memory.capacityGB, 4.0);
}

TEST(Catalog, DiskAndNicClasses)
{
    // srvr1: 15k RPM disk + 10 GbE; everything else 7.2k + 1 GbE.
    auto s1 = makeSystem(SystemClass::Srvr1);
    EXPECT_EQ(s1.disk.cls, DiskClass::Server15k);
    EXPECT_DOUBLE_EQ(s1.nic.gbps, 10.0);
    for (auto cls : {SystemClass::Srvr2, SystemClass::Desk,
                     SystemClass::Mobl, SystemClass::Emb1,
                     SystemClass::Emb2}) {
        auto s = makeSystem(cls);
        EXPECT_EQ(s.disk.cls, DiskClass::Desktop72k) << s.name;
        EXPECT_DOUBLE_EQ(s.nic.gbps, 1.0) << s.name;
    }
}

TEST(Catalog, PaperCostRatios)
{
    // Section 3.2: desk is ~25% of srvr1's (infrastructure) cost; emb1
    // is ~15%; desktop has ~60% lower P&C; emb1 saves ~85% of P&C.
    cost::TcoModel model(cost::RackCostParams{}, power::RackPowerParams{},
                         cost::BurdenedPowerParams{});
    auto eval = [&](SystemClass c) {
        auto s = makeSystem(c);
        return model.evaluate(s.hardwareCost(), s.hardwarePower());
    };
    auto s1 = eval(SystemClass::Srvr1);
    auto dk = eval(SystemClass::Desk);
    auto e1 = eval(SystemClass::Emb1);
    EXPECT_NEAR(dk.infrastructure() / s1.infrastructure(), 0.25, 0.02);
    EXPECT_NEAR(e1.infrastructure() / s1.infrastructure(), 0.15, 0.01);
    EXPECT_NEAR(dk.powerCooling() / s1.powerCooling(), 0.40, 0.02);
    EXPECT_NEAR(e1.powerCooling() / s1.powerCooling(), 0.155, 0.01);
}

TEST(Catalog, WattOrderingStrictlyDecreasing)
{
    auto all = allSystems();
    for (std::size_t i = 1; i < all.size(); ++i)
        EXPECT_LT(all[i].totalWatts(), all[i - 1].totalWatts())
            << all[i].name;
}

TEST(Catalog, ComponentNamesPrintable)
{
    EXPECT_EQ(to_string(MemTech::FBDIMM), "FB-DIMM");
    EXPECT_EQ(to_string(DiskClass::Laptop2), "laptop-2");
}

} // namespace
