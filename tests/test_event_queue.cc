/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "util/logging.hh"

namespace {

using namespace wsc;
using namespace wsc::sim;

TEST(EventQueue, DispatchInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(3.0, [&] { order.push_back(3); });
    eq.schedule(1.0, [&] { order.push_back(1); });
    eq.schedule(2.0, [&] { order.push_back(2); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(eq.now(), 3.0);
}

TEST(EventQueue, TiesDispatchFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(1.0, [&order, i] { order.push_back(i); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue eq;
    double fired_at = -1.0;
    eq.schedule(2.0, [&] {
        eq.scheduleAfter(0.5, [&] { fired_at = eq.now(); });
    });
    eq.runAll();
    EXPECT_DOUBLE_EQ(fired_at, 2.5);
}

TEST(EventQueue, CancelPreventsDispatch)
{
    EventQueue eq;
    bool ran = false;
    EventId id = eq.schedule(1.0, [&] { ran = true; });
    EXPECT_TRUE(eq.cancel(id));
    EXPECT_FALSE(eq.cancel(id)); // second cancel is a no-op
    eq.runAll();
    EXPECT_FALSE(ran);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, CancelAfterDispatchReturnsFalse)
{
    EventQueue eq;
    EventId id = eq.schedule(1.0, [] {});
    eq.runAll();
    EXPECT_FALSE(eq.cancel(id));
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(1.0, [&] { ++count; });
    eq.schedule(2.0, [&] { ++count; });
    eq.schedule(2.0000001, [&] { ++count; });
    auto n = eq.run(2.0);
    EXPECT_EQ(n, 2u);
    EXPECT_EQ(count, 2);
    EXPECT_DOUBLE_EQ(eq.now(), 2.0);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, RunAdvancesClockWhenIdle)
{
    EventQueue eq;
    eq.run(10.0);
    EXPECT_DOUBLE_EQ(eq.now(), 10.0);
}

TEST(EventQueue, SchedulingInPastPanics)
{
    EventQueue eq;
    eq.schedule(5.0, [] {});
    eq.runAll();
    EXPECT_THROW(eq.schedule(1.0, [] {}), PanicError);
}

TEST(EventQueue, NullActionPanics)
{
    EventQueue eq;
    EXPECT_THROW(eq.schedule(1.0, std::function<void()>()), PanicError);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int chain = 0;
    std::function<void()> next = [&] {
        if (++chain < 100)
            eq.scheduleAfter(0.1, next);
    };
    eq.schedule(0.0, next);
    eq.runAll();
    EXPECT_EQ(chain, 100);
    EXPECT_NEAR(eq.now(), 9.9, 1e-9);
}

TEST(EventQueue, PendingTracksLiveEvents)
{
    EventQueue eq;
    auto a = eq.schedule(1.0, [] {});
    eq.schedule(2.0, [] {});
    EXPECT_EQ(eq.pending(), 2u);
    eq.cancel(a);
    EXPECT_EQ(eq.pending(), 1u);
    eq.step();
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.dispatched(), 1u);
}

TEST(EventQueue, StepOnEmptyReturnsFalse)
{
    EventQueue eq;
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, CancelSentinelZeroReturnsFalse)
{
    EventQueue eq;
    EXPECT_FALSE(eq.cancel(0));
    eq.schedule(1.0, [] {});
    EXPECT_FALSE(eq.cancel(0));
}

TEST(EventQueue, RecycledSlotDoesNotResurrectOldHandle)
{
    EventQueue eq;
    EventId stale = eq.schedule(1.0, [] {});
    eq.runAll();
    // The dispatched event's slot is recycled for new events; the old
    // handle must not cancel any of them.
    bool ran = false;
    for (int i = 0; i < 8; ++i)
        eq.schedule(2.0 + i, [&ran] { ran = true; });
    EXPECT_FALSE(eq.cancel(stale));
    EXPECT_EQ(eq.pending(), 8u);
    eq.runAll();
    EXPECT_TRUE(ran);
}

TEST(EventQueue, CompactionReclaimsCancelledEntries)
{
    EventQueue eq;
    std::vector<EventId> ids;
    for (int i = 0; i < 1000; ++i)
        ids.push_back(eq.schedule(double(i), [] {}));
    // Cancel 90%: stale entries far exceed half the live set, so the
    // compaction pass must kick in and drop them from heap storage.
    for (int i = 0; i < 1000; ++i)
        if (i % 10 != 0)
            eq.cancel(ids[std::size_t(i)]);
    EXPECT_EQ(eq.pending(), 100u);
    EXPECT_LT(eq.staleEntries(), 64u);
    EXPECT_EQ(eq.runAll(), 100u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, CancelAllRetiresOnlyTheOwnersEvents)
{
    EventQueue eq;
    int ran = 0;
    for (int i = 0; i < 4; ++i)
        eq.schedule(1.0 + i, [&ran] { ++ran; }, /*owner=*/7);
    for (int i = 0; i < 3; ++i)
        eq.schedule(1.5 + i, [&ran] { ++ran; }, /*owner=*/8);
    eq.schedule(9.0, [&ran] { ++ran; }); // untagged
    EXPECT_EQ(eq.pending(), 8u);

    EXPECT_EQ(eq.cancelAll(7), 4u);
    EXPECT_EQ(eq.pending(), 4u);
    // A second sweep finds nothing: the entries are already retired.
    EXPECT_EQ(eq.cancelAll(7), 0u);

    eq.runAll();
    EXPECT_EQ(ran, 4); // owner 8's three plus the untagged one
}

TEST(EventQueue, CancelAllLeavesUntaggedEventsAlone)
{
    // Owner 0 means untagged; bulk cancellation must never reach
    // those events (and asking for owner 0 is a caller bug).
    EventQueue eq;
    int ran = 0;
    eq.schedule(1.0, [&ran] { ++ran; });
    eq.schedule(2.0, [&ran] { ++ran; }, /*owner=*/3);
    EXPECT_EQ(eq.cancelAll(3), 1u);
    eq.runAll();
    EXPECT_EQ(ran, 1);
    EXPECT_THROW(eq.cancelAll(0), PanicError);
}

TEST(EventQueue, CancelIfSelectsByTimeAndOwner)
{
    EventQueue eq;
    int ran = 0;
    for (int i = 0; i < 10; ++i)
        eq.schedule(double(i) + 0.5, [&ran] { ++ran; },
                    /*owner=*/std::uint64_t(i % 2 ? 2 : 1));
    // Retire owner 1's events firing after t=4 (i = 4, 6, and 8).
    std::size_t n = eq.cancelIf(
        [](sim::EventId, double when, std::uint64_t owner) {
            return owner == 1 && when > 4.0;
        });
    EXPECT_EQ(n, 3u);
    EXPECT_EQ(eq.pending(), 7u);
    eq.runAll();
    EXPECT_EQ(ran, 7);
}

TEST(EventQueue, CancelledIdsStayDeadAfterBulkCancel)
{
    // Bulk cancellation recycles slots; a handle cancelled in bulk
    // must not cancel a later event that reuses the slot.
    EventQueue eq;
    EventId doomed = eq.schedule(1.0, [] {}, /*owner=*/5);
    EXPECT_EQ(eq.cancelAll(5), 1u);
    bool ran = false;
    eq.schedule(2.0, [&ran] { ran = true; });
    EXPECT_FALSE(eq.cancel(doomed));
    eq.runAll();
    EXPECT_TRUE(ran);
}

TEST(EventQueue, BulkCancelFeedsCompaction)
{
    // cancelAll marks entries stale exactly like cancel(); a large
    // bulk retirement must trigger the same heap compaction.
    EventQueue eq;
    for (int i = 0; i < 1000; ++i)
        eq.schedule(double(i), [] {}, /*owner=*/(i % 10 ? 4u : 0u));
    EXPECT_EQ(eq.cancelAll(4), 900u);
    EXPECT_EQ(eq.pending(), 100u);
    EXPECT_LT(eq.staleEntries(), 64u);
    EXPECT_GE(eq.counters().compactions, 1u);
    EXPECT_EQ(eq.runAll(), 100u);
}

TEST(EventQueue, StressScheduleCancelRunKeepsFifoOrder)
{
    // Deterministic churn mixing schedule, cancel, and partial runs;
    // dispatched events must come out in (time, scheduling order) and
    // exactly match a straightforward reference model.
    EventQueue eq;
    struct Expected {
        double when;
        std::uint64_t order; //!< scheduling sequence
    };
    std::vector<std::pair<EventId, Expected>> liveModel;
    std::vector<Expected> dispatchedLog;
    std::uint64_t order = 0;
    std::uint64_t lcg = 12345;
    auto next = [&lcg] {
        lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
        return std::uint32_t(lcg >> 33);
    };

    for (int round = 0; round < 50; ++round) {
        // Burst of schedules, many at identical timestamps to stress
        // the FIFO tie-break.
        for (int i = 0; i < 200; ++i) {
            double when = eq.now() + double(next() % 8);
            Expected ex{when, order++};
            EventId id = eq.schedule(when, [&dispatchedLog, ex] {
                dispatchedLog.push_back(ex);
            });
            liveModel.push_back({id, ex});
        }
        // Cancel a pseudo-random half of what is pending.
        for (std::size_t i = liveModel.size(); i-- > 0;) {
            if (next() % 2 == 0) {
                EXPECT_TRUE(eq.cancel(liveModel[i].first));
                liveModel.erase(liveModel.begin() + long(i));
            }
        }
        EXPECT_EQ(eq.pending(), liveModel.size());
        // Run a bounded slice of simulated time.
        double horizon = eq.now() + 3.0;
        eq.run(horizon);
        liveModel.erase(
            std::remove_if(liveModel.begin(), liveModel.end(),
                           [horizon](const auto &e) {
                               return e.second.when <= horizon;
                           }),
            liveModel.end());
        EXPECT_EQ(eq.pending(), liveModel.size());
    }
    eq.runAll();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);

    // The dispatch log must be sorted by (when, scheduling order) —
    // FIFO among ties — with no event dispatched twice.
    for (std::size_t i = 1; i < dispatchedLog.size(); ++i) {
        const auto &a = dispatchedLog[i - 1];
        const auto &b = dispatchedLog[i];
        EXPECT_TRUE(a.when < b.when ||
                    (a.when == b.when && a.order < b.order))
            << "order violation at " << i;
    }
    EXPECT_EQ(eq.dispatched(), dispatchedLog.size());
}

TEST(EventQueue, CountersTrackKernelActivity)
{
    EventQueue eq;
    std::vector<EventId> ids;
    for (int i = 0; i < 10; ++i)
        ids.push_back(eq.schedule(double(i), [] {}));
    eq.cancel(ids[3]);
    eq.cancel(ids[7]);
    eq.cancel(ids[7]); // failed cancel must not count
    eq.runAll();
    const auto &c = eq.counters();
    EXPECT_EQ(c.scheduled, 10u);
    EXPECT_EQ(c.cancelled, 2u);
    EXPECT_EQ(c.dispatched, 8u);
    EXPECT_EQ(c.dispatched, eq.dispatched());
    EXPECT_EQ(c.peakHeap, 10u);
    EXPECT_EQ(c.compactions, 0u);
}

TEST(EventQueue, CountersRecordCompactions)
{
    EventQueue eq;
    std::vector<EventId> ids;
    for (int i = 0; i < 1000; ++i)
        ids.push_back(eq.schedule(double(i), [] {}));
    for (int i = 0; i < 1000; ++i)
        if (i % 10 != 0)
            eq.cancel(ids[std::size_t(i)]);
    EXPECT_GT(eq.counters().compactions, 0u);
    EXPECT_EQ(eq.counters().peakHeap, 1000u);
}

TEST(EventQueue, TracerSeesScheduleDispatchCancel)
{
    EventQueue eq;
    std::vector<EventQueue::TraceRecord> log;
    eq.setTracer([&log](const EventQueue::TraceRecord &r) {
        log.push_back(r);
    });
    EventId keep = eq.schedule(1.0, [] {});
    EventId gone = eq.schedule(2.0, [] {});
    eq.cancel(gone);
    eq.runAll();

    using Kind = EventQueue::TraceRecord::Kind;
    ASSERT_EQ(log.size(), 4u);
    EXPECT_EQ(log[0].kind, Kind::Schedule);
    EXPECT_EQ(log[0].id, keep);
    EXPECT_DOUBLE_EQ(log[0].when, 1.0);
    EXPECT_EQ(log[1].kind, Kind::Schedule);
    EXPECT_EQ(log[1].id, gone);
    EXPECT_EQ(log[2].kind, Kind::Cancel);
    EXPECT_EQ(log[2].id, gone);
    EXPECT_EQ(log[3].kind, Kind::Dispatch);
    EXPECT_EQ(log[3].id, keep);
    EXPECT_DOUBLE_EQ(log[3].now, 1.0);

    // Removing the tracer silences further records.
    eq.setTracer({});
    eq.schedule(3.0, [] {});
    eq.runAll();
    EXPECT_EQ(log.size(), 4u);
}

TEST(EventQueue, TracerDoesNotPerturbDispatchOrder)
{
    // Identical schedules with and without a tracer must dispatch the
    // same sequence — tracing is pure observation.
    auto drive = [](EventQueue &eq, std::vector<int> &order) {
        for (int i = 0; i < 20; ++i)
            eq.schedule(double((i * 7) % 5), [&order, i] {
                order.push_back(i);
            });
        eq.runAll();
    };
    EventQueue plain, traced;
    std::size_t records = 0;
    traced.setTracer([&records](const EventQueue::TraceRecord &) {
        ++records;
    });
    std::vector<int> a, b;
    drive(plain, a);
    drive(traced, b);
    EXPECT_EQ(a, b);
    EXPECT_EQ(records, 40u); // 20 schedules + 20 dispatches
}

TEST(EventQueue, ReserveDoesNotDisturbPendingEvents)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(1.0, [&] { ++count; });
    eq.reserve(4096);
    eq.schedule(2.0, [&] { ++count; });
    eq.runAll();
    EXPECT_EQ(count, 2);
}

} // namespace
