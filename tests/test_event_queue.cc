/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "util/logging.hh"

namespace {

using namespace wsc;
using namespace wsc::sim;

TEST(EventQueue, DispatchInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(3.0, [&] { order.push_back(3); });
    eq.schedule(1.0, [&] { order.push_back(1); });
    eq.schedule(2.0, [&] { order.push_back(2); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(eq.now(), 3.0);
}

TEST(EventQueue, TiesDispatchFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(1.0, [&order, i] { order.push_back(i); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue eq;
    double fired_at = -1.0;
    eq.schedule(2.0, [&] {
        eq.scheduleAfter(0.5, [&] { fired_at = eq.now(); });
    });
    eq.runAll();
    EXPECT_DOUBLE_EQ(fired_at, 2.5);
}

TEST(EventQueue, CancelPreventsDispatch)
{
    EventQueue eq;
    bool ran = false;
    EventId id = eq.schedule(1.0, [&] { ran = true; });
    EXPECT_TRUE(eq.cancel(id));
    EXPECT_FALSE(eq.cancel(id)); // second cancel is a no-op
    eq.runAll();
    EXPECT_FALSE(ran);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, CancelAfterDispatchReturnsFalse)
{
    EventQueue eq;
    EventId id = eq.schedule(1.0, [] {});
    eq.runAll();
    EXPECT_FALSE(eq.cancel(id));
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(1.0, [&] { ++count; });
    eq.schedule(2.0, [&] { ++count; });
    eq.schedule(2.0000001, [&] { ++count; });
    auto n = eq.run(2.0);
    EXPECT_EQ(n, 2u);
    EXPECT_EQ(count, 2);
    EXPECT_DOUBLE_EQ(eq.now(), 2.0);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, RunAdvancesClockWhenIdle)
{
    EventQueue eq;
    eq.run(10.0);
    EXPECT_DOUBLE_EQ(eq.now(), 10.0);
}

TEST(EventQueue, SchedulingInPastPanics)
{
    EventQueue eq;
    eq.schedule(5.0, [] {});
    eq.runAll();
    EXPECT_THROW(eq.schedule(1.0, [] {}), PanicError);
}

TEST(EventQueue, NullActionPanics)
{
    EventQueue eq;
    EXPECT_THROW(eq.schedule(1.0, std::function<void()>()), PanicError);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int chain = 0;
    std::function<void()> next = [&] {
        if (++chain < 100)
            eq.scheduleAfter(0.1, next);
    };
    eq.schedule(0.0, next);
    eq.runAll();
    EXPECT_EQ(chain, 100);
    EXPECT_NEAR(eq.now(), 9.9, 1e-9);
}

TEST(EventQueue, PendingTracksLiveEvents)
{
    EventQueue eq;
    auto a = eq.schedule(1.0, [] {});
    eq.schedule(2.0, [] {});
    EXPECT_EQ(eq.pending(), 2u);
    eq.cancel(a);
    EXPECT_EQ(eq.pending(), 1u);
    eq.step();
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.dispatched(), 1u);
}

TEST(EventQueue, StepOnEmptyReturnsFalse)
{
    EventQueue eq;
    EXPECT_FALSE(eq.step());
}

} // namespace
