/**
 * @file
 * Ensemble-DES tests: the sharded-queue determinism contract
 * (byte-identical reports at 1/2/8 shards, across worker counts, and
 * between the heap and calendar event-queue backends),
 * sleep-state wake-latency accounting, MMPP burst rates, power-cap
 * clamping, zero-load hours, the policy energy ordering, config
 * validation, and the fast-mode/2 macro-event engine's own contract:
 * per-seed bit-identity across execution knobs, the report stamp,
 * coarse statistical closeness to the exact engine, and policy-
 * ordering preservation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/ensemble.hh"
#include "obs/run_report.hh"
#include "perfsim/ensemble_sim.hh"
#include "util/logging.hh"

using namespace wsc;
using namespace wsc::perfsim;

namespace {

std::array<double, 24>
internetProfile()
{
    return core::DiurnalProfile::internetService().hourly;
}

/** Shared base config: small enough to run in seconds, busy enough to
 * exercise spills, wakes, and the hour-boundary control plane. */
EnsembleConfig
baseConfig()
{
    EnsembleConfig cfg;
    cfg.servers = 2000;
    cfg.cells = 8;
    cfg.hours = 24;
    cfg.secondsPerHour = 2.0;
    cfg.profile = internetProfile();
    cfg.policy = EnsemblePolicy::PowerOff;
    cfg.mmpp.enabled = true;
    // Compressed-timescale transition latencies (a real 30 s boot
    // would span 15 compressed hours).
    cfg.power.bootSeconds = 1.0;
    cfg.power.sleepWakeSeconds = 0.25;
    cfg.power.idleToSleepSeconds = 0.5;
    return cfg;
}

/** The identity serialization the determinism contract is stated
 * over: the ensemble.* report section without wall-clock fields. */
std::string
identityJson(const EnsembleResult &r)
{
    core::EnsemblePolicyOutcome o;
    o.measured = r;
    obs::ReportOptions opts;
    opts.includeTimings = false;
    return obs::toJson(core::ensembleReport(o), opts);
}

} // namespace

// The ISSUE acceptance bar: >= 10,000 servers over 24 simulated hours,
// byte-identical ensemble.* JSON at 1, 2, and 8 shards.
TEST(Ensemble, BitIdenticalAcrossShardCounts)
{
    EnsembleConfig cfg = baseConfig();
    cfg.servers = 10000;
    cfg.cells = 16;

    std::string ref;
    for (unsigned shards : {1u, 2u, 8u}) {
        cfg.shards = shards;
        auto r = runEnsemble(cfg);
        EXPECT_EQ(r.servers, 10000u);
        EXPECT_EQ(r.hours, 24u);
        EXPECT_GT(r.offered, 0u);
        std::string json = identityJson(r);
        if (ref.empty())
            ref = json;
        else
            EXPECT_EQ(json, ref) << "shards=" << shards;
    }
}

// Worker threads are an execution knob like shards: a multi-threaded
// run must reproduce the serial bytes. (This test is the TSan probe
// for the sharded queue's barrier protocol.)
TEST(Ensemble, BitIdenticalAcrossWorkerCounts)
{
    EnsembleConfig cfg = baseConfig();
    cfg.shards = 4;

    cfg.workers = 1;
    std::string serial = identityJson(runEnsemble(cfg));
    cfg.workers = 2;
    EXPECT_EQ(identityJson(runEnsemble(cfg)), serial);
    cfg.workers = 0; // min(shards, hardware)
    EXPECT_EQ(identityJson(runEnsemble(cfg)), serial);
}

// The event-queue backend is the third execution knob: the calendar
// queue must reproduce the heap oracle's bytes at every shard and
// worker count, because both dispatch the identical (time, seq)
// order. This is the cross-backend acceptance gate; the per-operation
// cross-check lives in test_calendar_queue.
TEST(Ensemble, BitIdenticalAcrossQueueBackends)
{
    EnsembleConfig cfg = baseConfig();
    cfg.queue = sim::QueueKind::Heap;
    std::string ref = identityJson(runEnsemble(cfg));

    cfg.queue = sim::QueueKind::Calendar;
    for (unsigned shards : {1u, 2u, 8u}) {
        cfg.shards = shards;
        for (unsigned workers : {1u, 2u}) {
            if (workers > shards)
                continue;
            cfg.workers = workers;
            EXPECT_EQ(identityJson(runEnsemble(cfg)), ref)
                << "calendar shards=" << shards
                << " workers=" << workers;
        }
    }
}

// Wake-up latency is the cost consolidation pays: the same fleet with
// a slow suspend->serving transition must complete jobs slower than
// one with a near-free transition, and the governor must actually be
// putting servers to sleep for that to show.
TEST(Ensemble, WakeLatencyShowsUpInRequestLatency)
{
    EnsembleConfig cfg = baseConfig();
    cfg.policy = EnsemblePolicy::ConsolidateIdle;
    cfg.mmpp.enabled = false;
    cfg.peakUtilization = 0.3; // plenty of idle time to sleep through

    cfg.power.sleepWakeSeconds = 1.0;
    auto slow = runEnsemble(cfg);
    cfg.power.sleepWakeSeconds = 1e-3;
    auto fast = runEnsemble(cfg);

    EXPECT_GT(slow.wakes, 100u);
    EXPECT_GT(fast.wakes, 100u);
    EXPECT_GT(slow.meanLatency, fast.meanLatency + 0.01);
    EXPECT_GT(slow.p99, fast.p99);
    // Waking time is accounted as its own state, not hidden.
    EXPECT_GT(slow.stateFractions[std::size_t(ServerState::Waking)],
              fast.stateFractions[std::size_t(ServerState::Waking)]);
}

// With equal calm/burst dwells and multiplier m, the MMPP's long-run
// arrival rate is (1 + m) / 2 times the base rate.
TEST(Ensemble, MmppBurstsRaiseOfferedLoad)
{
    EnsembleConfig cfg = baseConfig();
    cfg.policy = EnsemblePolicy::AlwaysOn;
    cfg.secondsPerHour = 4.0;
    cfg.profile = flatHourlyProfile();
    cfg.peakUtilization = 0.3; // headroom so bursts aren't clipped

    cfg.mmpp.enabled = false;
    auto calm = runEnsemble(cfg);

    cfg.mmpp.enabled = true;
    cfg.mmpp.burstMultiplier = 3.0;
    cfg.mmpp.calmMeanSeconds = 2.0;
    cfg.mmpp.burstMeanSeconds = 2.0;
    auto bursty = runEnsemble(cfg);

    double ratio = double(bursty.offered) / double(calm.offered);
    EXPECT_NEAR(ratio, 2.0, 0.2);
}

// Dead-of-night troughs are legitimate input (the satellite-2 class of
// bug): zero-load hours must neither crash nor poison the accounting.
TEST(Ensemble, ZeroLoadHoursRunClean)
{
    EnsembleConfig cfg = baseConfig();
    cfg.servers = 400;
    cfg.cells = 4;
    cfg.profile.fill(0.0);
    cfg.profile[12] = 0.8; // single busy hour mid-day

    auto r = runEnsemble(cfg);
    EXPECT_GT(r.offered, 0u);
    EXPECT_GT(r.completed, 0u);
    EXPECT_GT(r.kWhPerDay, 0.0);
    ASSERT_EQ(r.hourKWh.size(), 24u);
    EXPECT_GT(r.hourKWh[12], r.hourKWh[3]);

    // The degenerate all-zero day: nothing offered, attainment is
    // vacuously perfect, the fleet still burns floor power.
    cfg.profile.fill(0.0);
    auto dark = runEnsemble(cfg);
    EXPECT_EQ(dark.offered, 0u);
    EXPECT_DOUBLE_EQ(dark.qosAttainment, 1.0);
    EXPECT_GT(dark.kWhPerDay, 0.0);
}

// The ensemble power cap clamps the autoscaler's awake target and
// records every hour it bound.
TEST(Ensemble, PowerCapClampsAutoscaler)
{
    EnsembleConfig cfg = baseConfig();
    cfg.servers = 1000;
    cfg.mmpp.enabled = false;

    auto uncapped = runEnsemble(cfg);
    EXPECT_EQ(uncapped.capClamps, 0u);

    // Cap at roughly half the fleet's busy draw.
    cfg.powerCapWatts = 0.5 * cfg.servers * cfg.power.busyWatts;
    auto capped = runEnsemble(cfg);
    EXPECT_GT(capped.capClamps, 0u);
    EXPECT_LT(capped.meanAwakeServers, uncapped.meanAwakeServers);
    EXPECT_LT(capped.kWhPerDay, uncapped.kWhPerDay);
    EXPECT_LT(capped.qosAttainment, uncapped.qosAttainment);
}

// The core coupling: all three policies ride the bit-identical arrival
// process, energy orders PowerOff < ConsolidateIdle < AlwaysOn on a
// diurnal profile, and the ranking is sorted by score.
TEST(Ensemble, PolicyRankingOrdersEnergy)
{
    core::EnsembleEvalParams ep;
    ep.energy.servers = 1000;
    ep.cells = 8;
    ep.secondsPerHour = 2.0;
    ep.sleepWakeSeconds = 0.25;
    ep.bootSeconds = 1.0;
    ep.idleToSleepSeconds = 0.5;

    auto ranked = core::rankEnsemblePolicies(
        core::DiurnalProfile::internetService(), ep);
    ASSERT_EQ(ranked.size(), 3u);

    double kwh[3] = {};
    std::uint64_t offered[3] = {};
    for (const auto &o : ranked) {
        auto i = std::size_t(ensemblePolicy(o.policy));
        kwh[i] = o.measured.kWhPerDay;
        offered[i] = o.measured.offered;
        EXPECT_GT(o.analytical.kWhPerDay, 0.0);
        EXPECT_GT(o.measured.qosAttainment, 0.9);
    }
    EXPECT_EQ(offered[0], offered[1]);
    EXPECT_EQ(offered[1], offered[2]);
    using P = EnsemblePolicy;
    EXPECT_LT(kwh[std::size_t(P::PowerOff)],
              kwh[std::size_t(P::ConsolidateIdle)]);
    EXPECT_LT(kwh[std::size_t(P::ConsolidateIdle)],
              kwh[std::size_t(P::AlwaysOn)]);
    EXPECT_LE(ranked[0].measured.score, ranked[1].measured.score);
    EXPECT_LE(ranked[1].measured.score, ranked[2].measured.score);
}

// Report shape: state fractions partition server-time, hour arrays
// span the day, and the JSON section carries the policy name.
TEST(Ensemble, ReportAccountingCloses)
{
    EnsembleConfig cfg = baseConfig();
    cfg.servers = 500;
    auto r = runEnsemble(cfg);

    double sum = 0.0;
    for (double f : r.stateFractions)
        sum += f;
    EXPECT_NEAR(sum, 1.0, 1e-9);

    double hourSum = 0.0;
    for (double h : r.hourKWh)
        hourSum += h;
    EXPECT_NEAR(hourSum, r.kWhPerDay, 1e-6 * r.kWhPerDay);

    core::EnsemblePolicyOutcome o;
    o.policy = core::PowerPolicy::PowerOff;
    o.measured = r;
    std::string json = obs::toJson(core::ensembleReport(o));
    EXPECT_NE(json.find("\"policy\": \"power-off\""), std::string::npos);
    EXPECT_NE(json.find("\"state_fractions\""), std::string::npos);
    EXPECT_NE(json.find("\"wall_seconds\""), std::string::npos);
    obs::ReportOptions noTimings;
    noTimings.includeTimings = false;
    std::string id = obs::toJson(core::ensembleReport(o), noTimings);
    EXPECT_EQ(id.find("\"wall_seconds\""), std::string::npos);
}

// fast-mode/2 keeps the exact engine's execution-knob invariance: the
// macro-event engine must produce one byte stream per seed regardless
// of shards, workers, or event-queue backend, and reproduce it on a
// repeat run. (Bit-identity *across* engines is exactly what fast
// mode gives up; that boundary is gated statistically.)
TEST(EnsembleFast, BitIdenticalAcrossExecutionKnobs)
{
    EnsembleConfig cfg = baseConfig();
    cfg.fast.enabled = true;

    std::string ref = identityJson(runEnsemble(cfg));
    EXPECT_EQ(identityJson(runEnsemble(cfg)), ref) << "repeat run";

    for (auto kind : {sim::QueueKind::Heap, sim::QueueKind::Calendar})
        for (unsigned shards : {1u, 2u, 8u})
            for (unsigned workers : {1u, 2u}) {
                if (workers > shards)
                    continue;
                cfg.queue = kind;
                cfg.shards = shards;
                cfg.workers = workers;
                EXPECT_EQ(identityJson(runEnsemble(cfg)), ref)
                    << sim::queueKindName(kind) << " shards=" << shards
                    << " workers=" << workers;
            }
}

// The contract version is stamped into fast reports and absent from
// exact ones — exact-mode bytes must not move when the feature ships.
TEST(EnsembleFast, ContractStampedOnlyWhenEnabled)
{
    EnsembleConfig cfg = baseConfig();
    cfg.servers = 500;

    std::string exact = identityJson(runEnsemble(cfg));
    EXPECT_EQ(exact.find("\"fast_mode\""), std::string::npos);

    cfg.fast.enabled = true;
    std::string fast = identityJson(runEnsemble(cfg));
    EXPECT_NE(fast.find("\"fast_mode\": \"fast-mode/2\""),
              std::string::npos);
    EXPECT_NE(exact, fast);
}

// Coarse statistical closeness on one seed: not the real gate (that
// is bench_ensemble's permutation-KS + CI machinery over seed pools),
// but a cheap tripwire that catches gross engine divergence — wrong
// arrival law, broken energy integration, missing spill handling —
// in every ctest run.
TEST(EnsembleFast, TracksExactAggregates)
{
    EnsembleConfig cfg = baseConfig();

    cfg.fast.enabled = false;
    auto exact = runEnsemble(cfg);
    cfg.fast.enabled = true;
    auto fast = runEnsemble(cfg);

    auto rel = [](double a, double b) {
        return std::abs(a - b) / std::max(std::abs(a), 1e-12);
    };
    EXPECT_LT(rel(double(exact.offered), double(fast.offered)), 0.05);
    EXPECT_LT(rel(exact.kWhPerDay, fast.kWhPerDay), 0.05);
    EXPECT_LT(rel(exact.meanAwakeServers, fast.meanAwakeServers),
              0.05);
    EXPECT_LT(rel(exact.meanLatency, fast.meanLatency), 0.25);
    EXPECT_LT(std::abs(exact.qosAttainment - fast.qosAttainment),
              0.05);
    EXPECT_GT(fast.spilled, 0u);
    EXPECT_GT(fast.wakes, 0u);
    // The coalescing is the point: far fewer dispatched events than
    // the per-arrival engine for the same offered load.
    EXPECT_LT(fast.eventsDispatched, exact.eventsDispatched / 2);
}

// The paper's headline ordering must survive the macro-event engine.
TEST(EnsembleFast, PolicyEnergyOrderingPreserved)
{
    EnsembleConfig cfg = baseConfig();
    cfg.fast.enabled = true;

    cfg.policy = EnsemblePolicy::PowerOff;
    auto off = runEnsemble(cfg);
    cfg.policy = EnsemblePolicy::AlwaysOn;
    auto on = runEnsemble(cfg);

    EXPECT_LT(off.kWhPerDay, on.kWhPerDay);
    EXPECT_GT(off.offs, 0u);
    EXPECT_EQ(on.offs, 0u);
}

TEST(Ensemble, RejectsDegenerateConfigs)
{
    EnsembleConfig cfg = baseConfig();
    cfg.servers = 0;
    EXPECT_THROW(runEnsemble(cfg), PanicError);

    cfg = baseConfig();
    cfg.profile[7] = 1.5;
    EXPECT_THROW(runEnsemble(cfg), PanicError);

    cfg = baseConfig();
    cfg.secondsPerHour = 0.0;
    EXPECT_THROW(runEnsemble(cfg), PanicError);

    cfg = baseConfig();
    cfg.cells = 0;
    EXPECT_THROW(runEnsemble(cfg), PanicError);
}
