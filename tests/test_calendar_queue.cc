/**
 * @file
 * CalendarQueue vs binary-heap EventQueue: the calendar backend must
 * dispatch in exactly the heap's (time, seq) total order under every
 * workload shape that has ever broken a calendar queue — tie storms,
 * far-future outliers, regime shifts, cancel churn, and pushes behind
 * the serving cursor. Most tests drive two full EventQueues (one per
 * backend) through an identical schedule and compare dispatch traces
 * event by event, so slot recycling, compaction, and the counters are
 * exercised too, not just the bare ordering structure.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/calendar_queue.hh"
#include "sim/event_queue.hh"
#include "util/random.hh"

namespace {

using wsc::sim::CalendarQueue;
using wsc::sim::EventEntry;
using wsc::sim::EventId;
using wsc::sim::EventQueue;
using wsc::sim::QueueKind;
using wsc::sim::Time;

TEST(QueueKindTest, ParseAndName)
{
    QueueKind k = QueueKind::Calendar;
    EXPECT_TRUE(wsc::sim::parseQueueKind("heap", k));
    EXPECT_EQ(k, QueueKind::Heap);
    EXPECT_TRUE(wsc::sim::parseQueueKind("calendar", k));
    EXPECT_EQ(k, QueueKind::Calendar);
    EXPECT_FALSE(wsc::sim::parseQueueKind("ladder", k));
    EXPECT_EQ(k, QueueKind::Calendar); // untouched on failure
    EXPECT_STREQ(wsc::sim::queueKindName(QueueKind::Heap), "heap");
    EXPECT_STREQ(wsc::sim::queueKindName(QueueKind::Calendar),
                 "calendar");
}

// --- Bare-structure tests -------------------------------------------

TEST(CalendarQueueTest, DrainsInTotalOrder)
{
    CalendarQueue cq;
    wsc::SplitMix64 rng(42);
    std::vector<EventEntry> entries;
    for (std::uint64_t i = 0; i < 5000; ++i) {
        entries.push_back(
            {rng.uniform() * 100.0, i + 1, std::uint32_t(i), 1});
        cq.push(entries.back());
    }
    std::sort(entries.begin(), entries.end(),
              [](const EventEntry &a, const EventEntry &b) {
                  if (a.when != b.when)
                      return a.when < b.when;
                  return a.seq < b.seq;
              });
    for (const EventEntry &want : entries) {
        ASSERT_FALSE(cq.empty());
        EventEntry got = cq.popMin();
        EXPECT_EQ(got.when, want.when);
        EXPECT_EQ(got.seq, want.seq);
    }
    EXPECT_TRUE(cq.empty());
}

TEST(CalendarQueueTest, SameTimestampStormDispatchesFifo)
{
    // Adversarial tie storm: one timestamp shared by every entry. No
    // bucket width can subdivide it; order must fall back to seq and
    // the width-resample loop must not spin.
    CalendarQueue cq;
    for (std::uint64_t i = 0; i < 20000; ++i)
        cq.push({7.25, i + 1, std::uint32_t(i), 1});
    for (std::uint64_t i = 0; i < 20000; ++i) {
        EventEntry got = cq.popMin();
        ASSERT_EQ(got.seq, i + 1) << "tie broken out of FIFO order";
    }
    EXPECT_TRUE(cq.empty());
}

TEST(CalendarQueueTest, TieStormInterleavedWithDrain)
{
    // Push ties while draining the same timestamp: new arrivals land
    // in the serving (sorted) bucket and must still come out FIFO.
    CalendarQueue cq;
    std::uint64_t seq = 1;
    for (int i = 0; i < 100; ++i)
        cq.push({3.0, seq++, 0, 1});
    std::uint64_t expect = 1;
    for (int round = 0; round < 100; ++round) {
        EXPECT_EQ(cq.popMin().seq, expect++);
        cq.push({3.0, seq++, 0, 1});
        cq.push({3.0, seq++, 0, 1});
    }
    while (!cq.empty())
        EXPECT_EQ(cq.popMin().seq, expect++);
    EXPECT_EQ(expect, seq);
}

TEST(CalendarQueueTest, FarFutureOutlierDoesNotStretchWidth)
{
    // A dense head plus one entry ~10^7 gaps away: the head must stay
    // spread over many buckets (the outlier sits in overflow), not
    // collapse into one serving bucket.
    CalendarQueue cq;
    wsc::SplitMix64 rng(7);
    std::uint64_t seq = 1;
    cq.push({1.0e6, seq++, 0, 1}); // far-future outlier
    Time t = 0.0;
    std::vector<Time> times;
    for (int i = 0; i < 4000; ++i) {
        t += rng.exponential(0.001);
        times.push_back(t);
        cq.push({t, seq++, 0, 1});
    }
    std::sort(times.begin(), times.end());
    for (Time want : times)
        EXPECT_EQ(cq.popMin().when, want);
    EXPECT_EQ(cq.popMin().when, 1.0e6);
    EXPECT_TRUE(cq.empty());
    EXPECT_GT(cq.rebuilds(), 0u);
    // The resampled width must track the dense head's mean gap
    // (1e-3), not the 1e6 outlier: anything under one second means
    // the (max-min)/n failure mode did not happen.
    EXPECT_LT(cq.bucketWidth(), 1.0);
}

TEST(CalendarQueueTest, PushBehindServingCursorStaysOrdered)
{
    // Drain into a later bucket, then push earlier events (still in
    // the future relative to popped times is NOT required by the bare
    // structure): the cursor must back up and serve them first.
    CalendarQueue cq;
    std::uint64_t seq = 1;
    for (int i = 0; i < 64; ++i)
        cq.push({100.0 + i, seq++, 0, 1});
    EXPECT_EQ(cq.popMin().when, 100.0);
    EXPECT_EQ(cq.popMin().when, 101.0);
    // Earlier than everything pending, later than everything popped.
    cq.push({100.5, seq++, 0, 1});
    EXPECT_EQ(cq.popMin().when, 100.5);
    EXPECT_EQ(cq.popMin().when, 102.0);
}

TEST(CalendarQueueTest, PushBelowAnchoredYearDemotesCleanly)
{
    // Drain past a sparse region so the year re-anchors far ahead,
    // then schedule before the new year's start.
    CalendarQueue cq;
    std::uint64_t seq = 1;
    cq.push({1.0, seq++, 0, 1});
    cq.push({5.0e5, seq++, 0, 1});
    EXPECT_EQ(cq.popMin().when, 1.0);
    EXPECT_EQ(cq.min().when, 5.0e5); // year jumped to the outlier
    cq.push({10.0, seq++, 0, 1});    // below the re-anchored year
    EXPECT_EQ(cq.popMin().when, 10.0);
    EXPECT_EQ(cq.popMin().when, 5.0e5);
    EXPECT_TRUE(cq.empty());
}

TEST(CalendarQueueTest, RegimeShiftTriggersRebuild)
{
    // Microsecond-gap regime, drained, then a millisecond-gap regime:
    // the overloaded-bucket trigger must resample the width rather
    // than serve thousand-entry buckets forever.
    CalendarQueue cq;
    std::uint64_t seq = 1;
    for (int i = 0; i < 4096; ++i)
        cq.push({double(i) * 1.0e-6, seq++, 0, 1});
    Time prev = -1.0;
    while (!cq.empty()) {
        Time w = cq.popMin().when;
        EXPECT_GE(w, prev);
        prev = w;
    }
    for (int i = 0; i < 4096; ++i)
        cq.push({100.0 + double(i) * 1.0e-3, seq++, 0, 1});
    prev = -1.0;
    while (!cq.empty()) {
        Time w = cq.popMin().when;
        EXPECT_GE(w, prev);
        prev = w;
    }
    EXPECT_GT(cq.rebuilds(), 0u);
}

TEST(CalendarQueueTest, RemoveIfFiltersBothTiers)
{
    CalendarQueue cq;
    std::uint64_t seq = 1;
    for (int i = 0; i < 1000; ++i)
        cq.push({double(i % 50), seq++, std::uint32_t(i), 1});
    cq.push({9.0e5, seq++, 10000, 1}); // lives in overflow, even slot
    std::size_t removed =
        cq.removeIf([](const EventEntry &e) { return e.slot % 2 == 0; });
    EXPECT_EQ(removed, 501u); // 500 even bucket slots + the overflow one
    EXPECT_EQ(cq.size(), 1001u - removed);
    Time prev = -1.0;
    while (!cq.empty()) {
        EventEntry e = cq.popMin();
        EXPECT_EQ(e.slot % 2, 1u);
        EXPECT_GE(e.when, prev);
        prev = e.when;
    }
}

// --- Backend cross-check through EventQueue -------------------------

/** Drives one EventQueue per backend through the same randomized
 * schedule/cancel/cancelAll script and asserts the dispatch traces
 * match event by event. */
void
crossCheck(std::uint64_t seed, int ops, double horizon,
           double cancelProb, double ownerProb, double tieProb)
{
    EventQueue hq(QueueKind::Heap);
    EventQueue cq(QueueKind::Calendar);
    std::vector<std::pair<Time, int>> hTrace, cTrace;

    wsc::SplitMix64 rng(seed);
    // Identical schedules on both queues. Ids are NOT asserted equal:
    // bulk-cancel sweeps visit entries in backend-specific storage
    // order, so freed slots recycle differently — which is fine, the
    // contract is over dispatch order and counters, both keyed on
    // (when, seq). Cancels line up through the parallel id vectors.
    std::vector<EventId> hIds, cIds;
    Time lastTie = 0.0;
    for (int i = 0; i < ops; ++i) {
        double u = rng.uniform();
        if (u < cancelProb && !hIds.empty()) {
            std::size_t pick = rng.pick(hIds.size());
            EXPECT_EQ(hq.cancel(hIds[pick]), cq.cancel(cIds[pick]));
            continue;
        }
        std::uint64_t owner =
            rng.uniform() < ownerProb ? 1 + rng.pick(4) : 0;
        if (u < cancelProb + 0.02 && owner != 0) {
            EXPECT_EQ(hq.cancelAll(owner), cq.cancelAll(owner));
            continue;
        }
        Time when;
        if (rng.uniform() < tieProb && lastTie >= hq.now()) {
            when = lastTie; // deliberate same-timestamp collision
        } else {
            when = std::max(hq.now(), cq.now()) +
                   rng.exponential(horizon / ops * 8.0);
            lastTie = when;
        }
        int tag = i;
        hIds.push_back(hq.schedule(
            when, [&hTrace, when, tag] { hTrace.push_back({when, tag}); },
            owner));
        cIds.push_back(cq.schedule(
            when, [&cTrace, when, tag] { cTrace.push_back({when, tag}); },
            owner));
        // Occasionally run both queues forward a slice.
        if (rng.uniform() < 0.05) {
            Time until = hq.now() + rng.exponential(horizon / 20.0);
            EXPECT_EQ(hq.run(until), cq.run(until));
            ASSERT_EQ(hq.now(), cq.now());
        }
    }
    EXPECT_EQ(hq.runAll(), cq.runAll());
    ASSERT_EQ(hTrace.size(), cTrace.size());
    for (std::size_t i = 0; i < hTrace.size(); ++i) {
        ASSERT_EQ(hTrace[i].first, cTrace[i].first) << "at event " << i;
        ASSERT_EQ(hTrace[i].second, cTrace[i].second)
            << "at event " << i;
    }
    EXPECT_EQ(hq.counters().dispatched, cq.counters().dispatched);
    EXPECT_EQ(hq.counters().cancelled, cq.counters().cancelled);
    EXPECT_EQ(hq.pending(), 0u);
    EXPECT_EQ(cq.pending(), 0u);
}

TEST(CalendarVsHeapTest, RandomScheduleMatchesEventByEvent)
{
    crossCheck(/*seed=*/1, /*ops=*/8000, /*horizon=*/100.0,
               /*cancelProb=*/0.0, /*ownerProb=*/0.0, /*tieProb=*/0.0);
}

TEST(CalendarVsHeapTest, CancelChurnMatchesEventByEvent)
{
    // Heavy lazy-cancel traffic forces stale-skip paths and the
    // compaction sweep (removeIf on the calendar side).
    crossCheck(/*seed=*/2, /*ops=*/8000, /*horizon=*/50.0,
               /*cancelProb=*/0.35, /*ownerProb=*/0.3,
               /*tieProb=*/0.0);
}

TEST(CalendarVsHeapTest, TieStormsMatchEventByEvent)
{
    crossCheck(/*seed=*/3, /*ops=*/8000, /*horizon=*/10.0,
               /*cancelProb=*/0.1, /*ownerProb=*/0.2,
               /*tieProb=*/0.5);
}

TEST(CalendarVsHeapTest, ManySeedsSmoke)
{
    for (std::uint64_t seed = 10; seed < 18; ++seed)
        crossCheck(seed, 1500, 25.0, 0.15, 0.25, 0.2);
}

TEST(CalendarVsHeapTest, HoldModelDeepQueueMatches)
{
    // Ensemble-shaped hold model: a deep queue where every dispatch
    // schedules a successor — the steady state the calendar's O(1)
    // claim is about. Exercises year advances and width resamples at
    // depth without tie traffic.
    constexpr int kDepth = 20000;
    constexpr int kHolds = 100000;
    auto runHold = [&](QueueKind kind) {
        EventQueue q(kind);
        wsc::SplitMix64 rng(99); // same stream for both kinds
        std::uint64_t sum = 0;
        std::function<void()> hold = [&] {
            sum += std::uint64_t(q.now() * 1e6) & 0xffff;
            if (q.counters().dispatched < std::uint64_t(kHolds))
                q.scheduleAfter(rng.exponential(1.0), [&] { hold(); });
        };
        for (int i = 0; i < kDepth; ++i)
            q.scheduleAfter(rng.exponential(1.0), [&] { hold(); });
        q.runAll();
        return std::make_pair(sum, q.counters().dispatched);
    };
    auto heapResult = runHold(QueueKind::Heap);
    auto calResult = runHold(QueueKind::Calendar);
    EXPECT_EQ(calResult.first, heapResult.first);
    EXPECT_EQ(calResult.second, heapResult.second);
    // Dispatches 1..kHolds-1 each schedule a successor (the counter
    // is incremented before the action runs), plus the seed chain.
    EXPECT_EQ(heapResult.second, std::uint64_t(kHolds) + kDepth - 1);
}

} // namespace
