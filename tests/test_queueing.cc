/**
 * @file
 * Queueing-theory validation: closed forms, and the DES resources
 * against them under matching assumptions.
 */

#include <gtest/gtest.h>

#include "sim/event_queue.hh"
#include "sim/queueing.hh"
#include "sim/resources.hh"
#include "stats/summary.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace {

using namespace wsc;
using namespace wsc::sim;
using namespace wsc::sim::queueing;

TEST(ClosedForms, Mm1Basics)
{
    // rho = 0.5: T = 1/(mu - lambda) = 2/mu; L = 1.
    EXPECT_DOUBLE_EQ(mm1MeanSojourn(0.5, 1.0), 2.0);
    EXPECT_DOUBLE_EQ(mm1MeanInSystem(0.5, 1.0), 1.0);
    // Little's law: L = lambda * T.
    double lambda = 0.7, mu = 1.0;
    EXPECT_NEAR(mm1MeanInSystem(lambda, mu),
                lambda * mm1MeanSojourn(lambda, mu), 1e-12);
}

TEST(ClosedForms, Mm1QuantileMedianBelowMean)
{
    double t50 = mm1SojournQuantile(0.5, 1.0, 0.5);
    double mean = mm1MeanSojourn(0.5, 1.0);
    EXPECT_LT(t50, mean); // exponential: median < mean
    EXPECT_NEAR(mm1SojournQuantile(0.5, 1.0, 1.0 - std::exp(-1.0)),
                mean, 1e-12);
}

TEST(ClosedForms, ErlangCSingleServerIsRho)
{
    // With c = 1 the waiting probability equals rho.
    EXPECT_NEAR(erlangC(0.3, 1.0, 1), 0.3, 1e-12);
    EXPECT_NEAR(erlangC(0.8, 1.0, 1), 0.8, 1e-12);
}

TEST(ClosedForms, ErlangCDropsWithServers)
{
    // Same per-server load, more servers: economy of scale.
    double c2 = erlangC(1.6, 1.0, 2);
    double c4 = erlangC(3.2, 1.0, 4);
    EXPECT_LT(c4, c2);
}

TEST(ClosedForms, MmcReducesToMm1)
{
    EXPECT_NEAR(mmcMeanSojourn(0.6, 1.0, 1), mm1MeanSojourn(0.6, 1.0),
                1e-12);
}

TEST(ClosedForms, Md1WaitIsHalfOfMm1Wait)
{
    // P-K: deterministic service halves the waiting time.
    double lambda = 0.7, mu = 1.0;
    double mm1_wait = mm1MeanSojourn(lambda, mu) - 1.0 / mu;
    EXPECT_NEAR(md1MeanWait(lambda, mu), 0.5 * mm1_wait, 1e-12);
}

TEST(ClosedForms, UnstableQueuePanics)
{
    EXPECT_THROW(mm1MeanSojourn(1.0, 1.0), PanicError);
    EXPECT_THROW(mmcMeanSojourn(4.0, 1.0, 4), PanicError);
}

/**
 * DES validation: the PS resource with one slot fed by Poisson
 * arrivals of exponential work is an M/M/1-PS queue, whose mean
 * sojourn matches FIFO M/M/1.
 */
class PsAgainstMm1 : public ::testing::TestWithParam<double>
{};

TEST_P(PsAgainstMm1, MeanSojournMatchesTheory)
{
    double rho = GetParam();
    double mu = 1.0;      // service rate: capacity 1, mean work 1
    double lambda = rho;  // arrival rate
    EventQueue eq;
    PsResource server(eq, "srv", 1.0, 1);
    Rng rng(777);
    stats::Summary sojourns;
    const double horizon = 60000.0;
    const double warmup = 2000.0;

    std::function<void()> arrive = [&] {
        double now = eq.now();
        if (now >= horizon)
            return;
        bool measured = now >= warmup;
        double t0 = now;
        server.submit(rng.exponential(1.0 / mu),
                      [&, t0, measured] {
                          if (measured)
                              sojourns.add(eq.now() - t0);
                      });
        eq.scheduleAfter(rng.exponential(1.0 / lambda), arrive);
    };
    eq.scheduleAfter(rng.exponential(1.0 / lambda), arrive);
    eq.runAll();

    double expected = mm1PsMeanSojourn(lambda, mu);
    ASSERT_GT(sojourns.count(), 10000u);
    EXPECT_NEAR(sojourns.mean(), expected, 0.08 * expected)
        << "rho = " << rho;
}

INSTANTIATE_TEST_SUITE_P(Loads, PsAgainstMm1,
                         ::testing::Values(0.3, 0.5, 0.7));

/**
 * DES validation: the FIFO resource with deterministic service fed by
 * Poisson arrivals is M/D/1.
 */
class FifoAgainstMd1 : public ::testing::TestWithParam<double>
{};

TEST_P(FifoAgainstMd1, MeanWaitMatchesPollaczekKhinchine)
{
    double rho = GetParam();
    double mu = 2.0; // deterministic service 0.5 s
    double lambda = rho * mu;
    EventQueue eq;
    FifoResource server(eq, "disk", 1);
    Rng rng(888);
    stats::Summary waits;
    const double horizon = 40000.0;
    const double warmup = 1000.0;

    std::function<void()> arrive = [&] {
        double now = eq.now();
        if (now >= horizon)
            return;
        bool measured = now >= warmup;
        double t0 = now;
        server.submit(1.0 / mu, [&, t0, measured] {
            if (measured)
                waits.add(eq.now() - t0 - 1.0 / mu);
        });
        eq.scheduleAfter(rng.exponential(1.0 / lambda), arrive);
    };
    eq.scheduleAfter(rng.exponential(1.0 / lambda), arrive);
    eq.runAll();

    double expected = md1MeanWait(lambda, mu);
    ASSERT_GT(waits.count(), 10000u);
    EXPECT_NEAR(waits.mean(), expected,
                0.10 * expected + 0.002)
        << "rho = " << rho;
}

INSTANTIATE_TEST_SUITE_P(Loads, FifoAgainstMd1,
                         ::testing::Values(0.3, 0.5, 0.7, 0.85));

/**
 * DES validation: PS with c slots at per-slot rate mu, fed below
 * per-slot saturation, leaves jobs unaffected by each other until
 * more than c are present; mean sojourn sits between 1/mu (no
 * interference) and the M/M/c value (FIFO pooling differs from PS,
 * but both bound the regime).
 */
TEST(PsMultiSlot, SojournBracketedAtModerateLoad)
{
    EventQueue eq;
    PsResource server(eq, "cpu", 4.0, 4); // 4 slots, mu = 1 each
    Rng rng(999);
    stats::Summary sojourns;
    double lambda = 2.0; // rho = 0.5
    const double horizon = 30000.0;

    std::function<void()> arrive = [&] {
        double now = eq.now();
        if (now >= horizon)
            return;
        double t0 = now;
        server.submit(rng.exponential(1.0),
                      [&, t0] { sojourns.add(eq.now() - t0); });
        eq.scheduleAfter(rng.exponential(1.0 / lambda), arrive);
    };
    eq.scheduleAfter(rng.exponential(1.0 / lambda), arrive);
    eq.runAll();

    double lower = 1.0; // pure service, no sharing
    double upper = 1.8 * mmcMeanSojourn(lambda, 1.0, 4);
    EXPECT_GT(sojourns.mean(), lower * 0.98);
    EXPECT_LT(sojourns.mean(), upper);
}

} // namespace
