/**
 * @file
 * Unit tests for the two-level inclusive/exclusive hierarchy and its
 * sequential prefetch buffer: containment invariants, back-
 * invalidation, promotion/demotion, and the exclusive-equals-big-LRU
 * equivalence that pins the paper's DMA-swap semantics.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "memblade/hierarchy.hh"
#include "memblade/trace_io.hh"
#include "memblade/trace_stream.hh"
#include "util/logging.hh"

namespace {

using namespace wsc;
using namespace wsc::memblade;

HierarchyParams
params(std::size_t l1, std::size_t l2, HierarchyMode mode,
       std::size_t depth = 0)
{
    HierarchyParams p;
    p.l1Frames = l1;
    p.l2Frames = l2;
    p.mode = mode;
    p.prefetchDepth = depth;
    return p;
}

std::vector<PageId>
sampleTrace(std::uint64_t n = 20000)
{
    auto profile = profileFor(workloads::Benchmark::Webmail);
    return generateTrace(profile, n, Rng(42));
}

TEST(Hierarchy, RejectsInvalidParams)
{
    EXPECT_THROW(TwoLevelHierarchy(
                     params(0, 8, HierarchyMode::Exclusive)),
                 FatalError);
    EXPECT_THROW(TwoLevelHierarchy(
                     params(8, 0, HierarchyMode::Exclusive)),
                 FatalError);
    // Inclusive needs L1 to fit inside L2.
    EXPECT_THROW(TwoLevelHierarchy(
                     params(16, 8, HierarchyMode::Inclusive)),
                 FatalError);
    // The same shape is fine exclusively (capacities add).
    EXPECT_NO_THROW(TwoLevelHierarchy(
        params(16, 8, HierarchyMode::Exclusive)));
}

TEST(Hierarchy, ModeNamesRoundTrip)
{
    for (auto mode :
         {HierarchyMode::Inclusive, HierarchyMode::Exclusive})
        EXPECT_EQ(hierarchyModeFromString(to_string(mode)), mode);
    EXPECT_THROW(hierarchyModeFromString("victim"), FatalError);
}

TEST(Hierarchy, InclusiveBackInvalidatesL1OnL2Eviction)
{
    TwoLevelHierarchy h(params(2, 2, HierarchyMode::Inclusive));
    h.access(1);
    h.access(2);
    EXPECT_TRUE(h.inL1(1));
    EXPECT_TRUE(h.inL2(1));
    // Page 3 evicts L2's LRU (page 1), which must leave L1 too.
    h.access(3);
    EXPECT_FALSE(h.inL2(1));
    EXPECT_FALSE(h.inL1(1));
    EXPECT_TRUE(h.inL1(3));
    EXPECT_TRUE(h.inL2(3));
    h.checkInvariants();
    EXPECT_EQ(h.stats().misses, 3u);
}

TEST(Hierarchy, ExclusivePromotesAndDemotes)
{
    TwoLevelHierarchy h(params(1, 2, HierarchyMode::Exclusive));
    h.access(1); // fill L1
    EXPECT_TRUE(h.inL1(1));
    EXPECT_FALSE(h.inL2(1));
    h.access(2); // 1 demotes to L2
    EXPECT_TRUE(h.inL1(2));
    EXPECT_TRUE(h.inL2(1));
    EXPECT_FALSE(h.inL2(2));
    h.access(1); // L2 hit: promote 1, demote 2
    EXPECT_EQ(h.stats().l2Hits, 1u);
    EXPECT_TRUE(h.inL1(1));
    EXPECT_FALSE(h.inL2(1));
    EXPECT_TRUE(h.inL2(2));
    h.checkInvariants();
}

TEST(Hierarchy, InvariantsHoldAcrossWorkloadReplays)
{
    auto trace = sampleTrace();
    for (auto mode :
         {HierarchyMode::Inclusive, HierarchyMode::Exclusive}) {
        for (std::size_t depth : {std::size_t(0), std::size_t(4)}) {
            TwoLevelHierarchy h(params(200, 800, mode, depth));
            for (PageId p : trace)
                h.access(p);
            h.checkInvariants();
            const auto &st = h.stats();
            EXPECT_EQ(st.accesses, trace.size());
            EXPECT_EQ(st.l1Hits + st.l2Hits + st.prefetchHits +
                          st.misses,
                      st.accesses)
                << to_string(mode) << " depth " << depth;
        }
    }
}

// An exclusive two-level LRU hierarchy with promote-on-hit and
// demote-on-evict is exactly one big LRU of l1 + l2 frames: the two
// recency lists concatenate into a single global recency order. This
// is the paper's DMA-swap setup, and it pins the hierarchy against
// the flat replay kernels.
TEST(Hierarchy, ExclusiveEqualsSingleLruOfCombinedCapacity)
{
    auto profile = profileFor(workloads::Benchmark::Ytube);
    auto trace = generateTrace(profile, 40000, Rng(7));
    const std::size_t l1 = 300, l2 = 1200;

    auto hs = replayHierarchyPages(
        trace.data(), trace.size(),
        params(l1, l2, HierarchyMode::Exclusive));
    auto flat = replayPages(trace.data(), trace.size(),
                            PolicyKind::Lru, l1 + l2,
                            profile.footprintPages, Rng(4));
    EXPECT_EQ(hs.misses, flat.misses);
    EXPECT_EQ(hs.l1Hits + hs.l2Hits, flat.hits);
}

// Inclusive duplicates L1 inside L2, so at equal frame counts it can
// never beat exclusive (which adds capacities) on misses.
TEST(Hierarchy, InclusiveNeverBeatsExclusiveAtEqualFrames)
{
    auto trace = sampleTrace(40000);
    auto inc = replayHierarchyPages(
        trace.data(), trace.size(),
        params(200, 800, HierarchyMode::Inclusive));
    auto exc = replayHierarchyPages(
        trace.data(), trace.size(),
        params(200, 800, HierarchyMode::Exclusive));
    EXPECT_GE(inc.misses, exc.misses);
}

TEST(Hierarchy, PrefetchBufferServesSequentialStreams)
{
    TwoLevelHierarchy h(params(8, 32, HierarchyMode::Exclusive, 4));
    h.access(100); // miss; prefetches 101..104
    EXPECT_TRUE(h.inPrefetch(101));
    EXPECT_TRUE(h.inPrefetch(104));
    for (PageId p = 101; p <= 120; ++p)
        h.access(p); // buffer hits keep the stream ramped
    const auto &st = h.stats();
    EXPECT_EQ(st.misses, 1u);
    EXPECT_EQ(st.prefetchHits, 20u);
    h.checkInvariants();

    // A random-ish workload must not be hurt into incorrectness:
    // invariants hold and prefetch frames default to 4 * depth.
    EXPECT_EQ(h.params().prefetchFrames, 16u);
}

TEST(Hierarchy, PrefetchBufferStaysDisjointFromLevels)
{
    TwoLevelHierarchy h(params(4, 8, HierarchyMode::Inclusive, 2));
    // Touch pages so prefetch candidates overlap resident pages.
    for (PageId p : {PageId(1), PageId(2), PageId(3), PageId(1),
                     PageId(4), PageId(2), PageId(5)})
        h.access(p);
    h.checkInvariants();
    for (PageId p = 0; p < 16; ++p)
        EXPECT_FALSE(h.inPrefetch(p) && (h.inL1(p) || h.inL2(p)))
            << p;
}

TEST(Hierarchy, StreamReplayMatchesPagesReplay)
{
    const char *path = "/tmp/wsc_hier.strace";
    auto trace = sampleTrace(30000);
    writeTraceStream(path, trace);

    for (auto mode :
         {HierarchyMode::Inclusive, HierarchyMode::Exclusive}) {
        auto p = params(150, 600, mode, 4);
        auto fromPages =
            replayHierarchyPages(trace.data(), trace.size(), p);
        TraceStream ts(path);
        auto fromStream = replayHierarchyStream(ts, p);
        EXPECT_EQ(fromStream.accesses, fromPages.accesses);
        EXPECT_EQ(fromStream.l1Hits, fromPages.l1Hits);
        EXPECT_EQ(fromStream.l2Hits, fromPages.l2Hits);
        EXPECT_EQ(fromStream.prefetchHits, fromPages.prefetchHits);
        EXPECT_EQ(fromStream.misses, fromPages.misses);
    }
    std::remove(path);
}

TEST(Hierarchy, ProfileReplayIsDeterministic)
{
    auto profile = profileFor(workloads::Benchmark::MapredWc);
    auto p = params(100, 400, HierarchyMode::Exclusive, 2);
    auto a = replayHierarchyProfile(profile, p, 25000, 11);
    auto b = replayHierarchyProfile(profile, p, 25000, 11);
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.l1Hits, b.l1Hits);
    EXPECT_EQ(a.l2Hits, b.l2Hits);
    EXPECT_EQ(a.prefetchHits, b.prefetchHits);
    EXPECT_EQ(a.misses, b.misses);
    auto c = replayHierarchyProfile(profile, p, 25000, 12);
    EXPECT_TRUE(a.misses != c.misses || a.l1Hits != c.l1Hits ||
                a.prefetchHits != c.prefetchHits)
        << "different seeds produced identical stats";
}

} // namespace
