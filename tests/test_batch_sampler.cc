/**
 * @file
 * Tests for the batched guide-table sampler and the fast-mode demand
 * path built on it: bit-identity of the Rng-fed batch against scalar
 * draws, same-law behavior of the SplitMix64-fed batch, and per-seed
 * determinism of fast-mode closed-loop runs.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "perfsim/closed_loop.hh"
#include "perfsim/perf_eval.hh"
#include "platform/catalog.hh"
#include "sim/batch_sampler.hh"
#include "sim/distributions.hh"
#include "stats/equivalence.hh"
#include "workloads/websearch.hh"
#include "workloads/ytube.hh"

namespace {

using namespace wsc;
using namespace wsc::sim;

TEST(SampleBatcher, ZipfMatchesScalarBitForBit)
{
    ZipfDist dist(50000, 0.9);
    // Sizes straddling the block boundary: partial, exact, multiple,
    // multiple-plus-remainder.
    for (std::size_t n : {std::size_t(7), std::size_t(256),
                          std::size_t(512), std::size_t(1000)}) {
        Rng scalarRng(77), batchRng(77);
        std::vector<std::uint64_t> scalar(n), batched(n);
        for (std::size_t i = 0; i < n; ++i)
            scalar[i] = dist.sampleRank(scalarRng);
        SampleBatcher batcher;
        batcher.drawZipfRanks(dist, batchRng, batched.data(), n);
        EXPECT_EQ(scalar, batched) << "n=" << n;
    }
}

TEST(SampleBatcher, EmpiricalMatchesScalarBitForBit)
{
    EmpiricalDist dist({1.0, 2.0, 3.0, 4.0, 5.0},
                       {0.28, 0.36, 0.22, 0.10, 0.04});
    Rng scalarRng(88), batchRng(88);
    constexpr std::size_t n = 777;
    std::vector<std::uint32_t> scalar(n), batched(n);
    for (std::size_t i = 0; i < n; ++i)
        scalar[i] = std::uint32_t(dist.sampleIndex(scalarRng));
    SampleBatcher batcher;
    batcher.drawEmpiricalIndices(dist, batchRng, batched.data(), n);
    EXPECT_EQ(scalar, batched);
}

TEST(SampleBatcher, SmallBlockStillIdentical)
{
    // A block far smaller than n exercises the refill loop.
    ZipfDist dist(10000, 1.0);
    Rng scalarRng(99), batchRng(99);
    constexpr std::size_t n = 500;
    std::vector<std::uint64_t> scalar(n), batched(n);
    for (std::size_t i = 0; i < n; ++i)
        scalar[i] = dist.sampleRank(scalarRng);
    SampleBatcher batcher(16);
    EXPECT_EQ(batcher.blockSize(), 16u);
    batcher.drawZipfRanks(dist, batchRng, batched.data(), n);
    EXPECT_EQ(scalar, batched);
}

TEST(SplitMix64Engine, DeterministicPerSeed)
{
    SplitMix64 a(123), b(123), c(124);
    bool anyDiff = false;
    for (int i = 0; i < 100; ++i) {
        double ua = a.uniform();
        EXPECT_EQ(ua, b.uniform());
        EXPECT_GE(ua, 0.0);
        EXPECT_LT(ua, 1.0);
        anyDiff = anyDiff || ua != c.uniform();
    }
    EXPECT_TRUE(anyDiff);
}

TEST(SplitMix64Engine, BatchedDrawsAreSameLawAsScalar)
{
    // The fast-mode configuration: same guide-table resolution over
    // SplitMix64 uniforms. Not bit-comparable with the Rng path, so
    // the check is distributional (two-sample KS).
    ZipfDist dist(20000, 0.9);
    constexpr std::size_t n = 30000;
    Rng scalarRng(55);
    std::vector<double> scalar;
    scalar.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        scalar.push_back(double(dist.sampleRank(scalarRng)));

    SplitMix64 fast(Rng(55).stream("uniforms").seed());
    std::vector<std::uint64_t> ranks(n);
    SampleBatcher batcher;
    batcher.drawZipfRanks(dist, fast, ranks.data(), n);
    std::vector<double> batched;
    batched.reserve(n);
    for (auto r : ranks)
        batched.push_back(double(r));

    EXPECT_TRUE(stats::ksTwoSample(scalar, batched).passes(1e-3));
}

TEST(BatchStreamTest, SameParentSeedSameDemands)
{
    workloads::Websearch ws;
    constexpr std::size_t n = 600;
    std::vector<workloads::ServiceDemand> a(n), b(n);
    workloads::BatchStream sa{Rng(42)}, sb{Rng(42)};
    ws.nextRequestBatch(sa, a.data(), n);
    ws.nextRequestBatch(sb, b.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(a[i].cpuWork, b[i].cpuWork);
        EXPECT_EQ(a[i].diskReadBytes, b[i].diskReadBytes);
        EXPECT_EQ(a[i].netBytes, b[i].netBytes);
    }
}

TEST(BatchStreamTest, DifferentSeedsDecorrelated)
{
    workloads::Ytube yt;
    constexpr std::size_t n = 100;
    std::vector<workloads::ServiceDemand> a(n), b(n);
    workloads::BatchStream sa{Rng(42)}, sb{Rng(43)};
    yt.nextRequestBatch(sa, a.data(), n);
    yt.nextRequestBatch(sb, b.data(), n);
    bool anyDiff = false;
    for (std::size_t i = 0; i < n; ++i)
        anyDiff = anyDiff || a[i].cpuWork != b[i].cpuWork;
    EXPECT_TRUE(anyDiff);
}

perfsim::StationConfig
websearchOnSrvr2(workloads::Websearch &ws)
{
    perfsim::PerfEvaluator ev;
    return ev.stationsFor(platform::makeSystem(
                              platform::SystemClass::Srvr2),
                          ws.traits(), {});
}

perfsim::ClosedLoopParams
shortRunParams(bool fast)
{
    perfsim::ClosedLoopParams p;
    p.epochSeconds = 5.0;
    p.epochs = 6;
    p.collectLatencySamples = true;
    p.fastMode.enabled = fast;
    return p;
}

TEST(FastModeClosedLoop, DeterministicPerSeed)
{
    // The fast-mode contract keeps per-seed determinism: the same
    // seed must reproduce the run bit for bit even though the draws
    // differ from exact mode's.
    workloads::Websearch ws;
    auto st = websearchOnSrvr2(ws);
    Rng r1(2026), r2(2026);
    auto a = perfsim::runClosedLoop(ws, st, shortRunParams(true), r1);
    auto b = perfsim::runClosedLoop(ws, st, shortRunParams(true), r2);
    EXPECT_EQ(a.sustainedRps, b.sustainedRps);
    EXPECT_EQ(a.p95AtBest, b.p95AtBest);
    EXPECT_EQ(a.clientsAtBest, b.clientsAtBest);
    ASSERT_EQ(a.latencySamples.size(), b.latencySamples.size());
    for (std::size_t i = 0; i < a.latencySamples.size(); ++i)
        ASSERT_EQ(a.latencySamples[i], b.latencySamples[i]);
}

TEST(FastModeClosedLoop, DiffersFromExactButStaysClose)
{
    // Fast mode is a declared relaxation: the same seed must NOT
    // reproduce the exact-mode bits (if it did, the mode switch would
    // be dead code), while the headline metric stays within a loose
    // sanity band of the exact result (the tight comparison is the
    // statistical gate in bench_closed_loop).
    workloads::Websearch ws;
    auto st = websearchOnSrvr2(ws);
    Rng re(2027), rf(2027);
    auto exact = perfsim::runClosedLoop(ws, st, shortRunParams(false),
                                        re);
    auto fast = perfsim::runClosedLoop(ws, st, shortRunParams(true),
                                       rf);
    EXPECT_NE(exact.latencySamples, fast.latencySamples);
    EXPECT_GT(fast.sustainedRps, 0.5 * exact.sustainedRps);
    EXPECT_LT(fast.sustainedRps, 2.0 * exact.sustainedRps);
}

} // namespace
