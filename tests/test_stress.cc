/**
 * @file
 * Randomized stress tests validating the optimized kernels against
 * brute-force reference implementations.
 *
 *  - PsResource (virtual-time heap, O(log n)) vs an O(n^2) explicit
 *    fluid simulation of processor sharing.
 *  - LruPolicy (list + hash) vs a naive vector-scan LRU.
 *  - EventQueue under random schedule/cancel interleavings.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>
#include <vector>

#include "memblade/replacement.hh"
#include "sim/event_queue.hh"
#include "sim/resources.hh"
#include "util/random.hh"

namespace {

using namespace wsc;
using namespace wsc::sim;

/**
 * Reference processor-sharing fluid simulation: advances job remaining
 * work in closed form between arrival events, O(jobs^2) overall.
 */
std::vector<double>
referencePsCompletionTimes(const std::vector<std::pair<double, double>>
                               &arrivals, // (time, work)
                           double capacity, unsigned slots)
{
    struct Job {
        double remaining;
        std::size_t index;
    };
    std::vector<double> completion(arrivals.size(), -1.0);
    std::vector<Job> active;
    double now = 0.0;
    std::size_t next = 0;

    auto rate = [&](std::size_t n) {
        if (n == 0)
            return 0.0;
        return (capacity / double(slots)) *
               std::min(1.0, double(slots) / double(n));
    };

    while (next < arrivals.size() || !active.empty()) {
        // Next arrival time (or infinity).
        double t_arrival = next < arrivals.size()
                               ? arrivals[next].first
                               : std::numeric_limits<double>::infinity();
        // Next completion among the active set at the current rate.
        double r = rate(active.size());
        double t_completion =
            std::numeric_limits<double>::infinity();
        if (!active.empty()) {
            double min_rem = active.front().remaining;
            for (const auto &j : active)
                min_rem = std::min(min_rem, j.remaining);
            t_completion = now + min_rem / r;
        }
        if (t_arrival <= t_completion) {
            // Advance fluid to the arrival, then admit it.
            double dt = t_arrival - now;
            for (auto &j : active)
                j.remaining -= r * dt;
            now = t_arrival;
            active.push_back(Job{arrivals[next].second, next});
            ++next;
        } else {
            double dt = t_completion - now;
            for (auto &j : active)
                j.remaining -= r * dt;
            now = t_completion;
            // Retire everything at (numerically) zero.
            for (auto it = active.begin(); it != active.end();) {
                if (it->remaining <= 1e-9) {
                    completion[it->index] = now;
                    it = active.erase(it);
                } else {
                    ++it;
                }
            }
        }
    }
    return completion;
}

class PsAgainstReference
    : public ::testing::TestWithParam<std::tuple<unsigned, int>>
{};

TEST_P(PsAgainstReference, CompletionTimesMatchFluidModel)
{
    auto [slots, seed] = GetParam();
    Rng rng{std::uint64_t(seed)};
    const int jobs = 200;
    std::vector<std::pair<double, double>> arrivals;
    double t = 0.0;
    for (int i = 0; i < jobs; ++i) {
        t += rng.exponential(0.05);
        arrivals.emplace_back(t, rng.uniform(0.01, 0.5));
    }

    auto expected =
        referencePsCompletionTimes(arrivals, 2.0, slots);

    EventQueue eq;
    PsResource cpu(eq, "cpu", 2.0, slots);
    std::vector<double> actual(arrivals.size(), -1.0);
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
        eq.schedule(arrivals[i].first, [&, i] {
            cpu.submit(arrivals[i].second,
                       [&, i] { actual[i] = eq.now(); });
        });
    }
    eq.runAll();

    for (std::size_t i = 0; i < arrivals.size(); ++i) {
        ASSERT_GE(actual[i], 0.0) << "job " << i << " never completed";
        EXPECT_NEAR(actual[i], expected[i],
                    1e-6 * std::max(1.0, expected[i]))
            << "job " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    SlotsAndSeeds, PsAgainstReference,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Values(1, 2, 3)));

/** Naive reference LRU: vector ordered by recency, linear scans. */
class ReferenceLru
{
  public:
    explicit ReferenceLru(std::size_t frames) : frames(frames) {}

    bool
    access(memblade::PageId page)
    {
        auto it = std::find(order.begin(), order.end(), page);
        if (it != order.end()) {
            order.erase(it);
            order.insert(order.begin(), page);
            return true;
        }
        if (order.size() >= frames)
            order.pop_back();
        order.insert(order.begin(), page);
        return false;
    }

  private:
    std::size_t frames;
    std::vector<memblade::PageId> order;
};

class LruAgainstReference : public ::testing::TestWithParam<int>
{};

TEST_P(LruAgainstReference, HitMissSequencesIdentical)
{
    Rng rng{std::uint64_t(GetParam())};
    const std::size_t frames = 32;
    memblade::LruPolicy fast(frames);
    ReferenceLru slow(frames);
    for (int i = 0; i < 20000; ++i) {
        // Skewed page ids so hits and misses interleave.
        memblade::PageId page =
            rng.bernoulli(0.7) ? rng.uniformInt(0, 40)
                               : rng.uniformInt(0, 2000);
        ASSERT_EQ(fast.access(page), slow.access(page))
            << "diverged at access " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LruAgainstReference,
                         ::testing::Values(11, 22, 33, 44));

TEST(EventQueueFuzz, RandomScheduleCancelKeepsOrdering)
{
    Rng rng(99);
    EventQueue eq;
    std::vector<double> fired;
    std::vector<EventId> live;
    double horizon = 0.0;
    for (int i = 0; i < 5000; ++i) {
        double when = eq.now() + rng.uniform(0.0, 10.0);
        horizon = std::max(horizon, when);
        live.push_back(eq.schedule(
            when, [&fired, &eq] { fired.push_back(eq.now()); }));
        // Randomly cancel an old event or step the queue.
        if (rng.bernoulli(0.3) && !live.empty()) {
            auto idx = rng.uniformInt(0, live.size() - 1);
            eq.cancel(live[idx]);
        }
        if (rng.bernoulli(0.5))
            eq.step();
    }
    eq.runAll();
    // Every fired timestamp must be non-decreasing.
    for (std::size_t i = 1; i < fired.size(); ++i)
        ASSERT_LE(fired[i - 1], fired[i]) << "at event " << i;
    EXPECT_TRUE(eq.empty());
    // The clock never runs past the latest scheduled event.
    EXPECT_LE(eq.now(), horizon);
}

TEST(EventQueueFuzz, CancelledNeverFire)
{
    Rng rng(7);
    EventQueue eq;
    int fired_cancelled = 0;
    for (int round = 0; round < 200; ++round) {
        std::vector<EventId> ids;
        for (int i = 0; i < 20; ++i) {
            bool will_cancel = rng.bernoulli(0.5);
            auto id = eq.schedule(
                eq.now() + rng.uniform(0.0, 5.0), [&, will_cancel] {
                    if (will_cancel)
                        ++fired_cancelled;
                });
            if (will_cancel)
                ids.push_back(id);
        }
        for (auto id : ids)
            EXPECT_TRUE(eq.cancel(id));
        eq.runAll();
    }
    EXPECT_EQ(fired_cancelled, 0);
}

TEST(FifoFuzz, ConservationAndOrdering)
{
    Rng rng(123);
    EventQueue eq;
    FifoResource disk(eq, "disk", 3);
    int completed = 0;
    const int total = 3000;
    std::vector<double> completion_of_submission;
    for (int i = 0; i < total; ++i) {
        eq.schedule(rng.uniform(0.0, 100.0), [&] {
            disk.submit(rng.uniform(0.001, 0.05),
                        [&] { ++completed; });
        });
    }
    eq.runAll();
    EXPECT_EQ(completed, total);
    EXPECT_EQ(disk.completed(), std::uint64_t(total));
    EXPECT_EQ(disk.queued(), 0u);
    EXPECT_EQ(disk.inService(), 0u);
    EXPECT_GE(disk.utilization(), 0.0);
    EXPECT_LE(disk.utilization(), 1.0);
}

} // namespace
