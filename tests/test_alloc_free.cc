/**
 * @file
 * Steady-state allocation accounting for the pooled closed-loop
 * driver: once the arenas, slot pools, and sample reservoirs are warm,
 * extra epochs of request traffic must perform zero heap allocations.
 *
 * The test instruments global operator new and diffs whole runs that
 * differ only in epoch count: the longer run's extra epochs are pure
 * steady state, so any per-request allocation shows up as a nonzero
 * delta multiplied by thousands of requests.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>

#include "perfsim/closed_loop.hh"
#include "perfsim/perf_eval.hh"
#include "platform/catalog.hh"
#include "workloads/ytube.hh"

namespace {
std::uint64_t g_allocations = 0;

void *
countedAlloc(std::size_t n)
{
    ++g_allocations;
    void *p = std::malloc(n ? n : 1);
    if (!p)
        throw std::bad_alloc();
    return p;
}
} // namespace

void *operator new(std::size_t n) { return countedAlloc(n); }
void *operator new[](std::size_t n) { return countedAlloc(n); }
void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace wsc;
using namespace wsc::perfsim;

ClosedLoopParams
fixedPopulation(unsigned epochs)
{
    // A fixed population (maxClients == initialClients) keeps the
    // adaptation loop from resizing anything between epochs, so every
    // epoch past the first is steady state.
    ClosedLoopParams p;
    p.initialClients = 8;
    p.maxClients = 8;
    p.epochs = epochs;
    p.epochSeconds = 8.0;
    return p;
}

std::uint64_t
allocationsDuringRun(workloads::InteractiveWorkload &wl,
                     const StationConfig &st,
                     const ClosedLoopParams &params, std::uint64_t seed)
{
    Rng rng(seed);
    std::uint64_t before = g_allocations;
    auto r = runClosedLoop(wl, st, params, rng);
    std::uint64_t delta = g_allocations - before;
    EXPECT_GT(r.sustainedRps, 0.0);
    return delta;
}

TEST(AllocFree, ClassicSteadyStateEpochsAllocateNothing)
{
    PerfEvaluator ev;
    workloads::Ytube yt;
    auto st = ev.stationsFor(
        platform::makeSystem(platform::SystemClass::Srvr2), yt.traits(),
        {});

    auto shortRun = allocationsDuringRun(yt, st, fixedPopulation(4), 51);
    auto longRun = allocationsDuringRun(yt, st, fixedPopulation(12), 51);
    // Both runs are identical through epoch 4; the 8 extra epochs
    // complete thousands more requests. One allocation per request
    // would put the delta in the thousands.
    EXPECT_EQ(longRun, shortRun)
        << "steady-state epochs allocated " << (longRun - shortRun)
        << " times";
}

TEST(AllocFree, TimeoutProtocolSteadyStateEpochsAllocateNothing)
{
    PerfEvaluator ev;
    workloads::Ytube yt;
    auto st = ev.stationsFor(
        platform::makeSystem(platform::SystemClass::Srvr2), yt.traits(),
        {});

    auto params4 = fixedPopulation(4);
    params4.requestTimeoutSeconds = 0.05;
    params4.maxRetries = 2;
    params4.retryBackoffSeconds = 0.01;
    auto params12 = params4;
    params12.epochs = 12;

    auto shortRun = allocationsDuringRun(yt, st, params4, 52);
    auto longRun = allocationsDuringRun(yt, st, params12, 52);
    EXPECT_EQ(longRun, shortRun)
        << "steady-state epochs allocated " << (longRun - shortRun)
        << " times";
}

} // namespace
