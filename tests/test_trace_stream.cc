/**
 * @file
 * Unit tests for the streaming trace format (WSCS v1): round trips,
 * header validation against adversarial files, and the equivalence of
 * streaming replay with the materialized replay path.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "memblade/trace_io.hh"
#include "memblade/trace_stream.hh"
#include "util/logging.hh"

namespace {

using namespace wsc;
using namespace wsc::memblade;

/** Temp file that cleans up after itself. */
struct ScopedPath {
    std::string path;
    explicit ScopedPath(std::string p) : path(std::move(p)) {}
    ~ScopedPath() { std::remove(path.c_str()); }
};

std::string
readAll(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(is),
                       std::istreambuf_iterator<char>());
}

void
writeAll(const std::string &path, const std::string &data)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(data.data(), std::streamsize(data.size()));
}

std::vector<PageId>
sampleTrace(std::uint64_t n = 5000)
{
    auto profile = profileFor(workloads::Benchmark::Webmail);
    return generateTrace(profile, n, Rng(42));
}

TEST(TraceStream, RoundTripsEmptySingleAndLarge)
{
    for (std::uint64_t n : {std::uint64_t(0), std::uint64_t(1),
                            std::uint64_t(20000)}) {
        ScopedPath f("/tmp/wsc_ts_rt.strace");
        auto trace = sampleTrace(n);
        writeTraceStream(f.path, trace);
        EXPECT_EQ(readTraceStreamPages(f.path), trace) << n;

        auto info = traceStreamInfo(f.path);
        EXPECT_EQ(info.count, n);
        EXPECT_FALSE(info.hasTimestamps);
        std::uint64_t bound = 0;
        for (PageId p : trace)
            bound = std::max(bound, p + 1);
        EXPECT_EQ(info.pageBound, bound) << n;
    }
}

TEST(TraceStream, WriterCarriesWriteFlagsAndTimestamps)
{
    ScopedPath f("/tmp/wsc_ts_flags.strace");
    {
        TraceStreamWriter w(f.path, /*withTimestamps=*/true);
        w.append(10, false, 100);
        w.append(20, true, 200);
        w.append(30, true, 300);
        EXPECT_EQ(w.count(), 3u);
        w.close();
        w.close(); // idempotent
    }

    auto info = traceStreamStats(f.path);
    EXPECT_EQ(info.count, 3u);
    EXPECT_EQ(info.pageBound, 31u);
    EXPECT_EQ(info.writes, 2u);
    EXPECT_TRUE(info.hasTimestamps);

    TraceStream ts(f.path);
    TraceRecord recs[4];
    ASSERT_EQ(ts.fillRecords(recs, 4), 3u);
    EXPECT_EQ(recs[0].page, 10u);
    EXPECT_FALSE(recs[0].write);
    EXPECT_EQ(recs[0].timestamp, 100u);
    EXPECT_EQ(recs[1].page, 20u);
    EXPECT_TRUE(recs[1].write);
    EXPECT_EQ(recs[1].timestamp, 200u);
    EXPECT_EQ(recs[2].page, 30u);
    EXPECT_EQ(ts.fillRecords(recs, 4), 0u);
}

TEST(TraceStream, WriterRejectsPageIdsAboveFlagBit)
{
    ScopedPath f("/tmp/wsc_ts_big.strace");
    TraceStreamWriter w(f.path);
    EXPECT_THROW(w.append(std::uint64_t(1) << 63), PanicError);
}

TEST(TraceStream, RejectsMissingAndTruncatedHeader)
{
    EXPECT_THROW(TraceStream("/tmp/wsc_ts_nonexistent.strace"),
                 FatalError);

    ScopedPath f("/tmp/wsc_ts_short.strace");
    writeAll(f.path, "WSCS\x01");
    EXPECT_THROW(TraceStream(f.path), FatalError);
}

TEST(TraceStream, RejectsBadMagicVersionAndFlags)
{
    ScopedPath f("/tmp/wsc_ts_hdr.strace");
    writeTraceStream(f.path, sampleTrace(100));
    std::string good = readAll(f.path);

    std::string bad = good;
    bad[0] = 'X';
    writeAll(f.path, bad);
    EXPECT_THROW(TraceStream(f.path), FatalError);

    bad = good;
    bad[4] = 9; // future version
    writeAll(f.path, bad);
    EXPECT_THROW(TraceStream(f.path), FatalError);

    bad = good;
    bad[5] = char(0x80); // unknown flag bit
    writeAll(f.path, bad);
    EXPECT_THROW(TraceStream(f.path), FatalError);
}

TEST(TraceStream, RejectsOversizedOrInconsistentCount)
{
    ScopedPath f("/tmp/wsc_ts_count.strace");
    writeTraceStream(f.path, sampleTrace(100));
    std::string good = readAll(f.path);

    // Claim ~2^61 records in a 100-record file: the reader must fatal
    // on the capacity check, never allocate.
    std::string bad = good;
    std::uint64_t huge = std::uint64_t(1) << 61;
    std::memcpy(&bad[8], &huge, sizeof(huge));
    writeAll(f.path, bad);
    EXPECT_THROW(TraceStream(f.path), FatalError);

    // Undercounting (body larger than count * stride) is corruption
    // too: the reader demands an exact match.
    bad = good;
    std::uint64_t fewer = 99;
    std::memcpy(&bad[8], &fewer, sizeof(fewer));
    writeAll(f.path, bad);
    EXPECT_THROW(TraceStream(f.path), FatalError);

    // Truncated body.
    bad = good.substr(0, good.size() - 4);
    writeAll(f.path, bad);
    EXPECT_THROW(TraceStream(f.path), FatalError);
}

TEST(TraceStream, RejectsRecordsBreakingTheHeaderBound)
{
    ScopedPath f("/tmp/wsc_ts_bound.strace");
    writeTraceStream(f.path, {1, 2, 3, 4});
    std::string bad = readAll(f.path);
    // Patch the page-id bound below the records it governs.
    std::uint64_t bound = 2;
    std::memcpy(&bad[16], &bound, sizeof(bound));
    writeAll(f.path, bad);

    TraceStream ts(f.path); // header itself is consistent
    PageId buf[8];
    EXPECT_THROW(ts.fillPages(buf, 8), FatalError);
}

TEST(TraceStream, RewindRestartsTheRecordStream)
{
    ScopedPath f("/tmp/wsc_ts_rewind.strace");
    auto trace = sampleTrace(3000);
    writeTraceStream(f.path, trace);

    TraceStream ts(f.path);
    std::vector<PageId> first(trace.size());
    std::size_t got = 0;
    while (got < first.size())
        got += ts.fillPages(first.data() + got, 777); // odd batch size
    EXPECT_EQ(ts.remaining(), 0u);

    ts.rewind();
    EXPECT_EQ(ts.remaining(), trace.size());
    std::vector<PageId> second(trace.size());
    got = 0;
    while (got < second.size())
        got += ts.fillPages(second.data() + got, 4096);
    EXPECT_EQ(first, trace);
    EXPECT_EQ(second, trace);
}

TEST(TraceStream, UsesMmapOnThisPlatform)
{
#if defined(__unix__) || defined(__APPLE__)
    ScopedPath f("/tmp/wsc_ts_mmap.strace");
    writeTraceStream(f.path, sampleTrace(100));
    TraceStream ts(f.path);
    EXPECT_TRUE(ts.mapped());
#else
    GTEST_SKIP() << "no mmap on this platform";
#endif
}

// The buffered-ifstream fallback normally runs only where mmap is
// missing or fails; the forceBuffered hook drags it into CI and pins
// it to the mapped path's exact outputs — pages, full records, rewind
// behavior, and replay counters.
TEST(TraceStream, BufferedFallbackMatchesMappedPath)
{
    ScopedPath f("/tmp/wsc_ts_buf.strace");
    auto trace = sampleTrace(30000);
    {
        TraceStreamWriter w(f.path, /*withTimestamps=*/true);
        for (std::size_t i = 0; i < trace.size(); ++i)
            w.append(trace[i], i % 3 == 0, i * 7);
    }

    TraceStream mapped(f.path);
    TraceStream buffered(f.path, /*forceBuffered=*/true);
    ASSERT_TRUE(mapped.mapped());
    ASSERT_FALSE(buffered.mapped());
    EXPECT_EQ(buffered.count(), mapped.count());
    EXPECT_EQ(buffered.pageBound(), mapped.pageBound());
    EXPECT_TRUE(buffered.hasTimestamps());

    // Identical record streams, batch boundaries intentionally
    // misaligned with the reader's internal io batch.
    std::vector<TraceRecord> a(777), b(777);
    for (;;) {
        std::size_t na = mapped.fillRecords(a.data(), a.size());
        std::size_t nb = buffered.fillRecords(b.data(), b.size());
        ASSERT_EQ(na, nb);
        if (na == 0)
            break;
        for (std::size_t i = 0; i < na; ++i) {
            EXPECT_EQ(a[i].page, b[i].page);
            EXPECT_EQ(a[i].write, b[i].write);
            EXPECT_EQ(a[i].timestamp, b[i].timestamp);
        }
    }

    // rewind() resets the fallback's stream position too.
    mapped.rewind();
    buffered.rewind();
    std::vector<PageId> pa(trace.size()), pb(trace.size());
    std::size_t da = 0, db = 0;
    while (da < pa.size())
        da += mapped.fillPages(pa.data() + da, pa.size() - da);
    while (db < pb.size())
        db += buffered.fillPages(pb.data() + db, pb.size() - db);
    EXPECT_EQ(pa, pb);
    EXPECT_EQ(pa, trace);
}

// Stream-vs-pages identity holds through the fallback: replaying via
// forceBuffered produces the same counters as the materialized replay.
TEST(TraceStream, BufferedFallbackReplayMatchesMaterialized)
{
    ScopedPath f("/tmp/wsc_ts_bufreplay.strace");
    auto profile = profileFor(workloads::Benchmark::Webmail);
    auto trace = generateTrace(profile, 40000, Rng(11));
    writeTraceStream(f.path, trace);
    std::uint64_t bound = traceStreamInfo(f.path).pageBound;
    auto frames = std::size_t(double(profile.footprintPages) * 0.25);

    for (PolicyKind kind : allPolicyKinds) {
        TraceStream ts(f.path, /*forceBuffered=*/true);
        auto streamed = replayStream(ts, kind, frames, Rng(4));
        auto materialized = replayPages(trace.data(), trace.size(),
                                        kind, frames, bound, Rng(4));
        EXPECT_EQ(streamed.accesses, materialized.accesses)
            << to_string(kind);
        EXPECT_EQ(streamed.hits, materialized.hits)
            << to_string(kind);
        EXPECT_EQ(streamed.misses, materialized.misses)
            << to_string(kind);
        EXPECT_EQ(streamed.coldMisses, materialized.coldMisses)
            << to_string(kind);
    }
}

TEST(TraceStream, ReplayStreamMatchesMaterializedReplay)
{
    ScopedPath f("/tmp/wsc_ts_replay.strace");
    auto profile = profileFor(workloads::Benchmark::Ytube);
    auto trace = generateTrace(profile, 60000, Rng(9));
    writeTraceStream(f.path, trace);
    std::uint64_t bound = traceStreamInfo(f.path).pageBound;
    auto frames =
        std::size_t(double(profile.footprintPages) * 0.25);

    for (PolicyKind kind : allPolicyKinds) {
        TraceStream ts(f.path);
        auto streamed = replayStream(ts, kind, frames, Rng(4));
        auto materialized = replayPages(trace.data(), trace.size(),
                                        kind, frames, bound, Rng(4));
        EXPECT_EQ(streamed.accesses, materialized.accesses)
            << to_string(kind);
        EXPECT_EQ(streamed.hits, materialized.hits)
            << to_string(kind);
        EXPECT_EQ(streamed.misses, materialized.misses)
            << to_string(kind);
        EXPECT_EQ(streamed.coldMisses, materialized.coldMisses)
            << to_string(kind);
    }
}

TEST(TraceStream, WindowedStreamReplaySplitsAtTheWarmupBoundary)
{
    ScopedPath f("/tmp/wsc_ts_warm.strace");
    auto trace = sampleTrace(20000);
    writeTraceStream(f.path, trace);

    TraceStream whole(f.path);
    auto total = replayStream(whole, PolicyKind::Lru, 500, Rng(4));

    TraceStream ts(f.path);
    auto win =
        replayStreamWindowed(ts, PolicyKind::Lru, 500, 5000, Rng(4));
    EXPECT_EQ(win.total.accesses, total.accesses);
    EXPECT_EQ(win.total.hits, total.hits);
    EXPECT_EQ(win.total.misses, total.misses);
    EXPECT_EQ(win.measured.accesses, trace.size() - 5000);
    EXPECT_LE(win.measured.hits, win.total.hits);
    EXPECT_LE(win.measured.misses, win.total.misses);
}

TEST(TraceStream, LruCurveMatchesDirectReplays)
{
    ScopedPath f("/tmp/wsc_ts_curve.strace");
    auto profile = profileFor(workloads::Benchmark::Websearch);
    auto trace = generateTrace(profile, 30000, Rng(6));
    writeTraceStream(f.path, trace);
    std::uint64_t bound = traceStreamInfo(f.path).pageBound;

    TraceStream ts(f.path);
    auto curve = lruCurveFromStream(ts);
    for (double f10 : {0.01, 0.1, 0.5}) {
        auto frames = std::size_t(
            std::max(1.0, double(profile.footprintPages) * f10));
        auto direct = replayPages(trace.data(), trace.size(),
                                  PolicyKind::Lru, frames, bound,
                                  Rng(4));
        auto fromCurve = curve.statsAt(frames);
        EXPECT_EQ(fromCurve.hits, direct.hits) << frames;
        EXPECT_EQ(fromCurve.misses, direct.misses) << frames;
        EXPECT_EQ(fromCurve.coldMisses, direct.coldMisses) << frames;
    }
}

TEST(TraceStream, LoadSaveTraceDispatchOnStraceExtension)
{
    ScopedPath f("/tmp/wsc_ts_dispatch.strace");
    auto trace = sampleTrace(500);
    saveTrace(f.path, trace);
    EXPECT_EQ(loadTrace(f.path), trace);
    EXPECT_EQ(traceStreamInfo(f.path).count, trace.size());
}

} // namespace
