/**
 * @file
 * Unit tests for workload mixes and best-design selection.
 */

#include <gtest/gtest.h>

#include "core/mix.hh"
#include "util/logging.hh"

namespace {

using namespace wsc;
using namespace wsc::core;
using workloads::Benchmark;

EvaluatorParams
fastParams()
{
    EvaluatorParams p;
    p.search.iterations = 5;
    p.search.window.warmupSeconds = 2.0;
    p.search.window.measureSeconds = 10.0;
    return p;
}

TEST(Mix, WeightsNormalized)
{
    WorkloadMix mix({{Benchmark::Websearch, 3.0},
                     {Benchmark::Webmail, 1.0}});
    EXPECT_DOUBLE_EQ(mix.weight(Benchmark::Websearch), 0.75);
    EXPECT_DOUBLE_EQ(mix.weight(Benchmark::Webmail), 0.25);
    EXPECT_DOUBLE_EQ(mix.weight(Benchmark::Ytube), 0.0);
    EXPECT_EQ(mix.active().size(), 2u);
}

TEST(Mix, InvalidWeightsPanic)
{
    EXPECT_THROW(WorkloadMix({{Benchmark::Ytube, -1.0}}), PanicError);
    EXPECT_THROW(WorkloadMix({{Benchmark::Ytube, 0.0}}), PanicError);
    EXPECT_THROW(WorkloadMix({}), PanicError);
}

TEST(Mix, PresetsSumToOne)
{
    for (const auto &mix :
         {WorkloadMix::uniform(), WorkloadMix::searchHeavy(),
          WorkloadMix::mailHeavy(), WorkloadMix::mediaHeavy(),
          WorkloadMix::batchHeavy()}) {
        double total = 0.0;
        for (auto b : workloads::allBenchmarks)
            total += mix.weight(b);
        EXPECT_NEAR(total, 1.0, 1e-12);
    }
    EXPECT_DOUBLE_EQ(WorkloadMix::mailHeavy().weight(Benchmark::Webmail),
                     0.6);
}

TEST(Mix, UniformMatchesAggregateRelative)
{
    DesignEvaluator ev(fastParams());
    auto s1 = DesignConfig::baseline(platform::SystemClass::Srvr1);
    auto desk = DesignConfig::baseline(platform::SystemClass::Desk);
    auto via_mix =
        mixRelative(ev, desk, s1, WorkloadMix::uniform());
    auto via_agg = ev.aggregateRelative(desk, s1);
    // Same evaluator -> cached per-benchmark results -> identical.
    EXPECT_NEAR(via_mix.perf, via_agg.perf, 1e-9);
    EXPECT_NEAR(via_mix.perfPerTcoDollar, via_agg.perfPerTcoDollar,
                1e-9);
}

TEST(Mix, SingleWorkloadMixMatchesCell)
{
    DesignEvaluator ev(fastParams());
    auto s1 = DesignConfig::baseline(platform::SystemClass::Srvr1);
    auto e1 = DesignConfig::baseline(platform::SystemClass::Emb1);
    WorkloadMix only_wc({{Benchmark::MapredWc, 1.0}});
    auto via_mix = mixRelative(ev, e1, s1, only_wc);
    auto cell = ev.evaluateRelative(e1, s1, Benchmark::MapredWc);
    EXPECT_NEAR(via_mix.perfPerTcoDollar, cell.perfPerTcoDollar, 1e-9);
}

TEST(Mix, MailHeavyPenalizesEmbeddedDesigns)
{
    // Figure 5's caveat as a mix statement: the embedded design's
    // advantage shrinks (or flips) when webmail dominates.
    DesignEvaluator ev(fastParams());
    auto s1 = DesignConfig::baseline(platform::SystemClass::Srvr1);
    auto e1 = DesignConfig::baseline(platform::SystemClass::Emb1);
    auto media = mixRelative(ev, e1, s1, WorkloadMix::mediaHeavy());
    auto mail = mixRelative(ev, e1, s1, WorkloadMix::mailHeavy());
    EXPECT_GT(media.perfPerTcoDollar, mail.perfPerTcoDollar);
}

TEST(Mix, BestDesignTracksTheMix)
{
    DesignEvaluator ev(fastParams());
    auto s1 = DesignConfig::baseline(platform::SystemClass::Srvr1);
    std::vector<DesignConfig> candidates{
        DesignConfig::baseline(platform::SystemClass::Srvr2),
        DesignConfig::baseline(platform::SystemClass::Emb1)};
    auto media =
        bestDesignFor(ev, candidates, s1, WorkloadMix::mediaHeavy(),
                      Metric::PerfPerTcoDollar);
    EXPECT_EQ(media.bestName, "emb1"); // IO-bound: embedded wins big
    EXPECT_GT(media.bestValue, 1.0);
    auto mail =
        bestDesignFor(ev, candidates, s1, WorkloadMix::mailHeavy(),
                      Metric::PerfPerTcoDollar);
    // Mail-heavy: the CPU-strong low-end server closes the gap.
    EXPECT_GT(media.bestValue, mail.bestValue);
}

TEST(Mix, BestDesignRejectsEmptyCandidates)
{
    DesignEvaluator ev(fastParams());
    auto s1 = DesignConfig::baseline(platform::SystemClass::Srvr1);
    EXPECT_THROW(bestDesignFor(ev, {}, s1, WorkloadMix::uniform(),
                               Metric::Perf),
                 PanicError);
}

} // namespace
