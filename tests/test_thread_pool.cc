/**
 * @file
 * Unit tests for the thread pool, parallelFor, and seed hashing.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/hash.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace {

using namespace wsc;

TEST(ThreadPool, ReportsRequestedThreadCount)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.threads(), 3u);
}

TEST(ThreadPool, ZeroSelectsDefaultThreads)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threads(), ThreadPool::defaultThreads());
    EXPECT_GE(pool.threads(), 1u);
}

TEST(ThreadPool, PostedJobsAllRun)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.post([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitOnIdlePoolReturns)
{
    ThreadPool pool(2);
    pool.wait(); // must not hang
}

TEST(ThreadPool, NullJobPanics)
{
    ThreadPool pool(1);
    EXPECT_THROW(pool.post(std::function<void()>()), PanicError);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    for (unsigned threads : {1u, 2u, 8u}) {
        ThreadPool pool(threads);
        std::vector<std::atomic<int>> hits(1000);
        parallelFor(
            hits.size(), [&](std::size_t i) { ++hits[i]; }, &pool);
        for (const auto &h : hits)
            EXPECT_EQ(h.load(), 1);
    }
}

TEST(ParallelFor, ZeroIterationsIsANoop)
{
    ThreadPool pool(2);
    parallelFor(0, [](std::size_t) { FAIL(); }, &pool);
}

TEST(ParallelFor, SlotIndexedOutputMatchesSerial)
{
    std::vector<double> serial(512), parallel(512);
    auto body = [](std::size_t i) {
        return double(seedFor(7, "slot", std::uint64_t(i)) % 1000);
    };
    for (std::size_t i = 0; i < serial.size(); ++i)
        serial[i] = body(i);
    ThreadPool pool(8);
    parallelFor(
        parallel.size(),
        [&](std::size_t i) { parallel[i] = body(i); }, &pool);
    EXPECT_EQ(serial, parallel);
}

TEST(ParallelFor, PropagatesFirstException)
{
    ThreadPool pool(4);
    EXPECT_THROW(parallelFor(
                     100,
                     [](std::size_t i) {
                         if (i == 42)
                             throw std::runtime_error("boom");
                     },
                     &pool),
                 std::runtime_error);
}

TEST(ParallelFor, ExceptionDoesNotPoisonThePool)
{
    ThreadPool pool(2);
    EXPECT_THROW(parallelFor(
                     10,
                     [](std::size_t) {
                         throw std::runtime_error("boom");
                     },
                     &pool),
                 std::runtime_error);
    std::atomic<int> count{0};
    parallelFor(10, [&](std::size_t) { ++count; }, &pool);
    EXPECT_EQ(count.load(), 10);
}

TEST(ParallelFor, NestedCallsRunSerially)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    parallelFor(
        8,
        [&](std::size_t) {
            // Inner call must not deadlock waiting on the pool that
            // is executing the outer iteration.
            parallelFor(8, [&](std::size_t) { ++count; }, &pool);
        },
        &pool);
    EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, SetGlobalThreadsKeepsRetiredPoolUsable)
{
    // global() hands out references; a resize must not destroy the
    // pool under a caller still holding one.
    ThreadPool &before = ThreadPool::global();
    ThreadPool::setGlobalThreads(2);
    EXPECT_EQ(ThreadPool::global().threads(), 2u);

    // The retired pool still accepts and runs work.
    std::atomic<int> ran{0};
    for (int i = 0; i < 16; ++i)
        before.post([&ran] { ++ran; });
    before.wait();
    EXPECT_EQ(ran.load(), 16);

    ThreadPool::setGlobalThreads(3);
    EXPECT_EQ(ThreadPool::global().threads(), 3u);
}

TEST(ThreadPool, SetGlobalThreadsRacesWithGlobalUsers)
{
    // Hammer global()/parallelFor from several threads while the main
    // thread resizes the pool repeatedly. Nothing must crash or hang;
    // every iteration of every parallelFor must still run (checked by
    // the per-thread counters).
    std::atomic<bool> stop{false};
    std::vector<std::thread> users;
    std::vector<std::atomic<std::uint64_t>> counts(4);
    for (std::size_t t = 0; t < counts.size(); ++t) {
        users.emplace_back([&, t] {
            while (!stop.load()) {
                ThreadPool &pool = ThreadPool::global();
                parallelFor(
                    32, [&](std::size_t) { ++counts[t]; }, &pool);
            }
        });
    }
    for (unsigned resize = 0; resize < 20; ++resize)
        ThreadPool::setGlobalThreads(1 + resize % 4);
    // Wait for every user thread to finish at least one parallelFor —
    // on a loaded machine some may not have been scheduled during the
    // resize burst above — so the progress assertions below are
    // meaningful rather than timing-dependent.
    auto all_progressed = [&] {
        for (const auto &c : counts)
            if (c.load() == 0)
                return false;
        return true;
    };
    while (!all_progressed())
        std::this_thread::yield();
    stop = true;
    for (auto &u : users)
        u.join();
    for (const auto &c : counts)
        EXPECT_GT(c.load(), 0u);
    EXPECT_EQ(counts[0].load() % 32, 0u);
}

TEST(SeedFor, DeterministicAndOrderSensitive)
{
    EXPECT_EQ(seedFor(1, "emb1", std::uint64_t(2)),
              seedFor(1, "emb1", std::uint64_t(2)));
    EXPECT_NE(seedFor(1, "emb1", std::uint64_t(2)),
              seedFor(2, "emb1", std::uint64_t(2)));
    EXPECT_NE(seedFor(1, "emb1", std::uint64_t(2)),
              seedFor(1, "emb2", std::uint64_t(2)));
    EXPECT_NE(seedFor(1, "emb1", std::uint64_t(2)),
              seedFor(1, "emb1", std::uint64_t(3)));
}

TEST(SeedFor, DistinctDesignNamesDecorrelate)
{
    // A sweep's worth of task identities must not collide.
    std::set<std::uint64_t> seen;
    for (int d = 0; d < 216; ++d)
        for (int b = 0; b < 5; ++b)
            seen.insert(seedFor(12345, "design-" + std::to_string(d),
                                std::uint64_t(b)));
    EXPECT_EQ(seen.size(), 216u * 5u);
}

TEST(SeedFor, StableAcrossPlatforms)
{
    // Pinned value: the hash is part of the reproducibility contract;
    // a change here silently invalidates published BENCH numbers.
    EXPECT_EQ(seedFor(12345, "srvr1/conventional-1U",
                      std::uint64_t(3)),
              3246033846718155911ULL);
}

} // namespace
