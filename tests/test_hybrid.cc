/**
 * @file
 * Unit tests for the hybrid DRAM/flash memory blade.
 */

#include <gtest/gtest.h>

#include "memblade/hybrid.hh"
#include "platform/catalog.hh"
#include "util/logging.hh"

namespace {

using namespace wsc;
using namespace wsc::memblade;

TEST(Hybrid, StatsAreConsistent)
{
    auto profile = profileFor(workloads::Benchmark::Websearch);
    auto s = replayHybrid(profile, 0.25, HybridParams{},
                          PolicyKind::Random, 500000, 3);
    EXPECT_EQ(s.local.hits + s.local.misses, s.local.accesses);
    // Warm misses split between the two blade tiers.
    EXPECT_EQ(s.dramHits + s.flashHits,
              s.local.misses - s.local.coldMisses);
}

TEST(Hybrid, DramTierAbsorbsHotRemotePages)
{
    auto profile = profileFor(workloads::Benchmark::Websearch);
    auto s = replayHybrid(profile, 0.25, HybridParams{},
                          PolicyKind::Lru, 800000, 4);
    // The local tier filters most reuse out of the remote stream (the
    // classic multi-level locality-filtering effect), but a
    // 25%-of-remote DRAM tier still catches a nonzero share.
    EXPECT_GT(s.dramHitRate(), 0.05);
    EXPECT_LT(s.dramHitRate(), 0.6);
}

TEST(Hybrid, BiggerDramTierCatchesMore)
{
    auto profile = profileFor(workloads::Benchmark::Websearch);
    HybridParams small;
    small.dramTierFraction = 0.1;
    HybridParams big;
    big.dramTierFraction = 0.5;
    auto s_small = replayHybrid(profile, 0.25, small,
                                PolicyKind::Lru, 500000, 5);
    auto s_big = replayHybrid(profile, 0.25, big, PolicyKind::Lru,
                              500000, 5);
    EXPECT_GT(s_big.dramHitRate(), s_small.dramHitRate());
}

TEST(Hybrid, SlowdownBetweenPureDramAndPureFlash)
{
    auto profile = profileFor(workloads::Benchmark::Websearch);
    HybridParams p;
    auto s = replayHybrid(profile, 0.25, p, PolicyKind::Random,
                          800000, 6);
    double hybrid_sd = hybridSlowdown(s, profile, p);

    // Pure-DRAM bound: every warm miss at the DRAM stall.
    auto flat = replayProfile(profile, 0.25, PolicyKind::Random,
                              800000, 6);
    double dram_sd = slowdown(flat, profile, p.dramLink);
    RemoteLink flash_link{"flash", p.flashStallSeconds};
    double flash_sd = slowdown(flat, profile, flash_link);

    EXPECT_GT(hybrid_sd, 0.9 * dram_sd);
    EXPECT_LT(hybrid_sd, flash_sd);
}

TEST(Hybrid, CostBelowPlainSharing)
{
    auto emb1 = platform::makeSystem(platform::SystemClass::Emb1);
    auto plain = applyMemorySharing(emb1, BladeParams{},
                                    Provisioning::Static);
    auto hybrid = applyHybridSharing(emb1, BladeParams{},
                                     Provisioning::Static,
                                     HybridParams{});
    EXPECT_LT(hybrid.memoryDollars, plain.memoryDollars);
    EXPECT_LT(hybrid.memoryWatts, plain.memoryWatts);
}

TEST(Hybrid, FullDramTierMatchesPlainSharing)
{
    auto emb1 = platform::makeSystem(platform::SystemClass::Emb1);
    HybridParams all_dram;
    all_dram.dramTierFraction = 1.0;
    auto plain = applyMemorySharing(emb1, BladeParams{},
                                    Provisioning::Dynamic);
    auto hybrid = applyHybridSharing(emb1, BladeParams{},
                                     Provisioning::Dynamic, all_dram);
    EXPECT_NEAR(hybrid.memoryDollars, plain.memoryDollars, 1e-9);
    EXPECT_NEAR(hybrid.memoryWatts, plain.memoryWatts, 1e-9);
}

TEST(Hybrid, InvalidParamsPanic)
{
    auto profile = profileFor(workloads::Benchmark::Ytube);
    HybridParams bad;
    bad.dramTierFraction = 0.0;
    EXPECT_THROW(replayHybrid(profile, 0.25, bad, PolicyKind::Lru,
                              1000, 1),
                 PanicError);
    EXPECT_THROW(replayHybrid(profile, 1.5, HybridParams{},
                              PolicyKind::Lru, 1000, 1),
                 PanicError);
}

} // namespace
