/**
 * @file
 * Tests for the closed-loop adaptive client driver, including its
 * agreement with the open-loop bisection (the paper's methodology
 * check).
 */

#include <gtest/gtest.h>

#include "perfsim/closed_loop.hh"
#include "perfsim/perf_eval.hh"
#include "perfsim/throughput.hh"
#include "platform/catalog.hh"
#include "util/logging.hh"
#include "workloads/ytube.hh"

namespace {

using namespace wsc;
using namespace wsc::perfsim;

StationConfig
ytubeOnSrvr2()
{
    PerfEvaluator ev;
    workloads::Ytube yt;
    return ev.stationsFor(platform::makeSystem(
                              platform::SystemClass::Srvr2),
                          yt.traits(), {});
}

TEST(ClosedLoop, ProducesPositiveSustainedThroughput)
{
    workloads::Ytube yt;
    auto st = ytubeOnSrvr2();
    Rng rng(31);
    ClosedLoopParams p;
    p.epochSeconds = 10.0;
    p.epochs = 10;
    auto r = runClosedLoop(yt, st, p, rng);
    EXPECT_GT(r.sustainedRps, 0.0);
    EXPECT_GE(r.clientsAtBest, 1u);
    EXPECT_EQ(r.epochRps.size(), 10u);
    EXPECT_EQ(r.epochPassed.size(), 10u);
}

TEST(ClosedLoop, PopulationGrowsWhileQosHolds)
{
    // At tiny initial populations the first epochs must pass QoS and
    // throughput must trend upward.
    workloads::Ytube yt;
    auto st = ytubeOnSrvr2();
    Rng rng(32);
    ClosedLoopParams p;
    p.initialClients = 2;
    p.epochSeconds = 10.0;
    p.epochs = 8;
    auto r = runClosedLoop(yt, st, p, rng);
    ASSERT_GE(r.epochRps.size(), 4u);
    EXPECT_TRUE(r.epochPassed[0]);
    EXPECT_GT(r.epochRps[3], r.epochRps[0]);
}

TEST(ClosedLoop, AgreesWithOpenLoopSearch)
{
    // The adaptive driver and the open-loop bisection are independent
    // estimators of the same quantity; they must land within ~25%.
    workloads::Ytube yt;
    auto st = ytubeOnSrvr2();

    Rng rng_open(33);
    SearchParams sp;
    sp.iterations = 7;
    sp.window.warmupSeconds = 3.0;
    sp.window.measureSeconds = 15.0;
    auto open = findSustainableRps(yt, st, sp, rng_open);

    Rng rng_closed(34);
    ClosedLoopParams cp;
    cp.epochSeconds = 12.0;
    cp.epochs = 16;
    auto closed = runClosedLoop(yt, st, cp, rng_closed);

    ASSERT_GT(open.sustainableRps, 0.0);
    ASSERT_GT(closed.sustainedRps, 0.0);
    double ratio = closed.sustainedRps / open.sustainableRps;
    EXPECT_GT(ratio, 0.75) << "closed=" << closed.sustainedRps
                           << " open=" << open.sustainableRps;
    EXPECT_LT(ratio, 1.25) << "closed=" << closed.sustainedRps
                           << " open=" << open.sustainableRps;
}

TEST(ClosedLoop, ThinkTimeBoundsThroughput)
{
    // N clients with think time Z can offer at most N/Z requests per
    // second; with a huge think time the server is never the limit.
    workloads::Ytube yt;
    auto st = ytubeOnSrvr2();
    Rng rng(35);
    ClosedLoopParams p;
    p.initialClients = 10;
    p.maxClients = 10; // fixed population
    p.thinkTimeMean = 10.0;
    p.epochSeconds = 20.0;
    p.epochs = 3;
    auto r = runClosedLoop(yt, st, p, rng);
    for (double rps : r.epochRps)
        EXPECT_LE(rps, 10.0 / 10.0 * 1.5); // N/Z with slack
}

TEST(ClosedLoop, DefaultParamsLeaveDegradedCountersAtZero)
{
    // With the timer off (the default), the degraded-mode protocol
    // never engages and the classic driver's results are untouched.
    workloads::Ytube yt;
    auto st = ytubeOnSrvr2();
    ClosedLoopParams p;
    p.epochSeconds = 10.0;
    p.epochs = 6;

    Rng a(37);
    auto classic = runClosedLoop(yt, st, p, a);
    EXPECT_EQ(classic.timeouts, 0u);
    EXPECT_EQ(classic.retries, 0u);
    EXPECT_EQ(classic.giveups, 0u);
    EXPECT_EQ(classic.lateCompletions, 0u);

    // Explicitly-zero timeout is the same code path: identical run.
    ClosedLoopParams q = p;
    q.requestTimeoutSeconds = 0.0;
    Rng b(37);
    auto same = runClosedLoop(yt, st, q, b);
    EXPECT_EQ(same.sustainedRps, classic.sustainedRps);
    EXPECT_EQ(same.epochRps, classic.epochRps);
}

TEST(ClosedLoop, TightTimeoutEngagesRetriesAndGiveups)
{
    // A timeout far below the service time forces every request
    // through the retry ladder to a give-up; clients keep cycling
    // (think -> attempts -> give up) instead of wedging.
    workloads::Ytube yt;
    auto st = ytubeOnSrvr2();
    Rng rng(38);
    ClosedLoopParams p;
    p.initialClients = 4;
    p.maxClients = 4;
    p.thinkTimeMean = 0.5;
    p.epochSeconds = 10.0;
    p.epochs = 4;
    p.requestTimeoutSeconds = 1e-4;
    p.maxRetries = 2;
    p.retryBackoffSeconds = 0.01;
    auto r = runClosedLoop(yt, st, p, rng);
    EXPECT_GT(r.timeouts, 0u);
    EXPECT_GT(r.retries, 0u);
    EXPECT_GT(r.giveups, 0u);
    // Every abandoned attempt still finishes server-side eventually.
    EXPECT_GT(r.lateCompletions, 0u);
    // Give-ups count against QoS: no epoch should pass.
    for (bool passed : r.epochPassed)
        EXPECT_FALSE(passed);
}

TEST(ClosedLoop, GenerousTimeoutMatchesClassicThroughput)
{
    // A timeout the server never hits leaves throughput essentially
    // unchanged from the classic driver (the protocol is pure
    // bookkeeping until a timer actually fires).
    workloads::Ytube yt;
    auto st = ytubeOnSrvr2();
    ClosedLoopParams p;
    p.epochSeconds = 10.0;
    p.epochs = 6;

    Rng a(39);
    auto classic = runClosedLoop(yt, st, p, a);

    ClosedLoopParams q = p;
    q.requestTimeoutSeconds = 1e6;
    Rng b(39);
    auto timed = runClosedLoop(yt, st, q, b);
    EXPECT_EQ(timed.timeouts, 0u);
    EXPECT_EQ(timed.giveups, 0u);
    EXPECT_NEAR(timed.sustainedRps, classic.sustainedRps,
                0.2 * classic.sustainedRps + 1.0);
}

TEST(ClosedLoop, InvalidParamsPanic)
{
    workloads::Ytube yt;
    auto st = ytubeOnSrvr2();
    Rng rng(36);
    ClosedLoopParams p;
    p.initialClients = 0;
    EXPECT_THROW(runClosedLoop(yt, st, p, rng), PanicError);
    ClosedLoopParams q;
    q.growFactor = 1.0;
    EXPECT_THROW(runClosedLoop(yt, st, q, rng), PanicError);
}

} // namespace
