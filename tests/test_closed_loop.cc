/**
 * @file
 * Tests for the closed-loop adaptive client driver, including its
 * agreement with the open-loop bisection (the paper's methodology
 * check).
 */

#include <gtest/gtest.h>

#include "perfsim/closed_loop.hh"
#include "perfsim/perf_eval.hh"
#include "perfsim/throughput.hh"
#include "platform/catalog.hh"
#include "util/logging.hh"
#include "workloads/suite.hh"
#include "workloads/ytube.hh"

namespace {

using namespace wsc;
using namespace wsc::perfsim;

StationConfig
ytubeOnSrvr2()
{
    PerfEvaluator ev;
    workloads::Ytube yt;
    return ev.stationsFor(platform::makeSystem(
                              platform::SystemClass::Srvr2),
                          yt.traits(), {});
}

TEST(ClosedLoop, ProducesPositiveSustainedThroughput)
{
    workloads::Ytube yt;
    auto st = ytubeOnSrvr2();
    Rng rng(31);
    ClosedLoopParams p;
    p.epochSeconds = 10.0;
    p.epochs = 10;
    auto r = runClosedLoop(yt, st, p, rng);
    EXPECT_GT(r.sustainedRps, 0.0);
    EXPECT_GE(r.clientsAtBest, 1u);
    EXPECT_EQ(r.epochRps.size(), 10u);
    EXPECT_EQ(r.epochPassed.size(), 10u);
}

TEST(ClosedLoop, PopulationGrowsWhileQosHolds)
{
    // At tiny initial populations the first epochs must pass QoS and
    // throughput must trend upward.
    workloads::Ytube yt;
    auto st = ytubeOnSrvr2();
    Rng rng(32);
    ClosedLoopParams p;
    p.initialClients = 2;
    p.epochSeconds = 10.0;
    p.epochs = 8;
    auto r = runClosedLoop(yt, st, p, rng);
    ASSERT_GE(r.epochRps.size(), 4u);
    EXPECT_TRUE(r.epochPassed[0]);
    EXPECT_GT(r.epochRps[3], r.epochRps[0]);
}

TEST(ClosedLoop, AgreesWithOpenLoopSearch)
{
    // The adaptive driver and the open-loop bisection are independent
    // estimators of the same quantity; they must land within ~25%.
    workloads::Ytube yt;
    auto st = ytubeOnSrvr2();

    Rng rng_open(33);
    SearchParams sp;
    sp.iterations = 7;
    sp.window.warmupSeconds = 3.0;
    sp.window.measureSeconds = 15.0;
    auto open = findSustainableRps(yt, st, sp, rng_open);

    Rng rng_closed(34);
    ClosedLoopParams cp;
    cp.epochSeconds = 12.0;
    cp.epochs = 16;
    auto closed = runClosedLoop(yt, st, cp, rng_closed);

    ASSERT_GT(open.sustainableRps, 0.0);
    ASSERT_GT(closed.sustainedRps, 0.0);
    double ratio = closed.sustainedRps / open.sustainableRps;
    EXPECT_GT(ratio, 0.75) << "closed=" << closed.sustainedRps
                           << " open=" << open.sustainableRps;
    EXPECT_LT(ratio, 1.25) << "closed=" << closed.sustainedRps
                           << " open=" << open.sustainableRps;
}

TEST(ClosedLoop, ThinkTimeBoundsThroughput)
{
    // N clients with think time Z can offer at most N/Z requests per
    // second; with a huge think time the server is never the limit.
    workloads::Ytube yt;
    auto st = ytubeOnSrvr2();
    Rng rng(35);
    ClosedLoopParams p;
    p.initialClients = 10;
    p.maxClients = 10; // fixed population
    p.thinkTimeMean = 10.0;
    p.epochSeconds = 20.0;
    p.epochs = 3;
    auto r = runClosedLoop(yt, st, p, rng);
    for (double rps : r.epochRps)
        EXPECT_LE(rps, 10.0 / 10.0 * 1.5); // N/Z with slack
}

TEST(ClosedLoop, DefaultParamsLeaveDegradedCountersAtZero)
{
    // With the timer off (the default), the degraded-mode protocol
    // never engages and the classic driver's results are untouched.
    workloads::Ytube yt;
    auto st = ytubeOnSrvr2();
    ClosedLoopParams p;
    p.epochSeconds = 10.0;
    p.epochs = 6;

    Rng a(37);
    auto classic = runClosedLoop(yt, st, p, a);
    EXPECT_EQ(classic.timeouts, 0u);
    EXPECT_EQ(classic.retries, 0u);
    EXPECT_EQ(classic.giveups, 0u);
    EXPECT_EQ(classic.lateCompletions, 0u);

    // Explicitly-zero timeout is the same code path: identical run.
    ClosedLoopParams q = p;
    q.requestTimeoutSeconds = 0.0;
    Rng b(37);
    auto same = runClosedLoop(yt, st, q, b);
    EXPECT_EQ(same.sustainedRps, classic.sustainedRps);
    EXPECT_EQ(same.epochRps, classic.epochRps);
}

TEST(ClosedLoop, TightTimeoutEngagesRetriesAndGiveups)
{
    // A timeout far below the service time forces every request
    // through the retry ladder to a give-up; clients keep cycling
    // (think -> attempts -> give up) instead of wedging.
    workloads::Ytube yt;
    auto st = ytubeOnSrvr2();
    Rng rng(38);
    ClosedLoopParams p;
    p.initialClients = 4;
    p.maxClients = 4;
    p.thinkTimeMean = 0.5;
    p.epochSeconds = 10.0;
    p.epochs = 4;
    p.requestTimeoutSeconds = 1e-4;
    p.maxRetries = 2;
    p.retryBackoffSeconds = 0.01;
    auto r = runClosedLoop(yt, st, p, rng);
    EXPECT_GT(r.timeouts, 0u);
    EXPECT_GT(r.retries, 0u);
    EXPECT_GT(r.giveups, 0u);
    // Every abandoned attempt still finishes server-side eventually.
    EXPECT_GT(r.lateCompletions, 0u);
    // Give-ups count against QoS: no epoch should pass.
    for (bool passed : r.epochPassed)
        EXPECT_FALSE(passed);
}

TEST(ClosedLoop, GenerousTimeoutMatchesClassicThroughput)
{
    // A timeout the server never hits leaves throughput essentially
    // unchanged from the classic driver (the protocol is pure
    // bookkeeping until a timer actually fires).
    workloads::Ytube yt;
    auto st = ytubeOnSrvr2();
    ClosedLoopParams p;
    p.epochSeconds = 10.0;
    p.epochs = 6;

    Rng a(39);
    auto classic = runClosedLoop(yt, st, p, a);

    ClosedLoopParams q = p;
    q.requestTimeoutSeconds = 1e6;
    Rng b(39);
    auto timed = runClosedLoop(yt, st, q, b);
    EXPECT_EQ(timed.timeouts, 0u);
    EXPECT_EQ(timed.giveups, 0u);
    EXPECT_NEAR(timed.sustainedRps, classic.sustainedRps,
                0.2 * classic.sustainedRps + 1.0);
}

/**
 * Field-by-field exact comparison of pooled-vs-oracle results: doubles
 * compared bitwise (EXPECT_EQ, not NEAR), and the kernel counters too,
 * so a driver that merely lands on the same aggregate numbers through
 * a different event sequence still fails.
 */
void
expectBitIdentical(const ClosedLoopResult &pooled,
                   const ClosedLoopResult &oracle)
{
    EXPECT_EQ(pooled.sustainedRps, oracle.sustainedRps);
    EXPECT_EQ(pooled.clientsAtBest, oracle.clientsAtBest);
    EXPECT_EQ(pooled.finalClients, oracle.finalClients);
    EXPECT_EQ(pooled.finalLiveClients, oracle.finalLiveClients);
    EXPECT_EQ(pooled.p95AtBest, oracle.p95AtBest);
    EXPECT_EQ(pooled.epochRps, oracle.epochRps);
    EXPECT_EQ(pooled.epochPassed, oracle.epochPassed);
    EXPECT_EQ(pooled.epochCompleted, oracle.epochCompleted);
    EXPECT_EQ(pooled.epochViolations, oracle.epochViolations);
    EXPECT_EQ(pooled.epochGiveups, oracle.epochGiveups);
    EXPECT_EQ(pooled.epochP95, oracle.epochP95);
    EXPECT_EQ(pooled.timeouts, oracle.timeouts);
    EXPECT_EQ(pooled.retries, oracle.retries);
    EXPECT_EQ(pooled.giveups, oracle.giveups);
    EXPECT_EQ(pooled.lateCompletions, oracle.lateCompletions);
    EXPECT_EQ(pooled.kernel.scheduled, oracle.kernel.scheduled);
    EXPECT_EQ(pooled.kernel.dispatched, oracle.kernel.dispatched);
    EXPECT_EQ(pooled.kernel.cancelled, oracle.kernel.cancelled);
    EXPECT_EQ(pooled.kernel.compactions, oracle.kernel.compactions);
    EXPECT_EQ(pooled.kernel.peakHeap, oracle.kernel.peakHeap);
}

TEST(ClosedLoopOracle, BitIdenticalAcrossWorkloadsClassic)
{
    PerfEvaluator ev;
    auto sys = platform::makeSystem(platform::SystemClass::Srvr2);
    ClosedLoopParams p;
    p.epochs = 8;
    p.epochSeconds = 10.0;
    for (auto b : {workloads::Benchmark::Websearch,
                   workloads::Benchmark::Webmail,
                   workloads::Benchmark::Ytube}) {
        SCOPED_TRACE(workloads::to_string(b));
        auto wl = workloads::makeBenchmark(b);
        auto *iw =
            dynamic_cast<workloads::InteractiveWorkload *>(wl.get());
        ASSERT_NE(iw, nullptr);
        auto st = ev.stationsFor(sys, iw->traits(), {});
        Rng a(71), o(71);
        auto pooled = runClosedLoop(*iw, st, p, a);
        auto oracle = runClosedLoopOracle(*iw, st, p, o);
        expectBitIdentical(pooled, oracle);
    }
}

TEST(ClosedLoopOracle, BitIdenticalAcrossWorkloadsTimeout)
{
    // The timeout must actually bite: 50ms against these service
    // times produces timeouts, retries, exhausted retry ladders, and
    // attempts that complete after abandonment.
    PerfEvaluator ev;
    auto sys = platform::makeSystem(platform::SystemClass::Srvr2);
    ClosedLoopParams p;
    p.epochs = 8;
    p.epochSeconds = 10.0;
    p.requestTimeoutSeconds = 0.05;
    p.maxRetries = 2;
    p.retryBackoffSeconds = 0.01;
    std::uint64_t timeouts = 0, giveups = 0, late = 0;
    for (auto b : {workloads::Benchmark::Websearch,
                   workloads::Benchmark::Webmail,
                   workloads::Benchmark::Ytube}) {
        SCOPED_TRACE(workloads::to_string(b));
        auto wl = workloads::makeBenchmark(b);
        auto *iw =
            dynamic_cast<workloads::InteractiveWorkload *>(wl.get());
        ASSERT_NE(iw, nullptr);
        auto st = ev.stationsFor(sys, iw->traits(), {});
        Rng a(72), o(72);
        auto pooled = runClosedLoop(*iw, st, p, a);
        auto oracle = runClosedLoopOracle(*iw, st, p, o);
        expectBitIdentical(pooled, oracle);
        timeouts += pooled.timeouts;
        giveups += pooled.giveups;
        late += pooled.lateCompletions;
    }
    EXPECT_GT(timeouts, 0u);
    EXPECT_GT(giveups, 0u); // retry ladders exhausted somewhere
    EXPECT_GT(late, 0u);    // abandoned attempts finished server-side
}

TEST(ClosedLoopOracle, BitIdenticalUnderShrinkMidFlight)
{
    // Start far above capacity so the first epochs fail QoS and the
    // population shrinks while requests are mid-pipeline; lazy
    // retirement and re-spawn must track the oracle exactly.
    workloads::Ytube yt;
    auto st = ytubeOnSrvr2();
    ClosedLoopParams p;
    p.initialClients = 512;
    p.epochs = 10;
    p.epochSeconds = 8.0;
    Rng a(73), o(73);
    auto pooled = runClosedLoop(yt, st, p, a);
    auto oracle = runClosedLoopOracle(yt, st, p, o);
    expectBitIdentical(pooled, oracle);
    bool shrank = false; // at least one failed epoch: shrink exercised
    for (bool passed : pooled.epochPassed)
        shrank = shrank || !passed;
    EXPECT_TRUE(shrank);
}

TEST(ClosedLoop, PopulationConvergesToTarget)
{
    // With a fixed population the live count can never drift from the
    // target; with adaptation it may only exceed it transiently (excess
    // clients retire lazily), never undershoot.
    workloads::Ytube yt;
    auto st = ytubeOnSrvr2();

    ClosedLoopParams fixed;
    fixed.initialClients = 8;
    fixed.maxClients = 8;
    fixed.epochs = 6;
    fixed.epochSeconds = 8.0;
    Rng a(74);
    auto r = runClosedLoop(yt, st, fixed, a);
    EXPECT_EQ(r.finalClients, 8u);
    EXPECT_EQ(r.finalLiveClients, 8u);

    ClosedLoopParams adaptive;
    adaptive.initialClients = 64; // over capacity: shrinks repeatedly
    adaptive.epochs = 10;
    adaptive.epochSeconds = 8.0;
    Rng b(75);
    auto s = runClosedLoop(yt, st, adaptive, b);
    EXPECT_GE(s.finalLiveClients, s.finalClients);
}

TEST(ClosedLoop, InvalidParamsPanic)
{
    workloads::Ytube yt;
    auto st = ytubeOnSrvr2();
    Rng rng(36);
    ClosedLoopParams p;
    p.initialClients = 0;
    EXPECT_THROW(runClosedLoop(yt, st, p, rng), PanicError);
    ClosedLoopParams q;
    q.growFactor = 1.0;
    EXPECT_THROW(runClosedLoop(yt, st, q, rng), PanicError);
}

} // namespace
