/**
 * @file
 * Unit tests for the facility model deriving K1/L1/K2.
 */

#include <gtest/gtest.h>

#include "cost/facility.hh"
#include "util/logging.hh"

namespace {

using namespace wsc;
using namespace wsc::cost;

TEST(Facility, DefaultsReproducePaperConstants)
{
    auto derived =
        deriveBurdenedParams(FacilityParams{}, BurdenedPowerParams{});
    EXPECT_NEAR(derived.k1, 1.33, 0.01);
    EXPECT_NEAR(derived.l1, 0.8, 1e-12);
    EXPECT_NEAR(derived.k2, 0.667, 0.01);
    EXPECT_NEAR(derived.burdenMultiplier(),
                BurdenedPowerParams{}.burdenMultiplier(), 0.02);
}

TEST(Facility, EconomicFieldsCarriedThrough)
{
    BurdenedPowerParams economic;
    economic.tariffPerMWh = 170.0;
    economic.activityFactor = 0.5;
    economic.years = 4.0;
    auto derived = deriveBurdenedParams(FacilityParams{}, economic);
    EXPECT_DOUBLE_EQ(derived.tariffPerMWh, 170.0);
    EXPECT_DOUBLE_EQ(derived.activityFactor, 0.5);
    EXPECT_DOUBLE_EQ(derived.years, 4.0);
}

TEST(Facility, HigherTariffLowersCapexRatios)
{
    // More expensive electricity makes the same capex a smaller
    // multiple of it: K1 and K2 fall.
    BurdenedPowerParams cheap;
    cheap.tariffPerMWh = 50.0;
    BurdenedPowerParams costly;
    costly.tariffPerMWh = 170.0;
    auto k_cheap = deriveBurdenedParams(FacilityParams{}, cheap);
    auto k_costly = deriveBurdenedParams(FacilityParams{}, costly);
    EXPECT_GT(k_cheap.k1, k_costly.k1);
    EXPECT_GT(k_cheap.k2, k_costly.k2);
    EXPECT_DOUBLE_EQ(k_cheap.l1, k_costly.l1); // COP-only
}

TEST(Facility, BetterCopLowersL1AndPue)
{
    FacilityParams efficient;
    efficient.cop = 2.5;
    auto derived =
        deriveBurdenedParams(efficient, BurdenedPowerParams{});
    EXPECT_NEAR(derived.l1, 0.4, 1e-12);
    EXPECT_NEAR(impliedPue(efficient), 1.4, 1e-12);
    EXPECT_NEAR(impliedPue(FacilityParams{}), 1.8, 1e-12);
}

TEST(Facility, DistributionLossesChargeIntoL1)
{
    FacilityParams f;
    f.distributionLossFraction = 0.08;
    auto derived = deriveBurdenedParams(f, BurdenedPowerParams{});
    EXPECT_NEAR(derived.l1, 0.88, 1e-12);
    EXPECT_NEAR(impliedPue(f), 1.88, 1e-12);
}

TEST(Facility, CopForL1RoundTrips)
{
    EXPECT_NEAR(copForL1(0.8), 1.25, 1e-12);
    FacilityParams f;
    f.cop = copForL1(0.4);
    auto derived = deriveBurdenedParams(f, BurdenedPowerParams{});
    EXPECT_NEAR(derived.l1, 0.4, 1e-12);
}

TEST(Facility, PackagingGainAsPlantEquivalent)
{
    // The paper's 4x aggregated-cooling gain (L1: 0.8 -> 0.2) is
    // equivalent to raising the plant COP from 1.25 to 5 - the kind
    // of statement facility engineers can check.
    EXPECT_NEAR(copForL1(0.8 / 4.0), 5.0, 1e-12);
}

TEST(Facility, InvalidInputsPanic)
{
    FacilityParams bad;
    bad.cop = 0.0;
    EXPECT_THROW(deriveBurdenedParams(bad, BurdenedPowerParams{}),
                 PanicError);
    EXPECT_THROW(impliedPue(bad), PanicError);
    EXPECT_THROW(copForL1(0.0), PanicError);
    FacilityParams neg;
    neg.infraLifeYears = -1.0;
    EXPECT_THROW(deriveBurdenedParams(neg, BurdenedPowerParams{}),
                 PanicError);
}

/** Capex sweep: K1 scales linearly in power capex. */
class CapexSweep : public ::testing::TestWithParam<double>
{};

TEST_P(CapexSweep, K1LinearInCapex)
{
    FacilityParams f;
    f.powerCapexPerWatt = GetParam();
    FacilityParams f2;
    f2.powerCapexPerWatt = 2.0 * GetParam();
    auto a = deriveBurdenedParams(f, BurdenedPowerParams{});
    auto b = deriveBurdenedParams(f2, BurdenedPowerParams{});
    EXPECT_NEAR(b.k1, 2.0 * a.k1, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Capex, CapexSweep,
                         ::testing::Values(5.0, 10.0, 15.0, 25.0));

} // namespace
