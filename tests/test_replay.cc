/**
 * @file
 * Replay-engine correctness: the allocation-free kernels against the
 * legacy policies (the per-access oracle), batched generation against
 * scalar, the stack-distance curve against direct LRU replays, and
 * sharded-replay determinism across thread counts.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>

#include "memblade/replay.hh"
#include "memblade/stack_distance.hh"
#include "memblade/trace_io.hh"
#include "util/thread_pool.hh"

namespace {

using namespace wsc;
using namespace wsc::memblade;

void
expectSameStats(const ReplayStats &a, const ReplayStats &b)
{
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.hits, b.hits);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.coldMisses, b.coldMisses);
    // Integer identity implies the derived doubles are bit-identical
    // too; spot-check the arithmetic anyway.
    EXPECT_EQ(a.missRate(), b.missRate());
    EXPECT_EQ(a.warmMissRate(), b.warmMissRate());
}

/** The seed implementation of replayProfile, kept as the oracle. */
ReplayStats
legacyReplayProfile(const TraceProfile &profile, double f,
                    PolicyKind kind, std::uint64_t accesses,
                    std::uint64_t seed)
{
    auto frames = std::size_t(
        std::ceil(double(profile.footprintPages) * f));
    Rng rng(seed);
    TwoLevelMemory mem(frames, kind, rng.split());
    TraceGenerator gen(profile, rng.split());
    mem.replay(gen, accesses);
    return mem.stats();
}

TEST(ReplayKernels, MatchLegacyPoliciesBitForBit)
{
    for (auto b : {workloads::Benchmark::Websearch,
                   workloads::Benchmark::Webmail,
                   workloads::Benchmark::MapredWc}) {
        auto profile = profileFor(b);
        for (auto kind : {PolicyKind::Lru, PolicyKind::Random,
                          PolicyKind::Clock}) {
            SCOPED_TRACE(profile.name + "/" + to_string(kind));
            auto fast =
                replayProfile(profile, 0.25, kind, 200000, 7);
            auto oracle =
                legacyReplayProfile(profile, 0.25, kind, 200000, 7);
            expectSameStats(fast, oracle);
        }
    }
}

TEST(ReplayKernels, SingleFrameCacheMatchesLegacy)
{
    // frames == 1 exercises the LRU eviction path where the list
    // empties completely on every miss.
    auto profile = profileFor(workloads::Benchmark::Websearch);
    auto trace = generateTrace(profile, 20000, Rng(11));
    for (auto kind :
         {PolicyKind::Lru, PolicyKind::Random, PolicyKind::Clock}) {
        SCOPED_TRACE(to_string(kind));
        TwoLevelMemory mem(1, kind, Rng(5));
        for (PageId p : trace)
            mem.access(p);
        auto fast = replayPages(trace.data(), trace.size(), kind, 1,
                                profile.footprintPages, Rng(5));
        expectSameStats(mem.stats(), fast);
    }
}

TEST(ReplayKernels, ReplayTraceMatchesLegacyPath)
{
    auto profile = profileFor(workloads::Benchmark::Ytube);
    auto trace = generateTrace(profile, 50000, Rng(21));
    for (auto kind :
         {PolicyKind::Lru, PolicyKind::Random, PolicyKind::Clock}) {
        SCOPED_TRACE(to_string(kind));
        TwoLevelMemory mem(20000, kind, Rng(9));
        for (PageId p : trace)
            mem.access(p);
        expectSameStats(mem.stats(),
                        replayTrace(trace, 20000, kind, 9));
    }
}

TEST(TraceBatch, NextBatchMatchesScalarNext)
{
    for (auto b : {workloads::Benchmark::Websearch,
                   workloads::Benchmark::MapredWc}) {
        auto profile = profileFor(b);
        SCOPED_TRACE(profile.name);
        TraceGenerator scalar(profile, Rng(33));
        TraceGenerator batched(profile, Rng(33));

        // Ragged batch sizes, including 1 and sizes larger than the
        // longest sequential run, to hit every drain path.
        const std::size_t sizes[] = {1, 2, 3, 7, 64, 1000, 4096, 5};
        std::vector<PageId> buf(4096);
        std::size_t si = 0;
        std::uint64_t checked = 0;
        while (checked < 60000) {
            std::size_t n = sizes[si++ % (sizeof(sizes) /
                                          sizeof(sizes[0]))];
            batched.nextBatch(buf.data(), n);
            for (std::size_t i = 0; i < n; ++i)
                ASSERT_EQ(buf[i], scalar.next())
                    << "at access " << checked + i;
            checked += n;
        }
        // Both generators must land in the same state: interleave.
        for (int i = 0; i < 100; ++i)
            ASSERT_EQ(batched.next(), scalar.next());
    }
}

TEST(StackDistance, CurveMatchesDirectLruReplayEverywhere)
{
    const double fractions[] = {0.05, 0.1, 0.25, 0.5, 1.0};
    for (auto b : workloads::allBenchmarks) {
        auto profile = profileFor(b);
        SCOPED_TRACE(profile.name);
        const std::uint64_t n = 100000;
        auto curve = lruCurveForProfile(profile, n, 13);
        for (double f : fractions) {
            SCOPED_TRACE(f);
            auto frames = std::size_t(
                std::ceil(double(profile.footprintPages) * f));
            expectSameStats(
                curve.statsAt(frames),
                replayProfile(profile, f, PolicyKind::Lru, n, 13));
        }
    }
}

TEST(StackDistance, SweepMatchesIndividualReplays)
{
    auto profile = profileFor(workloads::Benchmark::Webmail);
    const std::vector<double> fractions{0.0625, 0.125, 0.25, 0.5,
                                        0.9};
    auto swept = replayProfileSweep(profile, fractions, 80000, 17);
    ASSERT_EQ(swept.size(), fractions.size());
    for (std::size_t i = 0; i < fractions.size(); ++i) {
        SCOPED_TRACE(fractions[i]);
        expectSameStats(swept[i],
                        replayProfile(profile, fractions[i],
                                      PolicyKind::Lru, 80000, 17));
    }
}

TEST(StackDistance, MeasuredWindowMatchesWindowedReplay)
{
    auto profile = profileFor(workloads::Benchmark::Websearch);
    const std::uint64_t n = 60000, warm = n / 2;
    TraceGenerator curveGen(profile, Rng(23));
    auto curve = lruCurve(curveGen, profile.footprintPages, n, warm);
    auto frames = std::size_t(
        std::ceil(double(profile.footprintPages) * 0.25));

    TraceGenerator replayGen(profile, Rng(23));
    auto w = replayWindowed(replayGen, PolicyKind::Lru, frames,
                            profile.footprintPages, n, warm, Rng(0));
    expectSameStats(curve.statsAt(frames), w.total);
    EXPECT_EQ(curve.measuredAccesses, w.measured.accesses);
    EXPECT_EQ(curve.measuredHitsAt(frames), w.measured.hits);
    EXPECT_EQ(curve.measuredColdMisses, w.measured.coldMisses);
}

TEST(ShardedReplay, IdenticalAcrossThreadCounts)
{
    auto profile = profileFor(workloads::Benchmark::Websearch);
    for (auto kind : {PolicyKind::Lru, PolicyKind::Random}) {
        SCOPED_TRACE(to_string(kind));
        ThreadPool one(1);
        auto ref = shardedReplayProfile(profile, 0.25, kind, 100001,
                                        42, 8, &one);
        // 100001 accesses over 8 shards: the remainder spreads over
        // the first shard, so uneven splits are covered too.
        for (unsigned threads : {2u, 8u}) {
            SCOPED_TRACE(threads);
            ThreadPool pool(threads);
            auto got = shardedReplayProfile(profile, 0.25, kind,
                                            100001, 42, 8, &pool);
            expectSameStats(ref, got);
        }
    }
}

TEST(PageSlotMap, ChurnMatchesUnorderedMapReference)
{
    // Randomized insert/erase/find churn against std::unordered_map,
    // in both representations: hash mode (pageBound 0) with a working
    // set near the table's load limit so backshift deletion runs
    // constantly, and direct-mapped mode with the same operations.
    for (std::uint64_t pageBound : {std::uint64_t(0),
                                    std::uint64_t(1001)}) {
        SCOPED_TRACE(pageBound);
        const std::size_t entries = 300;
        PageSlotMap map(entries, pageBound);
        std::unordered_map<PageId, std::uint32_t> ref;
        Rng rng(99);
        for (int op = 0; op < 20000; ++op) {
            PageId page = rng.uniformInt(0, 1000);
            auto it = ref.find(page);
            ASSERT_EQ(map.find(page), it == ref.end()
                                          ? PageSlotMap::kNoSlot
                                          : it->second)
                << "op " << op;
            if (it != ref.end()) {
                map.erase(page);
                ref.erase(it);
            } else if (ref.size() < entries) {
                auto slot = std::uint32_t(op);
                map.insert(page, slot);
                ref.emplace(page, slot);
            }
            ASSERT_EQ(map.size(), ref.size());
        }
    }
}

TEST(ColdTracker, BitsetAndSparseAgree)
{
    ColdTracker dense(4096); // bitset path
    ColdTracker sparse(0);   // hash-set path
    Rng rng(5);
    for (int i = 0; i < 20000; ++i) {
        PageId page = rng.uniformInt(0, 4095);
        ASSERT_EQ(dense.firstTouch(page), sparse.firstTouch(page));
    }
}

TEST(ReplayWindowed, ZeroWarmupMeasuresEverything)
{
    auto profile = profileFor(workloads::Benchmark::Webmail);
    TraceGenerator gen(profile, Rng(3));
    auto w = replayWindowed(gen, PolicyKind::Lru, 10000,
                            profile.footprintPages, 30000, 0, Rng(0));
    expectSameStats(w.total, w.measured);
}

} // namespace
