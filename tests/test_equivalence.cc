/**
 * @file
 * Tests for the statistical-equivalence gate (stats/equivalence.hh):
 * the KS and CI-overlap checks must accept same-law sample sets and —
 * the part that makes the gate trustworthy — reject deliberately
 * skewed ones.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/equivalence.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace {

using namespace wsc;
using namespace wsc::stats;

std::vector<double>
lognormalSamples(std::uint64_t seed, std::size_t n, double mu,
                 double sigma)
{
    Rng rng(seed);
    std::vector<double> xs;
    xs.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        xs.push_back(rng.lognormal(mu, sigma));
    return xs;
}

TEST(KsTwoSample, SameLawPasses)
{
    auto a = lognormalSamples(1, 4000, 0.0, 0.6);
    auto b = lognormalSamples(2, 4000, 0.0, 0.6);
    auto ks = ksTwoSample(a, b);
    EXPECT_EQ(ks.n1, 4000u);
    EXPECT_EQ(ks.n2, 4000u);
    EXPECT_TRUE(ks.passes(1e-3));
    EXPECT_LT(ks.statistic, 0.05);
}

TEST(KsTwoSample, ShiftedLawFails)
{
    auto a = lognormalSamples(3, 4000, 0.0, 0.6);
    auto b = lognormalSamples(4, 4000, 0.15, 0.6);
    auto ks = ksTwoSample(a, b);
    EXPECT_FALSE(ks.passes(1e-3));
    EXPECT_LT(ks.pValue, 1e-6);
}

TEST(KsTwoSample, DiscreteTiesHandled)
{
    // Heavily tied integer samples from one law must still pass: the
    // merge walk has to drain equal values on both sides before
    // comparing ECDFs, or ties manufacture spurious D.
    Rng ra(5), rb(6);
    std::vector<double> a, b;
    for (int i = 0; i < 3000; ++i) {
        a.push_back(double(ra.uniformInt(1, 6)));
        b.push_back(double(rb.uniformInt(1, 6)));
    }
    auto ks = ksTwoSample(a, b);
    EXPECT_TRUE(ks.passes(1e-3));
}

TEST(KsTwoSample, UnequalSizesSupported)
{
    auto a = lognormalSamples(7, 500, 0.0, 0.5);
    auto b = lognormalSamples(8, 5000, 0.0, 0.5);
    EXPECT_TRUE(ksTwoSample(a, b).passes(1e-3));
}

// Block-correlated same-law data: each run-block shares a strong
// common shift, the situation that breaks pooled-KS p-values for
// ensemble per-cell samples. The permutation test must still accept.
TEST(BlockPermutationKs, CorrelatedSameLawPasses)
{
    Rng rng(30);
    auto makeSide = [&](std::size_t blocks) {
        std::vector<std::vector<double>> side;
        for (std::size_t b = 0; b < blocks; ++b) {
            double shift = rng.normal(0.0, 1.0); // block-level luck
            std::vector<double> xs;
            for (int i = 0; i < 200; ++i)
                xs.push_back(shift + rng.normal(0.0, 0.3));
            side.push_back(std::move(xs));
        }
        return side;
    };
    auto a = makeSide(5);
    auto b = makeSide(5);

    // The pooled iid p-value is (typically) garbage on this data; the
    // permutation p-value must stay comfortably away from rejection.
    auto pk = blockPermutationKs(a, b);
    EXPECT_EQ(pk.permutations, 126u);
    EXPECT_TRUE(pk.passes(EquivalenceSpec{}.permAlpha));
    EXPECT_GE(pk.pValue, 1.0 / 126.0);
}

// A within-block shape change (inflated upper tail in every "fast"
// block) survives centering and must drive the observed D to the top
// of the permutation null.
TEST(BlockPermutationKs, TailInflationFails)
{
    Rng rng(31);
    auto makeSide = [&](std::size_t blocks, bool inflate) {
        std::vector<std::vector<double>> side;
        for (std::size_t b = 0; b < blocks; ++b) {
            double shift = rng.normal(0.0, 1.0);
            std::vector<double> xs;
            for (int i = 0; i < 200; ++i) {
                double x = rng.normal(0.0, 0.3);
                if (inflate && x > 0.2)
                    x *= 1.8;
                xs.push_back(shift + x);
            }
            side.push_back(std::move(xs));
        }
        return side;
    };
    auto pk = blockPermutationKs(makeSide(5, false), makeSide(5, true));
    EXPECT_FALSE(pk.passes(EquivalenceSpec{}.permAlpha));
    EXPECT_DOUBLE_EQ(pk.pValue, 1.0 / 126.0);
}

// Centering is what buys the power: a pure block-mean shift is
// deliberately invisible to the centered statistic (that failure mode
// belongs to the CI-overlap checks), while with centering disabled
// the same data is seen as a shift.
TEST(BlockPermutationKs, CenteringRemovesPureLocationBias)
{
    Rng rng(32);
    auto makeSide = [&](std::size_t blocks, double bias) {
        std::vector<std::vector<double>> side;
        for (std::size_t b = 0; b < blocks; ++b) {
            std::vector<double> xs;
            for (int i = 0; i < 200; ++i)
                xs.push_back(bias + rng.normal(0.0, 0.3));
            side.push_back(std::move(xs));
        }
        return side;
    };
    auto a = makeSide(5, 0.0);
    auto b = makeSide(5, 2.0);
    auto centered = blockPermutationKs(a, b, true);
    EXPECT_TRUE(centered.passes(EquivalenceSpec{}.permAlpha));
    auto raw = blockPermutationKs(a, b, false);
    EXPECT_DOUBLE_EQ(raw.pValue, 1.0 / 126.0);
    EXPECT_GT(raw.statistic, 0.9);
}

TEST(BlockPermutationKs, RejectsUnsupportedBlockCounts)
{
    std::vector<std::vector<double>> two{{1.0, 2.0}, {3.0, 4.0}};
    std::vector<std::vector<double>> three{
        {1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
    EXPECT_THROW(blockPermutationKs(two, three), PanicError);
    std::vector<std::vector<double>> one{{1.0, 2.0}};
    EXPECT_THROW(blockPermutationKs(one, one), PanicError);
}

TEST(MeanCiTest, CoversKnownMean)
{
    // 30 normal(10, 1) samples: the 95% t interval should cover 10
    // and have half-width near t * s/sqrt(n) ~ 0.37.
    Rng rng(9);
    std::vector<double> xs;
    for (int i = 0; i < 30; ++i)
        xs.push_back(rng.normal(10.0, 1.0));
    auto ci = meanCi(xs, 0.95);
    EXPECT_EQ(ci.n, 30u);
    EXPECT_LT(ci.lo(), 10.0);
    EXPECT_GT(ci.hi(), 10.0);
    EXPECT_GT(ci.halfWidth, 0.0);
    EXPECT_LT(ci.halfWidth, 1.0);
}

TEST(CiOverlapTest, SameMeanOverlaps)
{
    Rng ra(10), rb(11);
    std::vector<double> a, b;
    for (int i = 0; i < 10; ++i) {
        a.push_back(ra.normal(100.0, 5.0));
        b.push_back(rb.normal(100.0, 5.0));
    }
    auto ov = ciOverlap(a, b, 0.95);
    EXPECT_TRUE(ov.overlap);
    EXPECT_LT(ov.relGap, 0.1);
}

TEST(CiOverlapTest, DistantMeansDisjoint)
{
    Rng ra(12), rb(13);
    std::vector<double> a, b;
    for (int i = 0; i < 10; ++i) {
        a.push_back(ra.normal(100.0, 2.0));
        b.push_back(rb.normal(150.0, 2.0));
    }
    auto ov = ciOverlap(a, b, 0.95);
    EXPECT_FALSE(ov.overlap);
    EXPECT_GT(ov.relGap, 0.2);
}

TEST(EquivalenceGateTest, SameLawVerdictPasses)
{
    NamedSamples dist{"latency", lognormalSamples(14, 2000, -2.0, 0.8),
                      lognormalSamples(15, 2000, -2.0, 0.8)};
    Rng ra(16), rb(17);
    NamedSamples metric{"rps", {}, {}};
    for (int i = 0; i < 8; ++i) {
        metric.exact.push_back(ra.normal(1000.0, 20.0));
        metric.fast.push_back(rb.normal(1000.0, 20.0));
    }
    auto v = equivalenceGate({dist}, {metric});
    EXPECT_TRUE(v.passed);
    ASSERT_EQ(v.checks.size(), 2u);
    EXPECT_EQ(v.checks[0].name, "latency");
    EXPECT_EQ(v.checks[0].kind, "ks");
    EXPECT_EQ(v.checks[1].name, "rps");
    EXPECT_EQ(v.checks[1].kind, "ci-overlap");
    for (const auto &c : v.checks)
        EXPECT_TRUE(c.passed);
}

TEST(EquivalenceGateTest, SkewedNegativeControlFails)
{
    // The guard-rail test: feed the gate a "fast" set whose tail is
    // deliberately inflated 25% — a realistic bug for a sampler
    // rewrite (wrong tail resolution) — and a throughput metric
    // biased 15% high. Every check must reject; if this test ever
    // passes the gate, the gate is broken, not the sampler.
    auto exactLat = lognormalSamples(18, 8000, -2.0, 0.8);
    auto fastLat = lognormalSamples(19, 8000, -2.0, 0.8);
    for (auto &x : fastLat)
        if (x > 0.25)
            x *= 1.25;

    Rng ra(20), rb(21);
    NamedSamples metric{"rps", {}, {}};
    for (int i = 0; i < 8; ++i) {
        metric.exact.push_back(ra.normal(1000.0, 10.0));
        metric.fast.push_back(rb.normal(1150.0, 10.0));
    }

    auto v = equivalenceGate({{"latency", exactLat, fastLat}}, {metric});
    EXPECT_FALSE(v.passed);
    for (const auto &c : v.checks)
        EXPECT_FALSE(c.passed) << c.name;
}

} // namespace
