/**
 * @file
 * Unit tests for the observability layer (metrics, JSON, run reports).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/run_report.hh"
#include "util/logging.hh"

namespace {

using namespace wsc;
using namespace wsc::obs;

TEST(Json, ScalarsAndNesting)
{
    JsonWriter w;
    w.beginObject();
    w.key("name").value("websearch");
    w.key("rps").value(1234.5);
    w.key("count").value(std::uint64_t(7));
    w.key("ok").value(true);
    w.key("missing").null();
    w.key("inner");
    w.beginArray();
    w.value(std::uint64_t(1));
    w.value(std::uint64_t(2));
    w.endArray();
    w.endObject();
    const std::string &s = w.str();
    EXPECT_NE(s.find("\"name\": \"websearch\""), std::string::npos);
    EXPECT_NE(s.find("\"rps\": 1234.5"), std::string::npos);
    EXPECT_NE(s.find("\"ok\": true"), std::string::npos);
    EXPECT_NE(s.find("\"missing\": null"), std::string::npos);
    EXPECT_EQ(s.front(), '{');
    EXPECT_EQ(s.back(), '}');
}

TEST(Json, EscapesControlAndQuoteCharacters)
{
    EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
    EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
    EXPECT_EQ(JsonWriter::escape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, NonFiniteDoublesSerializeAsNull)
{
    JsonWriter w;
    w.beginArray();
    w.value(std::nan(""));
    w.value(1.0 / 0.0);
    w.value(0.25);
    w.endArray();
    const std::string &s = w.str();
    EXPECT_NE(s.find("null"), std::string::npos);
    EXPECT_NE(s.find("0.25"), std::string::npos);
    EXPECT_EQ(s.find("nan"), std::string::npos);
    EXPECT_EQ(s.find("inf"), std::string::npos);
}

TEST(Json, DoublesRoundTripAtFullPrecision)
{
    JsonWriter w;
    double x = 0.1 + 0.2; // not representable as "0.3"
    w.beginArray().value(x).endArray();
    double parsed = std::stod(w.str().substr(1));
    EXPECT_EQ(parsed, x);
}

TEST(Json, MisusePanics)
{
    {
        JsonWriter w;
        w.beginObject();
        EXPECT_THROW(w.value(1.0), PanicError); // value without key
    }
    {
        JsonWriter w;
        w.beginArray();
        EXPECT_THROW(w.endObject(), PanicError); // mismatched close
    }
    {
        JsonWriter w;
        w.beginObject();
        EXPECT_THROW(w.str(), PanicError); // incomplete document
    }
    {
        JsonWriter w;
        EXPECT_THROW(w.key("k"), PanicError); // key at root
    }
}

TEST(Metrics, CounterGaugeTimerBasics)
{
    MetricRegistry reg;
    Counter &c = reg.counter("events");
    c.add();
    c.add(4);
    EXPECT_EQ(c.value(), 5u);
    // Find-or-create returns the same instance.
    EXPECT_EQ(&reg.counter("events"), &c);

    Gauge &g = reg.gauge("depth");
    g.set(3.0);
    g.raise(1.0); // below: no-op
    EXPECT_DOUBLE_EQ(g.value(), 3.0);
    g.raise(7.0);
    EXPECT_DOUBLE_EQ(g.value(), 7.0);

    Timer &t = reg.timer("eval");
    t.record(0.5);
    t.record(0.25);
    EXPECT_NEAR(t.totalSeconds(), 0.75, 1e-9);
    EXPECT_EQ(t.count(), 2u);
}

TEST(Metrics, ScopedTimerRecordsOneSample)
{
    MetricRegistry reg;
    {
        ScopedTimer st(reg.timer("scope"));
    }
    EXPECT_EQ(reg.timer("scope").count(), 1u);
    EXPECT_GE(reg.timer("scope").totalSeconds(), 0.0);
}

TEST(Metrics, SnapshotsAreNameSorted)
{
    MetricRegistry reg;
    reg.counter("zeta").add(1);
    reg.counter("alpha").add(2);
    reg.counter("mid").add(3);
    auto snap = reg.counters();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].name, "alpha");
    EXPECT_EQ(snap[1].name, "mid");
    EXPECT_EQ(snap[2].name, "zeta");
}

TEST(Metrics, MergeIsOrderIndependent)
{
    // Sum for counters, max for gauges: any merge order of per-worker
    // registries must yield identical totals (the determinism contract
    // for parallel sweeps).
    auto fill = [](MetricRegistry &r, std::uint64_t n, double peak) {
        r.counter("cells").add(n);
        r.gauge("peak_rps").raise(peak);
        r.timer("eval").record(0.1);
    };
    MetricRegistry a1, b1, a2, b2;
    fill(a1, 3, 10.0);
    fill(b1, 5, 20.0);
    fill(a2, 5, 20.0);
    fill(b2, 3, 10.0);

    MetricRegistry m1, m2;
    m1.merge(a1);
    m1.merge(b1);
    m2.merge(a2);
    m2.merge(b2);
    EXPECT_EQ(m1.counter("cells").value(), 8u);
    EXPECT_EQ(m2.counter("cells").value(), 8u);
    EXPECT_DOUBLE_EQ(m1.gauge("peak_rps").value(), 20.0);
    EXPECT_DOUBLE_EQ(m2.gauge("peak_rps").value(), 20.0);
    EXPECT_EQ(m1.timer("eval").count(), 2u);
}

TEST(Metrics, ConcurrentUpdatesDoNotLose)
{
    MetricRegistry reg;
    Counter &c = reg.counter("hits");
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t)
        workers.emplace_back([&reg, &c] {
            for (int i = 0; i < 10000; ++i) {
                c.add();
                // Exercise the creation lock from several threads too.
                reg.counter("hits").add();
            }
        });
    for (auto &w : workers)
        w.join();
    EXPECT_EQ(c.value(), 80000u);
}

CellReport
sampleCell(const std::string &design, const std::string &bottleneck)
{
    CellReport c;
    c.design = design;
    c.benchmark = "websearch";
    c.interactive = true;
    c.perf = 0.8;
    c.sustainableRps = 120.0;
    c.latency = {0.05, 0.04, 0.2, 0.4};
    c.qosViolationFraction = 0.03;
    c.qosLatencyLimit = 0.5;
    c.bottleneck = bottleneck;
    c.stations.push_back({"cpu", 0.9, 1000, 12, 3.5});
    c.stations.push_back({"disk", 0.4, 500, 4, 0.7});
    c.kernel = {5000, 4800, 200, 1, 300};
    c.searchProbes = 9;
    c.wallSeconds = 1.25;
    return c;
}

TEST(RunReport, CellJsonCarriesAllSections)
{
    auto json = toJson(sampleCell("emb1", "cpu"));
    EXPECT_NE(json.find("\"design\": \"emb1\""), std::string::npos);
    EXPECT_NE(json.find("\"sustainable_rps\": 120"), std::string::npos);
    EXPECT_NE(json.find("\"p95\": 0.2"), std::string::npos);
    EXPECT_NE(json.find("\"bottleneck\": \"cpu\""), std::string::npos);
    EXPECT_NE(json.find("\"dispatched\": 4800"), std::string::npos);
    EXPECT_NE(json.find("\"peak_depth\": 12"), std::string::npos);
    EXPECT_NE(json.find("\"wall_seconds\""), std::string::npos);
}

TEST(RunReport, RollupCountsBottlenecksAndTotals)
{
    SweepReport r;
    r.cells.push_back(sampleCell("a", "cpu"));
    r.cells.push_back(sampleCell("b", "cpu"));
    r.cells.push_back(sampleCell("c", "disk"));
    auto roll = r.rollup();
    EXPECT_EQ(roll.cells, 3u);
    EXPECT_EQ(roll.eventsDispatched, 3u * 4800u);
    EXPECT_EQ(roll.searchProbes, 27u);
    ASSERT_EQ(roll.bottlenecks.size(), 2u);
    EXPECT_EQ(roll.bottlenecks[0].station, "cpu");
    EXPECT_EQ(roll.bottlenecks[0].cells, 2u);
    EXPECT_EQ(roll.bottlenecks[1].station, "disk");
    EXPECT_EQ(roll.bottlenecks[1].cells, 1u);
}

TEST(RunReport, TimingExclusionMakesReportsComparable)
{
    // Two sweeps with identical simulation content but different
    // wall-clock must serialize identically once timings are excluded
    // — this is what the parallel-determinism test relies on.
    SweepReport a, b;
    a.tool = b.tool = "wsc_eval";
    a.baseSeed = b.baseSeed = 42;
    a.threads = 1;
    b.threads = 8;
    a.cells.push_back(sampleCell("emb1", "cpu"));
    b.cells.push_back(sampleCell("emb1", "cpu"));
    a.cells[0].wallSeconds = 9.0;
    b.cells[0].wallSeconds = 0.5;

    MetricRegistry ra, rb;
    ra.counter("cells").add(1);
    rb.counter("cells").add(1);
    ra.timer("sweep").record(9.0);
    rb.timer("sweep").record(0.5);
    a.captureMetrics(ra);
    b.captureMetrics(rb);

    ReportOptions noTimings{false};
    a.threads = b.threads = 0; // thread count is run config, not data
    EXPECT_EQ(toJson(a, noTimings), toJson(b, noTimings));
    EXPECT_NE(toJson(a), toJson(b)); // timings differ when included
    EXPECT_EQ(toJson(a, noTimings).find("wall_seconds"),
              std::string::npos);
    EXPECT_EQ(toJson(a, noTimings).find("timers"), std::string::npos);
}

TEST(RunReport, SweepJsonIncludesMetricsSections)
{
    SweepReport r;
    r.tool = "wsc_eval";
    r.baseSeed = 7;
    r.threads = 2;
    r.cells.push_back(sampleCell("emb1", "cpu"));
    MetricRegistry reg;
    reg.counter("eval.cells").add(1);
    reg.gauge("eval.peak_rps").set(120.0);
    reg.timer("eval.wall").record(0.5);
    r.captureMetrics(reg);
    auto json = toJson(r);
    EXPECT_NE(json.find("\"tool\": \"wsc_eval\""), std::string::npos);
    EXPECT_NE(json.find("\"base_seed\": 7"), std::string::npos);
    EXPECT_NE(json.find("\"eval.cells\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"eval.peak_rps\": 120"), std::string::npos);
    EXPECT_NE(json.find("\"timers\""), std::string::npos);
    EXPECT_NE(json.find("\"rollup\""), std::string::npos);
}

} // namespace
