/**
 * @file
 * Unit tests for the flash disk-cache subsystem (Table 3).
 */

#include <gtest/gtest.h>

#include "flashcache/devices.hh"
#include "flashcache/flash_cache.hh"
#include "flashcache/io_trace.hh"
#include "flashcache/storage.hh"
#include "platform/catalog.hh"

namespace {

using namespace wsc;
using namespace wsc::flashcache;

TEST(Devices, Table3aParameters)
{
    auto lap = laptopDisk();
    EXPECT_DOUBLE_EQ(lap.capacityGB, 200.0);
    EXPECT_DOUBLE_EQ(lap.bandwidthMBs, 20.0);
    EXPECT_DOUBLE_EQ(lap.avgAccessMs, 15.0);
    EXPECT_DOUBLE_EQ(lap.watts, 2.0);
    EXPECT_DOUBLE_EQ(lap.dollars, 80.0);
    EXPECT_TRUE(lap.remote);

    auto lap2 = laptop2Disk();
    EXPECT_DOUBLE_EQ(lap2.dollars, 40.0);
    EXPECT_DOUBLE_EQ(lap2.bandwidthMBs, lap.bandwidthMBs);

    auto desk = desktopDisk();
    EXPECT_DOUBLE_EQ(desk.capacityGB, 500.0);
    EXPECT_DOUBLE_EQ(desk.bandwidthMBs, 70.0);
    EXPECT_DOUBLE_EQ(desk.avgAccessMs, 4.0);
    EXPECT_DOUBLE_EQ(desk.watts, 10.0);
    EXPECT_DOUBLE_EQ(desk.dollars, 120.0);
    EXPECT_FALSE(desk.remote);

    FlashSpec flash;
    EXPECT_DOUBLE_EQ(flash.capacityGB, 1.0);
    EXPECT_DOUBLE_EQ(flash.dollars, 14.0);
    EXPECT_DOUBLE_EQ(flash.watts, 0.5);
    EXPECT_DOUBLE_EQ(flash.bandwidthMBs, 50.0);
    EXPECT_DOUBLE_EQ(flash.readLatencyUs, 20.0);
    EXPECT_DOUBLE_EQ(flash.writeLatencyUs, 200.0);
    EXPECT_DOUBLE_EQ(flash.eraseLatencyMs, 1.2);
}

TEST(Cache, HitOnSecondAccess)
{
    FlashCache cache(FlashSpec{});
    EXPECT_FALSE(cache.lookup(7));
    EXPECT_TRUE(cache.lookup(7));
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().lookups, 2u);
}

TEST(Cache, CapacityInBlocks)
{
    FlashCache cache(FlashSpec{}, 4.0);
    // 1 GiB / 4 KiB = 262144 blocks.
    EXPECT_EQ(cache.capacityBlocks(), 262144u);
}

TEST(Cache, LruEvictionUnderPressure)
{
    FlashSpec tiny;
    tiny.capacityGB = 4.0 * 2 / (1024.0 * 1024.0); // two 4 KB blocks
    FlashCache cache(tiny);
    ASSERT_EQ(cache.capacityBlocks(), 2u);
    cache.lookup(1);
    cache.lookup(2);
    EXPECT_TRUE(cache.lookup(1));  // 1 MRU
    cache.lookup(3);               // evicts 2
    EXPECT_TRUE(cache.lookup(1));
    EXPECT_FALSE(cache.lookup(2));
    EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(Cache, ReinsertResidentAtCapacityIsIdempotent)
{
    // Regression: insert on an already-resident block used to evict a
    // victim, push a duplicate recency node, and overwrite the map
    // iterator — leaving a stale node that a later eviction erased
    // out from under the live MRU block.
    FlashSpec tiny;
    tiny.capacityGB = 4.0 * 3 / (1024.0 * 1024.0); // three 4 KB blocks
    FlashCache cache(tiny);
    ASSERT_EQ(cache.capacityBlocks(), 3u);

    cache.admit(1);
    cache.admit(2);
    cache.admit(3);
    ASSERT_EQ(cache.residentBlocks(), 3u);

    // Re-admitting a resident block at capacity must not evict,
    // duplicate, or write.
    auto evictions = cache.stats().evictions;
    auto written = cache.stats().bytesWrittenToFlash;
    cache.admit(2);
    EXPECT_EQ(cache.stats().evictions, evictions);
    EXPECT_EQ(cache.stats().bytesWrittenToFlash, written);
    EXPECT_EQ(cache.residentBlocks(), 3u);
    EXPECT_EQ(cache.lruChainLength(), cache.residentBlocks());

    // Re-admission refreshed 2's recency: pressure now evicts 1 (the
    // true LRU), and all surviving blocks still hit.
    cache.admit(4);
    EXPECT_EQ(cache.residentBlocks(), 3u);
    EXPECT_EQ(cache.lruChainLength(), cache.residentBlocks());
    EXPECT_FALSE(cache.lookup(1)); // miss re-inserts 1, evicting 3
    EXPECT_TRUE(cache.lookup(2));
    EXPECT_TRUE(cache.lookup(4));

    // Churn the same working set hard; the map and recency list must
    // never diverge.
    for (int round = 0; round < 100; ++round) {
        cache.admit(BlockId(round % 5));
        cache.writeBlock(BlockId((round * 3) % 5));
        cache.lookup(BlockId((round * 7) % 5));
        ASSERT_LE(cache.residentBlocks(), cache.capacityBlocks());
        ASSERT_EQ(cache.lruChainLength(), cache.residentBlocks());
    }
}

TEST(Cache, WriteBlockTracksWear)
{
    FlashCache cache(FlashSpec{});
    auto before = cache.stats().bytesWrittenToFlash;
    cache.writeBlock(1);
    cache.writeBlock(1);
    EXPECT_GT(cache.stats().bytesWrittenToFlash, before);
}

TEST(Cache, LifetimeMath)
{
    FlashCache cache(FlashSpec{});
    // Writing the full 1 GiB device once per day: 100k cycles is
    // about 274 years.
    double bytes_per_sec = 1.0 * 1024 * 1024 * 1024 / 86400.0;
    EXPECT_NEAR(cache.lifetimeYears(bytes_per_sec), 100000.0 / 365.0,
                2.0);
}

TEST(IoTrace, ProfilesForAllBenchmarks)
{
    for (auto b : workloads::allBenchmarks) {
        auto p = ioProfileFor(b);
        EXPECT_GT(p.footprintPages, 0u);
    }
}

TEST(IoTrace, InteractiveWorkloadsCacheWell)
{
    // The flash cache pays off on the skewed interactive workloads;
    // streaming mapreduce barely reuses blocks (its 5 GB corpus blows
    // through the 1 GB device).
    FlashSpec spec;
    auto ws = evaluateFlashCache(workloads::Benchmark::Websearch, spec,
                                 400000, 5e6, 1);
    auto wc = evaluateFlashCache(workloads::Benchmark::MapredWc, spec,
                                 400000, 5e6, 1);
    EXPECT_GT(ws.hitRate, 0.6);
    EXPECT_LT(wc.hitRate, 0.5);
    EXPECT_GT(ws.hitRate, wc.hitRate);
}

TEST(IoTrace, LifetimeWithinDepreciationForInteractive)
{
    // Paper Section 3.5: 3-year depreciation makes flash viable for
    // the interactive workloads.
    FlashSpec spec;
    auto ws = evaluateFlashCache(workloads::Benchmark::Websearch, spec,
                                 400000, 5e6, 2);
    EXPECT_GT(ws.lifetimeYears, 3.0);
}

TEST(IoTrace, SweepMatchesPerSpecEvaluationExactly)
{
    // The single-pass stack-distance sweep must report exactly what
    // per-capacity replays report — bitwise on the doubles, since
    // both sides run the same arithmetic on the same integer counts.
    std::vector<FlashSpec> specs;
    for (double gb : {0.25, 0.5, 1.0, 2.0, 4.0}) {
        FlashSpec s;
        s.capacityGB = gb;
        specs.push_back(s);
    }
    for (auto b : {workloads::Benchmark::Websearch,
                   workloads::Benchmark::Webmail}) {
        auto swept = evaluateFlashCacheSweep(b, specs, 300000, 5e6, 3);
        ASSERT_EQ(swept.size(), specs.size());
        for (std::size_t i = 0; i < specs.size(); ++i) {
            SCOPED_TRACE(specs[i].capacityGB);
            auto direct =
                evaluateFlashCache(b, specs[i], 300000, 5e6, 3);
            EXPECT_EQ(swept[i].hitRate, direct.hitRate);
            EXPECT_EQ(swept[i].wearCyclesPerBlock,
                      direct.wearCyclesPerBlock);
            EXPECT_EQ(swept[i].lifetimeYears, direct.lifetimeYears);
        }
    }
}

TEST(Storage, FourOptionsInOrder)
{
    auto all = StorageOption::all();
    ASSERT_EQ(all.size(), 4u);
    EXPECT_EQ(all[0].name, "Local Desktop");
    EXPECT_EQ(all[1].name, "Remote Laptop");
    EXPECT_EQ(all[2].name, "Remote Laptop + Flash");
    EXPECT_EQ(all[3].name, "Remote Laptop-2 + Flash");
    EXPECT_FALSE(all[0].hasFlashCache);
    EXPECT_TRUE(all[2].hasFlashCache);
}

TEST(Storage, PerfOptionsCarrySanOverhead)
{
    auto opts = perfOptionsFor(StorageOption::remoteLaptop(),
                               workloads::Benchmark::Ytube);
    ASSERT_TRUE(opts.diskOverride.has_value());
    EXPECT_DOUBLE_EQ(opts.extraDiskAccessMs, sanAccessOverheadMs);
    EXPECT_DOUBLE_EQ(opts.flashCacheHitRate, 0.0);

    auto local = perfOptionsFor(StorageOption::localDesktop(),
                                workloads::Benchmark::Ytube);
    EXPECT_DOUBLE_EQ(local.extraDiskAccessMs, 0.0);
}

TEST(Storage, FlashOptionsCarryHitRate)
{
    auto opts = perfOptionsFor(StorageOption::remoteLaptopFlash(),
                               workloads::Benchmark::Websearch);
    EXPECT_GT(opts.flashCacheHitRate, 0.5);
    EXPECT_LT(opts.flashCacheHitRate, 1.0);
    EXPECT_DOUBLE_EQ(opts.flashReadMBs, 50.0);
}

TEST(Storage, CostApplicationReplacesDiskAddsFlash)
{
    auto emb1 = platform::makeSystem(platform::SystemClass::Emb1);
    auto cfg = withStorage(emb1, StorageOption::remoteLaptopFlash());
    EXPECT_DOUBLE_EQ(cfg.disk.dollars, 80.0);
    EXPECT_DOUBLE_EQ(cfg.disk.watts, 2.0);
    EXPECT_DOUBLE_EQ(cfg.boardMgmtDollars,
                     emb1.boardMgmtDollars + 14.0);
    EXPECT_DOUBLE_EQ(cfg.boardMgmtWatts, emb1.boardMgmtWatts + 0.5);

    auto plain = withStorage(emb1, StorageOption::remoteLaptop());
    EXPECT_DOUBLE_EQ(plain.boardMgmtDollars, emb1.boardMgmtDollars);
}

TEST(Storage, Laptop2CheaperSamePerformance)
{
    auto a = StorageOption::remoteLaptopFlash();
    auto b = StorageOption::remoteLaptop2Flash();
    EXPECT_LT(b.disk.dollars, a.disk.dollars);
    EXPECT_DOUBLE_EQ(b.disk.bandwidthMBs, a.disk.bandwidthMBs);
    EXPECT_DOUBLE_EQ(b.disk.avgAccessMs, a.disk.avgAccessMs);
}

} // namespace
