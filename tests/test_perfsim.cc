/**
 * @file
 * Unit tests for the performance simulator: calibration, stations,
 * analytic bounds, batch runner.
 */

#include <gtest/gtest.h>

#include "perfsim/batch_runner.hh"
#include "perfsim/calibration.hh"
#include "perfsim/perf_eval.hh"
#include "perfsim/throughput.hh"
#include "platform/catalog.hh"
#include "workloads/mapreduce.hh"
#include "workloads/websearch.hh"
#include "workloads/ytube.hh"

namespace {

using namespace wsc;
using namespace wsc::perfsim;
using namespace wsc::platform;

CpuModel
refCpu()
{
    return makeSystem(SystemClass::Srvr1).cpu;
}

TEST(Calibration, RawCapabilityScalesWithCoresAndFreq)
{
    workloads::WorkloadTraits t;
    t.cacheBeta = 0.0;
    CpuModel a{"", 1, 2, 2.0, true, 32, 2048, 0, 0};
    CpuModel b{"", 1, 4, 2.0, true, 32, 2048, 0, 0};
    CpuModel c{"", 1, 2, 1.0, true, 32, 2048, 0, 0};
    EXPECT_DOUBLE_EQ(rawCapability(b, t), 2.0 * rawCapability(a, t));
    EXPECT_DOUBLE_EQ(rawCapability(c, t), 0.5 * rawCapability(a, t));
}

TEST(Calibration, InOrderPenaltyApplied)
{
    workloads::WorkloadTraits t;
    t.cacheBeta = 0.0;
    t.inorderIpcFactor = 0.6;
    CpuModel ooo{"", 1, 1, 1.0, true, 32, 1024, 0, 0};
    CpuModel ino{"", 1, 1, 1.0, false, 32, 1024, 0, 0};
    EXPECT_DOUBLE_EQ(rawCapability(ino, t),
                     0.6 * rawCapability(ooo, t));
}

TEST(Calibration, CacheBetaShrinksSmallCaches)
{
    workloads::WorkloadTraits t;
    t.cacheBeta = 0.1;
    CpuModel big{"", 1, 1, 1.0, true, 32, 8192, 0, 0};
    CpuModel small = big;
    small.l2KB = 1024;
    EXPECT_LT(rawCapability(small, t), rawCapability(big, t));
    EXPECT_GT(rawCapability(small, t), 0.7 * rawCapability(big, t));
}

TEST(Calibration, GammaIsIdentityAtReference)
{
    workloads::WorkloadTraits t;
    t.cpuScalingGamma = 0.55;
    auto ref = refCpu();
    EXPECT_NEAR(effectiveCapability(ref, ref, t),
                rawCapability(ref, t), 1e-9);
}

TEST(Calibration, GammaFlattensBelowOne)
{
    // With gamma < 1 a weaker platform's effective capability exceeds
    // its raw capability (software bottlenecks flatten differences).
    workloads::WorkloadTraits t;
    t.cpuScalingGamma = 0.55;
    auto ref = refCpu();
    auto weak = makeSystem(SystemClass::Emb2).cpu;
    EXPECT_GT(effectiveCapability(weak, ref, t),
              rawCapability(weak, t));
    EXPECT_LT(effectiveCapability(weak, ref, t),
              rawCapability(ref, t));
}

TEST(Calibration, PaperWebsearchRatios)
{
    // The fitted calibration must reproduce Figure 2(c)'s websearch
    // CPU-capability ratios: srvr2/srvr1 = 68%, within tolerance.
    workloads::Websearch ws;
    auto t = ws.traits();
    auto ref = refCpu();
    auto ratio = [&](SystemClass c) {
        return effectiveCapability(makeSystem(c).cpu, ref, t) /
               effectiveCapability(ref, ref, t);
    };
    EXPECT_NEAR(ratio(SystemClass::Srvr2), 0.68, 0.03);
    EXPECT_NEAR(ratio(SystemClass::Desk), 0.36, 0.06);
    EXPECT_NEAR(ratio(SystemClass::Emb1), 0.24, 0.05);
}

TEST(Stations, DerivedFromPlatformAndTraits)
{
    PerfEvaluator ev;
    workloads::Websearch ws;
    auto st = ev.stationsFor(makeSystem(SystemClass::Srvr1),
                             ws.traits(), {});
    EXPECT_EQ(st.cpuSlots, 8u);
    EXPECT_NEAR(st.cpuCapacityGHz, 20.8, 0.01);
    EXPECT_DOUBLE_EQ(st.nicMBs, 1250.0); // 10 GbE
    EXPECT_DOUBLE_EQ(st.diskAccessMs, 2.5);
}

TEST(Stations, StreamPacingCapsNic)
{
    PerfEvaluator ev;
    workloads::Ytube yt;
    auto st = ev.stationsFor(makeSystem(SystemClass::Srvr1),
                             yt.traits(), {});
    EXPECT_DOUBLE_EQ(st.nicMBs, 135.0); // capped despite 10 GbE
    auto st2 = ev.stationsFor(makeSystem(SystemClass::Srvr2),
                              yt.traits(), {});
    EXPECT_DOUBLE_EQ(st2.nicMBs, 125.0); // 1 GbE below the cap
}

TEST(Stations, FlashBlendImprovesDisk)
{
    PerfEvaluator ev;
    workloads::Ytube yt;
    PerfOptions base;
    PerfOptions with_flash;
    with_flash.flashCacheHitRate = 0.8;
    auto st0 = ev.stationsFor(makeSystem(SystemClass::Emb1),
                              yt.traits(), base);
    auto st1 = ev.stationsFor(makeSystem(SystemClass::Emb1),
                              yt.traits(), with_flash);
    // Flash wins on access time; bandwidth blends between the flash
    // (50 MB/s) and disk (70 MB/s) device rates.
    EXPECT_LT(st1.diskAccessMs, st0.diskAccessMs);
    EXPECT_GT(st1.diskReadMBs, 50.0);
    EXPECT_LT(st1.diskReadMBs, st0.diskReadMBs);
}

TEST(AnalyticBound, MatchesBottleneckHandComputation)
{
    workloads::Ytube yt;
    StationConfig st;
    st.cpuCapacityGHz = 100.0; // CPU never binds
    st.cpuSlots = 4;
    st.nicMBs = 125.0;
    st.diskReadMBs = 1e9;
    st.diskCacheHitRate = 1.0; // disk never binds
    double bound = analyticBound(yt, st);
    // NIC-bound: 125 MB/s over 1.5 MB mean transfers.
    EXPECT_NEAR(bound, 125.0 / 1.5, 1.0);
}

TEST(AnalyticBound, SlowdownReducesBound)
{
    workloads::Websearch ws;
    PerfEvaluator ev;
    auto st = ev.stationsFor(makeSystem(SystemClass::Emb2), ws.traits(),
                             {});
    double b0 = analyticBound(ws, st);
    st.serviceSlowdown = 1.5;
    double b1 = analyticBound(ws, st);
    EXPECT_LT(b1, b0);
}

TEST(SimulateInteractive, LowLoadMeetsQos)
{
    workloads::Ytube yt;
    PerfEvaluator ev;
    auto st = ev.stationsFor(makeSystem(SystemClass::Srvr2),
                             yt.traits(), {});
    Rng rng(21);
    SimWindow w;
    w.warmupSeconds = 2.0;
    w.measureSeconds = 20.0;
    auto r = simulateInteractive(yt, st, 10.0, w, rng);
    EXPECT_FALSE(r.saturated);
    EXPECT_TRUE(r.passes(yt.qos()));
    EXPECT_GT(r.completed, 100u);
    EXPECT_LT(r.p95Latency, yt.qos().latencyLimit);
}

TEST(SimulateInteractive, OverloadDetected)
{
    workloads::Ytube yt;
    PerfEvaluator ev;
    auto st = ev.stationsFor(makeSystem(SystemClass::Srvr2),
                             yt.traits(), {});
    Rng rng(22);
    SimWindow w;
    w.warmupSeconds = 2.0;
    w.measureSeconds = 20.0;
    // 3x the NIC bound: must fail QoS/stability.
    auto r = simulateInteractive(yt, st, 3.0 * 125.0 / 1.5, w, rng);
    EXPECT_FALSE(r.passes(yt.qos()));
}

TEST(SimulateInteractive, ObservabilityFieldsPopulated)
{
    workloads::Ytube yt;
    PerfEvaluator ev;
    auto st = ev.stationsFor(makeSystem(SystemClass::Srvr2),
                             yt.traits(), {});
    Rng rng(31);
    SimWindow w;
    w.warmupSeconds = 2.0;
    w.measureSeconds = 20.0;
    auto r = simulateInteractive(yt, st, 10.0, w, rng);

    // Percentiles are monotone and bracket the mean's neighborhood.
    EXPECT_GT(r.p50Latency, 0.0);
    EXPECT_LE(r.p50Latency, r.p95Latency);
    EXPECT_LE(r.p95Latency, r.p99Latency);

    ASSERT_EQ(r.stations.size(), 3u);
    EXPECT_EQ(r.stations[0].name, "cpu");
    EXPECT_EQ(r.stations[1].name, "disk");
    EXPECT_EQ(r.stations[2].name, "nic");
    // Station snapshots agree with the flat utilization fields.
    EXPECT_DOUBLE_EQ(r.stations[0].utilization, r.cpuUtilization);
    EXPECT_DOUBLE_EQ(r.stations[2].utilization, r.nicUtilization);
    EXPECT_GE(r.peakInFlight, 1u);
    EXPECT_FALSE(r.bottleneck().empty());

    // Kernel counters: every completion implies dispatched events,
    // and nothing dispatched can exceed what was scheduled.
    EXPECT_GT(r.kernel.dispatched, r.completed);
    EXPECT_LE(r.kernel.dispatched + r.kernel.cancelled,
              r.kernel.scheduled);
    EXPECT_GE(r.kernel.peakHeap, 1u);
}

TEST(SimulateInteractive, TracerObservesKernelActivity)
{
    workloads::Ytube yt;
    PerfEvaluator ev;
    auto st = ev.stationsFor(makeSystem(SystemClass::Srvr2),
                             yt.traits(), {});
    SimWindow w;
    w.warmupSeconds = 1.0;
    w.measureSeconds = 5.0;

    // Same seed with and without a tracer: identical results, and the
    // trace record counts match the kernel counters.
    Rng rngPlain(33);
    auto plain = simulateInteractive(yt, st, 10.0, w, rngPlain);

    std::uint64_t scheduled = 0, dispatched = 0, cancelled = 0;
    w.tracer = [&](const sim::EventQueue::TraceRecord &r) {
        using Kind = sim::EventQueue::TraceRecord::Kind;
        if (r.kind == Kind::Schedule)
            ++scheduled;
        else if (r.kind == Kind::Dispatch)
            ++dispatched;
        else
            ++cancelled;
    };
    Rng rngTraced(33);
    auto traced = simulateInteractive(yt, st, 10.0, w, rngTraced);

    EXPECT_EQ(traced.completed, plain.completed);
    EXPECT_EQ(traced.p95Latency, plain.p95Latency);
    EXPECT_EQ(scheduled, traced.kernel.scheduled);
    EXPECT_EQ(dispatched, traced.kernel.dispatched);
    EXPECT_EQ(cancelled, traced.kernel.cancelled);
}

TEST(Throughput, SearchBracketsBelowAnalyticBound)
{
    workloads::Ytube yt;
    PerfEvaluator ev;
    auto st = ev.stationsFor(makeSystem(SystemClass::Emb2), yt.traits(),
                             {});
    Rng rng(23);
    SearchParams sp;
    sp.iterations = 6;
    sp.window.warmupSeconds = 2.0;
    sp.window.measureSeconds = 15.0;
    auto r = findSustainableRps(yt, st, sp, rng);
    EXPECT_GT(r.sustainableRps, 0.0);
    EXPECT_LE(r.sustainableRps, r.analyticBoundRps * 1.05);
    // The sustained point itself passed QoS.
    EXPECT_TRUE(r.atSustainable.passes(yt.qos()));
}

TEST(Throughput, SearchAccumulatesKernelTotalsAcrossProbes)
{
    workloads::Ytube yt;
    PerfEvaluator ev;
    auto st = ev.stationsFor(makeSystem(SystemClass::Emb2), yt.traits(),
                             {});
    Rng rng(27);
    SearchParams sp;
    sp.iterations = 5;
    sp.window.warmupSeconds = 1.0;
    sp.window.measureSeconds = 6.0;
    auto r = findSustainableRps(yt, st, sp, rng);
    // Bracketing probes plus the bisection iterations all count.
    EXPECT_GT(r.probes, sp.iterations);
    // Totals aggregate over every probe, so they dominate the single
    // sustained run's counters.
    EXPECT_GT(r.kernelTotals.dispatched,
              r.atSustainable.kernel.dispatched);
    EXPECT_GE(r.kernelTotals.scheduled, r.kernelTotals.dispatched);
    EXPECT_GE(r.kernelTotals.peakHeap, r.atSustainable.kernel.peakHeap);
}

TEST(BatchRunner, MakespanMatchesBottleneck)
{
    workloads::MapReduce wc(workloads::MapReduceApp::WordCount);
    PerfEvaluator ev;
    auto st = ev.stationsFor(makeSystem(SystemClass::Srvr1),
                             wc.traits(), {});
    Rng rng(24);
    auto r = runBatch(wc, st, rng);
    EXPECT_EQ(r.tasksRun, 88u);
    // srvr1 word count is disk-bound: 5 GB at 75 MB/s plus access
    // overheads is about 70 s.
    EXPECT_GT(r.makespanSeconds, 55.0);
    EXPECT_LT(r.makespanSeconds, 95.0);
    EXPECT_GT(r.diskUtilization, 0.8);
}

TEST(BatchRunner, CpuBoundOnWeakPlatform)
{
    workloads::MapReduce wc(workloads::MapReduceApp::WordCount);
    PerfEvaluator ev;
    auto st = ev.stationsFor(makeSystem(SystemClass::Emb2), wc.traits(),
                             {});
    Rng rng(25);
    auto r = runBatch(wc, st, rng);
    // emb2's CPU takes ~700 s for 485 GHz-seconds of map work.
    EXPECT_GT(r.makespanSeconds, 400.0);
    EXPECT_GT(r.cpuUtilization, 0.8);
}

TEST(BatchRunner, SlowdownStretchesMakespan)
{
    workloads::MapReduce wc(workloads::MapReduceApp::WordCount);
    PerfEvaluator ev;
    auto st = ev.stationsFor(makeSystem(SystemClass::Emb2), wc.traits(),
                             {});
    Rng a(26), b(26);
    auto r0 = runBatch(wc, st, a);
    st.serviceSlowdown = 1.2;
    auto r1 = runBatch(wc, st, b);
    EXPECT_NEAR(r1.makespanSeconds / r0.makespanSeconds, 1.2, 0.05);
}

TEST(BatchRunner, EmptyFaultPolicyMatchesClassicRunExactly)
{
    workloads::MapReduce wc(workloads::MapReduceApp::WordCount);
    PerfEvaluator ev;
    auto st = ev.stationsFor(makeSystem(SystemClass::Srvr1),
                             wc.traits(), {});
    Rng a(40), b(40);
    auto classic = runBatch(wc, st, a);
    auto faulted = runBatch(wc, st, b, perfsim::BatchFaultPolicy{});
    // Same RNG, same event sequence: bit-identical outcome.
    EXPECT_EQ(faulted.makespanSeconds, classic.makespanSeconds);
    EXPECT_EQ(faulted.tasksRun, classic.tasksRun);
    EXPECT_EQ(faulted.kernel.dispatched, classic.kernel.dispatched);
    EXPECT_EQ(faulted.tasksReexecuted, 0u);
    EXPECT_EQ(faulted.checkpointRestores, 0u);
    EXPECT_EQ(faulted.lostWorkSeconds, 0.0);
}

TEST(BatchRunner, OutageForcesReexecutionAndStretchesMakespan)
{
    workloads::MapReduce wc(workloads::MapReduceApp::WordCount);
    PerfEvaluator ev;
    auto st = ev.stationsFor(makeSystem(SystemClass::Srvr1),
                             wc.traits(), {});
    Rng a(41), b(41);
    auto clean = runBatch(wc, st, a);

    // A mid-job outage: tasks in flight at t=20 are killed and redone.
    perfsim::BatchFaultPolicy policy;
    policy.downWindows = {{20.0, 30.0}};
    auto faulted = runBatch(wc, st, b, policy);
    EXPECT_GT(faulted.tasksReexecuted, 0u);
    EXPECT_GT(faulted.lostWorkSeconds, 0.0);
    // Outage length plus redone work both stretch the job.
    EXPECT_GT(faulted.makespanSeconds, clean.makespanSeconds + 10.0);
    EXPECT_EQ(faulted.tasksRun, clean.tasksRun);
    EXPECT_EQ(faulted.checkpointRestores, 0u); // no checkpointing
}

TEST(BatchRunner, CheckpointingRecoversLostWork)
{
    workloads::MapReduce wc(workloads::MapReduceApp::WordCount);
    PerfEvaluator ev;
    auto st = ev.stationsFor(makeSystem(SystemClass::Emb2), wc.traits(),
                             {});

    perfsim::BatchFaultPolicy full;
    full.downWindows = {{100.0, 130.0}, {300.0, 330.0}};
    Rng a(42);
    auto noCkpt = runBatch(wc, st, a, full);
    ASSERT_GT(noCkpt.tasksReexecuted, 0u);

    perfsim::BatchFaultPolicy ckpt = full;
    ckpt.checkpointIntervalSeconds = 2.0;
    Rng b(42);
    auto withCkpt = runBatch(wc, st, b, ckpt);
    EXPECT_GT(withCkpt.checkpointRestores, 0u);
    // Checkpoints shorten re-execution: less progress discarded and a
    // shorter (or equal) job.
    EXPECT_LT(withCkpt.lostWorkSeconds, noCkpt.lostWorkSeconds);
    EXPECT_LE(withCkpt.makespanSeconds, noCkpt.makespanSeconds);
}

TEST(BatchRunner, ReportsStationStatsAndKernelCounters)
{
    workloads::MapReduce wc(workloads::MapReduceApp::WordCount);
    PerfEvaluator ev;
    auto st = ev.stationsFor(makeSystem(SystemClass::Srvr1),
                             wc.traits(), {});
    Rng rng(28);
    auto r = runBatch(wc, st, rng);
    ASSERT_EQ(r.stations.size(), 2u);
    EXPECT_EQ(r.stations[0].name, "cpu");
    EXPECT_EQ(r.stations[1].name, "disk");
    EXPECT_DOUBLE_EQ(r.stations[0].utilization, r.cpuUtilization);
    EXPECT_DOUBLE_EQ(r.stations[1].utilization, r.diskUtilization);
    // Every task touches the CPU station at least once.
    EXPECT_GE(r.stations[0].completed, r.tasksRun);
    EXPECT_GT(r.stations[1].meanDepth, 0.0);
    EXPECT_GT(r.kernel.dispatched, 0u);
    EXPECT_GE(r.kernel.scheduled, r.kernel.dispatched);
}

TEST(PerfEvaluator, MeasurementCarriesObservability)
{
    PerfEvaluator ev;

    auto mi = ev.measure(makeSystem(SystemClass::Srvr2),
                         workloads::Benchmark::Ytube);
    EXPECT_TRUE(mi.interactive);
    EXPECT_GT(mi.qosLatencyLimit, 0.0);
    EXPECT_GT(mi.p50Latency, 0.0);
    EXPECT_LE(mi.p50Latency, mi.p99Latency);
    EXPECT_FALSE(mi.bottleneck.empty());
    ASSERT_EQ(mi.stations.size(), 3u);
    EXPECT_GT(mi.searchProbes, 1u);
    EXPECT_GT(mi.kernel.dispatched, 0u);

    auto mb = ev.measure(makeSystem(SystemClass::Srvr2),
                         workloads::Benchmark::MapredWc);
    EXPECT_FALSE(mb.interactive);
    EXPECT_EQ(mb.searchProbes, 1u);
    ASSERT_EQ(mb.stations.size(), 2u);
    EXPECT_TRUE(mb.bottleneck == "cpu" || mb.bottleneck == "disk");
    EXPECT_GT(mb.kernel.dispatched, 0u);
}

TEST(PerfEvaluator, BatchMeasurementDeterministic)
{
    PerfEvaluator ev;
    auto s = makeSystem(SystemClass::Desk);
    auto m1 = ev.measure(s, workloads::Benchmark::MapredWc);
    auto m2 = ev.measure(s, workloads::Benchmark::MapredWc);
    EXPECT_DOUBLE_EQ(m1.perf, m2.perf);
    EXPECT_FALSE(m1.interactive);
    EXPECT_GT(m1.makespanSeconds, 0.0);
}

TEST(PerfEvaluator, MapreduceOrderingAcrossPlatforms)
{
    // Figure 2(c) ordering: srvr1 fastest, emb2 slowest by far.
    PerfEvaluator ev;
    auto perf = [&](SystemClass c) {
        return ev.measure(makeSystem(c), workloads::Benchmark::MapredWc)
            .perf;
    };
    double s1 = perf(SystemClass::Srvr1);
    double e1 = perf(SystemClass::Emb1);
    double e2 = perf(SystemClass::Emb2);
    EXPECT_GT(s1, e1);
    EXPECT_GT(e1, 3.0 * e2); // the emb1 -> emb2 cliff
}

} // namespace
