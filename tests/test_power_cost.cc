/**
 * @file
 * Unit tests for the power and cost models, validated against the
 * paper's published Figure 1(a) numbers.
 */

#include <gtest/gtest.h>

#include "cost/burdened_power.hh"
#include "cost/tco.hh"
#include "power/rack_power.hh"
#include "util/logging.hh"

namespace {

using namespace wsc;
using namespace wsc::cost;
using namespace wsc::power;

ComponentPower
srvr1Power()
{
    return {210.0, 25.0, 15.0, 50.0, 40.0};
}

ComponentCost
srvr1Cost()
{
    return {1700.0, 350.0, 275.0, 400.0, 500.0};
}

ComponentPower
srvr2Power()
{
    return {105.0, 25.0, 10.0, 40.0, 35.0};
}

ComponentCost
srvr2Cost()
{
    return {650.0, 350.0, 120.0, 250.0, 250.0};
}

TcoModel
paperModel()
{
    return TcoModel(RackCostParams{}, RackPowerParams{},
                    BurdenedPowerParams{});
}

TEST(ComponentPower, TotalsAndScaling)
{
    auto p = srvr1Power();
    EXPECT_DOUBLE_EQ(p.total(), 340.0);
    EXPECT_DOUBLE_EQ(p.scaled(0.5).total(), 170.0);
    auto q = p + p;
    EXPECT_DOUBLE_EQ(q.total(), 680.0);
}

TEST(RackPower, SwitchShareAmortized)
{
    RackPower rp(srvr1Power(), RackPowerParams{});
    EXPECT_DOUBLE_EQ(rp.serverWatts(), 340.0);
    EXPECT_DOUBLE_EQ(rp.perServerWithSwitch(), 341.0);
    EXPECT_DOUBLE_EQ(rp.rackWatts(), 340.0 * 40 + 40.0);
    EXPECT_DOUBLE_EQ(rp.sustainedPerServer(0.75), 341.0 * 0.75);
}

TEST(RackPower, PaperRackPowerClaims)
{
    // Section 3.2: srvr1 consumes 13.6 kW/rack; emb1 "only 2.7 kW".
    // (The paper's 2.7 kW implies 67.5 W/server, more than its own
    // Table 2 emb1 value of 52 W; we assert srvr1 exactly and the
    // at-least-5x reduction the comparison communicates.)
    RackPower s1(srvr1Power(), RackPowerParams{});
    EXPECT_NEAR(s1.rackWatts() / 1000.0, 13.6, 0.1);
    ComponentPower emb1{13.0, 12.0, 10.0, 10.0, 7.0}; // 52 W total
    RackPower e1(emb1, RackPowerParams{});
    EXPECT_LT(e1.rackWatts() / 1000.0, 2.8);
    EXPECT_GE(s1.rackWatts() / e1.rackWatts(), 5.0);
}

TEST(RackPower, InvalidActivityFactorPanics)
{
    RackPower rp(srvr1Power(), RackPowerParams{});
    EXPECT_THROW(rp.sustainedPerServer(0.0), PanicError);
    EXPECT_THROW(rp.sustainedPerServer(1.5), PanicError);
}

TEST(BurdenedPower, MultiplierMatchesPaperParameters)
{
    BurdenedPowerParams p;
    // 1 + 1.33 + 0.8 * (1 + 0.667) = 3.6636
    EXPECT_NEAR(p.burdenMultiplier(), 3.6636, 1e-4);
}

TEST(BurdenedPower, Srvr1FigureOneTotal)
{
    // Paper Figure 1(a): srvr1 3-yr power & cooling = $2,464 at 341 W
    // (with switch share), activity factor 0.75, $100/MWh.
    BurdenedPowerParams p;
    double cost = burdenedPowerCoolingCost(p, 341.0);
    EXPECT_NEAR(cost, 2464.0, 15.0);
}

TEST(BurdenedPower, Srvr2FigureOneTotal)
{
    BurdenedPowerParams p;
    double cost = burdenedPowerCoolingCost(p, 216.0);
    EXPECT_NEAR(cost, 1561.0, 10.0);
}

TEST(BurdenedPower, LinearInPowerAndTariff)
{
    BurdenedPowerParams p;
    double base = burdenedPowerCoolingCost(p, 100.0);
    EXPECT_NEAR(burdenedPowerCoolingCost(p, 200.0), 2.0 * base, 1e-9);
    p.tariffPerMWh = 200.0;
    EXPECT_NEAR(burdenedPowerCoolingCost(p, 100.0), 2.0 * base, 1e-9);
}

TEST(BurdenedPower, SustainedVariantSkipsActivityFactor)
{
    BurdenedPowerParams p;
    EXPECT_NEAR(burdenedPowerCoolingCost(p, 100.0),
                burdenedCostOfSustainedWatts(p, 75.0), 1e-9);
}

TEST(Tco, Srvr1TotalMatchesFigureOne)
{
    auto r = paperModel().evaluate(srvr1Cost(), srvr1Power());
    EXPECT_DOUBLE_EQ(r.serverHw(), 3225.0);
    EXPECT_NEAR(r.infrastructure(), 3294.0, 1.0); // Table 2 Inf-$
    EXPECT_NEAR(r.powerCooling(), 2464.0, 15.0);
    EXPECT_NEAR(r.tco(), 5758.0, 15.0);
    EXPECT_DOUBLE_EQ(r.wattsWithSwitch, 341.0);
}

TEST(Tco, Srvr2TotalMatchesFigureOne)
{
    auto r = paperModel().evaluate(srvr2Cost(), srvr2Power());
    EXPECT_DOUBLE_EQ(r.serverHw(), 1620.0);
    EXPECT_NEAR(r.infrastructure(), 1689.0, 1.0);
    EXPECT_NEAR(r.powerCooling(), 1561.0, 10.0);
    EXPECT_NEAR(r.tco(), 3249.0, 10.0);
}

TEST(Tco, Srvr2BreakdownMatchesFigureOnePie)
{
    // Figure 1(b) pie: CPU HW 20%, Mem HW 11%, Disk HW 4%, Board HW 8%,
    // Fan HW 8%, Rack HW 2%, Mem P&C 6%, Disk P&C 2%, Board P&C 9%,
    // Fans P&C 8%, Rack P&C ~0%, CPU P&C 22%.
    auto model = paperModel();
    auto r = model.evaluate(srvr2Cost(), srvr2Power());
    auto slices = model.breakdown(r);
    auto get = [&](const std::string &label) {
        for (const auto &s : slices)
            if (s.label == label)
                return s.fraction;
        ADD_FAILURE() << "missing slice " << label;
        return 0.0;
    };
    EXPECT_NEAR(get("CPU HW"), 0.20, 0.01);
    EXPECT_NEAR(get("CPU P&C"), 0.22, 0.015);
    EXPECT_NEAR(get("Mem HW"), 0.11, 0.01);
    EXPECT_NEAR(get("Mem P&C"), 0.06, 0.01);
    EXPECT_NEAR(get("Disk HW"), 0.04, 0.01);
    EXPECT_NEAR(get("Disk P&C"), 0.02, 0.01);
    EXPECT_NEAR(get("Board HW"), 0.08, 0.01);
    EXPECT_NEAR(get("Board P&C"), 0.09, 0.01);
    EXPECT_NEAR(get("Fan HW"), 0.08, 0.01);
    EXPECT_NEAR(get("Fans P&C"), 0.08, 0.01);
    EXPECT_NEAR(get("Rack HW"), 0.02, 0.01);
    EXPECT_NEAR(get("Rack P&C"), 0.00, 0.01);
}

TEST(Tco, BreakdownSumsToOne)
{
    auto model = paperModel();
    auto r = model.evaluate(srvr1Cost(), srvr1Power());
    double total = 0.0;
    for (const auto &s : model.breakdown(r))
        total += s.fraction;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Tco, PowerCoolingComparableToHardware)
{
    // Paper Section 3.1: "power and cooling costs are comparable to
    // hardware costs" for the server configurations.
    auto model = paperModel();
    for (auto [hw, p] : {std::pair{srvr1Cost(), srvr1Power()},
                         std::pair{srvr2Cost(), srvr2Power()}}) {
        auto r = model.evaluate(hw, p);
        double ratio = r.powerCooling() / r.infrastructure();
        EXPECT_GT(ratio, 0.5);
        EXPECT_LT(ratio, 1.5);
    }
}

TEST(Tco, MismatchedRackParamsPanic)
{
    RackCostParams rc;
    rc.serversPerRack = 20;
    EXPECT_THROW(TcoModel(rc, RackPowerParams{}, BurdenedPowerParams{}),
                 PanicError);
}

/** Tariff sweep: TCO must be monotonically increasing in the tariff. */
class TariffSweepTest : public ::testing::TestWithParam<double>
{};

TEST_P(TariffSweepTest, TcoMonotoneInTariff)
{
    BurdenedPowerParams cheap;
    cheap.tariffPerMWh = GetParam();
    BurdenedPowerParams costly = cheap;
    costly.tariffPerMWh = GetParam() + 20.0;
    TcoModel m1(RackCostParams{}, RackPowerParams{}, cheap);
    TcoModel m2(RackCostParams{}, RackPowerParams{}, costly);
    auto r1 = m1.evaluate(srvr1Cost(), srvr1Power());
    auto r2 = m2.evaluate(srvr1Cost(), srvr1Power());
    EXPECT_LT(r1.tco(), r2.tco());
    EXPECT_DOUBLE_EQ(r1.infrastructure(), r2.infrastructure());
}

INSTANTIATE_TEST_SUITE_P(PaperTariffRange, TariffSweepTest,
                         ::testing::Values(50.0, 80.0, 100.0, 140.0,
                                           170.0));

} // namespace
