/**
 * @file
 * The parallel-evaluation determinism contract: fanning a sweep out
 * over a thread pool must produce bit-identical metrics to the serial
 * path, at every pool width. This is what lets BENCH results and
 * paper-table reproductions be compared across machines regardless of
 * --threads.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/design_space.hh"
#include "core/evaluator.hh"
#include "core/sweep_report.hh"
#include "obs/run_report.hh"
#include "perfsim/cluster_sim.hh"
#include "platform/catalog.hh"
#include "sim/fast_mode.hh"

namespace {

using namespace wsc;
using namespace wsc::core;

EvaluatorParams
fastParams()
{
    // Small windows keep the suite quick; determinism does not depend
    // on the window sizes.
    EvaluatorParams p;
    p.search.window.warmupSeconds = 1.0;
    p.search.window.measureSeconds = 4.0;
    p.search.iterations = 3;
    return p;
}

std::vector<EvalCell>
sweepCells()
{
    DesignSpaceOptions opts;
    opts.allPackaging = false;
    opts.allMemorySharing = false;
    opts.allStorage = false;
    std::vector<EvalCell> cells;
    for (const auto &d : enumerateDesigns(opts)) {
        cells.push_back({d, workloads::Benchmark::MapredWc});
        cells.push_back({d, workloads::Benchmark::Websearch});
    }
    return cells;
}

void
expectBitIdentical(const std::vector<EfficiencyMetrics> &a,
                   const std::vector<EfficiencyMetrics> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        // Bitwise comparison, not EXPECT_DOUBLE_EQ: the contract is
        // identity, not closeness.
        EXPECT_EQ(std::memcmp(&a[i].perf, &b[i].perf, sizeof(double)),
                  0)
            << "perf differs at cell " << i;
        EXPECT_EQ(
            std::memcmp(&a[i].watts, &b[i].watts, sizeof(double)), 0)
            << "watts differs at cell " << i;
        EXPECT_EQ(std::memcmp(&a[i].tcoDollars, &b[i].tcoDollars,
                              sizeof(double)),
                  0)
            << "tco differs at cell " << i;
    }
}

TEST(ParallelDeterminism, BatchMatchesSerialAtEveryWidth)
{
    auto cells = sweepCells();

    // Serial reference: plain evaluate() calls, no pool involved.
    DesignEvaluator ref(fastParams());
    std::vector<EfficiencyMetrics> serial;
    for (const auto &cell : cells)
        serial.push_back(ref.evaluate(cell.design, cell.benchmark));

    for (unsigned threads : {1u, 2u, 8u}) {
        ThreadPool pool(threads);
        DesignEvaluator ev(fastParams());
        auto batch = ev.evaluateBatch(cells, &pool);
        expectBitIdentical(serial, batch);
    }
}

TEST(ParallelDeterminism, WarmCacheReturnsSameBits)
{
    auto cells = sweepCells();
    ThreadPool pool(4);
    DesignEvaluator ev(fastParams());
    auto cold = ev.evaluateBatch(cells, &pool);
    auto warm = ev.evaluateBatch(cells, &pool);
    expectBitIdentical(cold, warm);
}

TEST(ParallelDeterminism, DuplicateCellsShareOneSimulation)
{
    auto cells = sweepCells();
    auto doubled = cells;
    doubled.insert(doubled.end(), cells.begin(), cells.end());

    ThreadPool pool(4);
    DesignEvaluator ev(fastParams());
    auto out = ev.evaluateBatch(doubled, &pool);
    ASSERT_EQ(out.size(), doubled.size());
    for (std::size_t i = 0; i < cells.size(); ++i)
        EXPECT_EQ(out[i].perf, out[cells.size() + i].perf);
}

TEST(ParallelDeterminism, ReportJsonIdenticalAtEveryWidth)
{
    // The observability layer must not weaken the contract: with
    // wall-clock timings excluded, the serialized run report — latency
    // percentiles, station stats, kernel counters, rollup — is
    // byte-identical at every pool width.
    auto cells = sweepCells();
    obs::ReportOptions noTimings;
    noTimings.includeTimings = false;

    std::vector<std::string> reports;
    for (unsigned threads : {1u, 2u, 8u}) {
        ThreadPool pool(threads);
        DesignEvaluator ev(fastParams());
        ev.evaluateBatch(cells, &pool);
        auto report = buildSweepReport(ev, cells, "test");
        // Metric counters include nondeterministic-order-insensitive
        // sums only; cache-hit counts depend on batch vs report
        // replay, which is identical across widths here.
        reports.push_back(obs::toJson(report, noTimings));
    }
    ASSERT_EQ(reports.size(), 3u);
    EXPECT_EQ(reports[0], reports[1]);
    EXPECT_EQ(reports[0], reports[2]);
    // Sanity: the comparison is over real content.
    EXPECT_NE(reports[0].find("\"kernel\""), std::string::npos);
    EXPECT_NE(reports[0].find("\"p95\""), std::string::npos);
    EXPECT_NE(reports[0].find("\"bottleneck\""), std::string::npos);
    // Exact-mode reports must not mention fast mode at all — the
    // field's absence is what keeps them byte-identical to
    // pre-fast-mode output.
    EXPECT_EQ(reports[0].find("\"fast_mode\""), std::string::npos);
}

TEST(ParallelDeterminism, FastModeStampOnlyWhenEnabled)
{
    auto cells = sweepCells();
    obs::ReportOptions noTimings;
    noTimings.includeTimings = false;

    DesignEvaluator ev(fastParams());
    ev.evaluateBatch(cells, nullptr);
    auto report = buildSweepReport(ev, cells, "test");
    auto plain = obs::toJson(report, noTimings);
    EXPECT_EQ(plain.find("\"fast_mode\""), std::string::npos);

    report.fastMode = sim::FastModeConfig::contractVersion();
    auto stamped = obs::toJson(report, noTimings);
    EXPECT_NE(stamped.find("\"fast_mode\": \"fast-mode/1\""),
              std::string::npos);
}

TEST(ParallelDeterminism, ClusterSweepMatchesAtEveryWidth)
{
    perfsim::PerfEvaluator perf;
    auto emb1 = platform::makeSystem(platform::SystemClass::Emb1);
    auto workload =
        workloads::makeBenchmark(workloads::Benchmark::Websearch);
    auto st = perf.stationsFor(emb1, workload->traits(), {});

    perfsim::SearchParams sp;
    sp.iterations = 3;
    sp.window.warmupSeconds = 1.0;
    sp.window.measureSeconds = 4.0;

    std::vector<std::vector<perfsim::ClusterSweepPoint>> runs;
    for (unsigned threads : {1u, 2u, 8u}) {
        ThreadPool pool(threads);
        runs.push_back(perfsim::sweepClusterScaling(
            workloads::Benchmark::Websearch, st, {2u, 4u},
            {perfsim::DispatchPolicy::RoundRobin,
             perfsim::DispatchPolicy::LeastOutstanding},
            sp, 99, &pool));
    }
    for (std::size_t r = 1; r < runs.size(); ++r) {
        ASSERT_EQ(runs[r].size(), runs[0].size());
        for (std::size_t i = 0; i < runs[0].size(); ++i) {
            EXPECT_EQ(runs[r][i].servers, runs[0][i].servers);
            EXPECT_EQ(runs[r][i].policy, runs[0][i].policy);
            EXPECT_EQ(runs[r][i].result.clusterRps,
                      runs[0][i].result.clusterRps)
                << "point " << i << " at width run " << r;
            EXPECT_EQ(runs[r][i].result.scalingEfficiency,
                      runs[0][i].result.scalingEfficiency);
        }
    }
}

} // namespace
