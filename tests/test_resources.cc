/**
 * @file
 * Unit tests for the queueing resources (processor sharing, FIFO).
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/resources.hh"
#include "util/logging.hh"

namespace {

using namespace wsc;
using namespace wsc::sim;

TEST(PsResource, SingleJobRunsAtFullSlotRate)
{
    EventQueue eq;
    PsResource cpu(eq, "cpu", 4.0, 4); // 4 slots, 1 unit/s each
    double done_at = -1;
    cpu.submit(2.0, [&] { done_at = eq.now(); });
    eq.runAll();
    EXPECT_NEAR(done_at, 2.0, 1e-9);
    EXPECT_EQ(cpu.completed(), 1u);
}

TEST(PsResource, BelowSaturationJobsDontInterfere)
{
    EventQueue eq;
    PsResource cpu(eq, "cpu", 2.0, 2);
    std::vector<double> done;
    cpu.submit(1.0, [&] { done.push_back(eq.now()); });
    cpu.submit(1.0, [&] { done.push_back(eq.now()); });
    eq.runAll();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_NEAR(done[0], 1.0, 1e-9);
    EXPECT_NEAR(done[1], 1.0, 1e-9);
}

TEST(PsResource, AboveSaturationSharesEqually)
{
    EventQueue eq;
    PsResource cpu(eq, "cpu", 1.0, 1); // one slot, 1 unit/s
    std::vector<double> done;
    // Two equal jobs time-share: each sees rate 0.5, both finish at 2.
    cpu.submit(1.0, [&] { done.push_back(eq.now()); });
    cpu.submit(1.0, [&] { done.push_back(eq.now()); });
    eq.runAll();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_NEAR(done[0], 2.0, 1e-9);
    EXPECT_NEAR(done[1], 2.0, 1e-9);
}

TEST(PsResource, LateArrivalSlowsExistingJob)
{
    EventQueue eq;
    PsResource cpu(eq, "cpu", 1.0, 1);
    double first_done = -1, second_done = -1;
    cpu.submit(1.0, [&] { first_done = eq.now(); });
    // At t=0.5 the first job has 0.5 remaining; a second job arrives and
    // both run at rate 0.5. First finishes at 0.5 + 1.0 = 1.5; the
    // second then runs alone: remaining 1.0 - 0.5 = 0.5 at rate 1,
    // finishing at 2.0.
    eq.schedule(0.5, [&] {
        cpu.submit(1.0, [&] { second_done = eq.now(); });
    });
    eq.runAll();
    EXPECT_NEAR(first_done, 1.5, 1e-9);
    EXPECT_NEAR(second_done, 2.0, 1e-9);
}

TEST(PsResource, ZeroWorkCompletesImmediately)
{
    EventQueue eq;
    PsResource cpu(eq, "cpu", 1.0, 1);
    double done_at = -1;
    eq.schedule(1.0, [&] {
        cpu.submit(0.0, [&] { done_at = eq.now(); });
    });
    eq.runAll();
    EXPECT_NEAR(done_at, 1.0, 1e-12);
}

TEST(PsResource, BandwidthPipeFairShare)
{
    // A shared link is PS with one slot: n transfers each get B/n.
    EventQueue eq;
    PsResource nic(eq, "nic", 100.0, 1); // 100 MB/s
    std::vector<double> done;
    for (int i = 0; i < 4; ++i)
        nic.submit(100.0, [&] { done.push_back(eq.now()); });
    eq.runAll();
    ASSERT_EQ(done.size(), 4u);
    // 400 MB total at 100 MB/s aggregate: all finish at t=4.
    for (double t : done)
        EXPECT_NEAR(t, 4.0, 1e-9);
}

TEST(PsResource, UtilizationTracksLoad)
{
    EventQueue eq;
    PsResource cpu(eq, "cpu", 2.0, 2);
    cpu.submit(1.0, [] {}); // one of two slots busy for 1s
    eq.run(2.0);
    // Busy 50% of capacity for half the 2s window: utilization = 0.25.
    EXPECT_NEAR(cpu.utilization(), 0.25, 1e-9);
}

TEST(PsResource, CompletionCanResubmit)
{
    EventQueue eq;
    PsResource cpu(eq, "cpu", 1.0, 1);
    int rounds = 0;
    std::function<void()> again = [&] {
        if (++rounds < 3)
            cpu.submit(1.0, again);
    };
    cpu.submit(1.0, again);
    eq.runAll();
    EXPECT_EQ(rounds, 3);
    EXPECT_NEAR(eq.now(), 3.0, 1e-9);
}

TEST(PsResource, NegativeWorkPanics)
{
    EventQueue eq;
    PsResource cpu(eq, "cpu", 1.0, 1);
    EXPECT_THROW(cpu.submit(-1.0, [] {}), PanicError);
}

TEST(FifoResource, SerializesOnOneServer)
{
    EventQueue eq;
    FifoResource disk(eq, "disk", 1);
    std::vector<double> done;
    disk.submit(1.0, [&] { done.push_back(eq.now()); });
    disk.submit(1.0, [&] { done.push_back(eq.now()); });
    disk.submit(1.0, [&] { done.push_back(eq.now()); });
    eq.runAll();
    ASSERT_EQ(done.size(), 3u);
    EXPECT_NEAR(done[0], 1.0, 1e-9);
    EXPECT_NEAR(done[1], 2.0, 1e-9);
    EXPECT_NEAR(done[2], 3.0, 1e-9);
}

TEST(FifoResource, ParallelServers)
{
    EventQueue eq;
    FifoResource disk(eq, "disk", 2);
    std::vector<double> done;
    for (int i = 0; i < 4; ++i)
        disk.submit(1.0, [&] { done.push_back(eq.now()); });
    eq.runAll();
    ASSERT_EQ(done.size(), 4u);
    EXPECT_NEAR(done[0], 1.0, 1e-9);
    EXPECT_NEAR(done[1], 1.0, 1e-9);
    EXPECT_NEAR(done[2], 2.0, 1e-9);
    EXPECT_NEAR(done[3], 2.0, 1e-9);
}

TEST(FifoResource, FifoOrderPreserved)
{
    EventQueue eq;
    FifoResource disk(eq, "disk", 1);
    std::vector<int> order;
    // Different service times; order of completion must follow
    // submission order on a single FIFO server regardless.
    disk.submit(0.5, [&] { order.push_back(0); });
    disk.submit(0.1, [&] { order.push_back(1); });
    disk.submit(0.3, [&] { order.push_back(2); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(FifoResource, QueueDepthVisible)
{
    EventQueue eq;
    FifoResource disk(eq, "disk", 1);
    disk.submit(1.0, [] {});
    disk.submit(1.0, [] {});
    disk.submit(1.0, [] {});
    EXPECT_EQ(disk.inService(), 1u);
    EXPECT_EQ(disk.queued(), 2u);
    eq.runAll();
    EXPECT_EQ(disk.queued(), 0u);
    EXPECT_EQ(disk.completed(), 3u);
}

TEST(FifoResource, UtilizationTracksBusyFraction)
{
    EventQueue eq;
    FifoResource disk(eq, "disk", 1);
    disk.submit(1.0, [] {});
    eq.run(4.0);
    EXPECT_NEAR(disk.utilization(), 0.25, 1e-9);
}

TEST(FifoResource, CompletionCanResubmit)
{
    EventQueue eq;
    FifoResource disk(eq, "disk", 1);
    int count = 0;
    std::function<void()> again = [&] {
        if (++count < 5)
            disk.submit(0.5, again);
    };
    disk.submit(0.5, again);
    eq.runAll();
    EXPECT_EQ(count, 5);
    EXPECT_NEAR(eq.now(), 2.5, 1e-9);
}

TEST(FifoResource, ZeroServiceTimeOk)
{
    EventQueue eq;
    FifoResource disk(eq, "disk", 1);
    bool ran = false;
    disk.submit(0.0, [&] { ran = true; });
    eq.runAll();
    EXPECT_TRUE(ran);
}

TEST(PsResource, StatsSnapshotDepthAndUtilization)
{
    EventQueue eq;
    PsResource cpu(eq, "cpu", 2.0, 2);
    // Two 1-unit jobs run side by side for 1s, then the station idles
    // until t=4: mean depth 2 * (1/4) = 0.5, peak 2.
    cpu.submit(1.0, [] {});
    cpu.submit(1.0, [] {});
    eq.run(4.0);
    auto s = cpu.stats();
    EXPECT_EQ(s.name, "cpu");
    EXPECT_EQ(s.completed, 2u);
    EXPECT_EQ(s.peakDepth, 2u);
    EXPECT_NEAR(s.meanDepth, 0.5, 1e-9);
    EXPECT_NEAR(s.utilization, 0.25, 1e-9);
}

TEST(PsResource, StatsCountInProgressInterval)
{
    EventQueue eq;
    PsResource cpu(eq, "cpu", 1.0, 1);
    cpu.submit(10.0, [] {});
    eq.run(2.0);
    // The job is still running; the snapshot must include the open
    // interval since the last internal update.
    auto s = cpu.stats();
    EXPECT_EQ(s.completed, 0u);
    EXPECT_EQ(s.peakDepth, 1u);
    EXPECT_NEAR(s.meanDepth, 1.0, 1e-9);
    EXPECT_NEAR(s.utilization, 1.0, 1e-9);
}

TEST(FifoResource, StatsCountQueuedRequestsInDepth)
{
    EventQueue eq;
    FifoResource disk(eq, "disk", 1);
    // Three back-to-back 1s requests: depth starts at 3 (1 in service,
    // 2 queued), drains one per second, done at t=3; idle until t=4.
    // Mean depth = (3 + 2 + 1 + 0) / 4 = 1.5.
    disk.submit(1.0, [] {});
    disk.submit(1.0, [] {});
    disk.submit(1.0, [] {});
    eq.run(4.0);
    auto s = disk.stats();
    EXPECT_EQ(s.name, "disk");
    EXPECT_EQ(s.completed, 3u);
    EXPECT_EQ(s.peakDepth, 3u);
    EXPECT_NEAR(s.meanDepth, 1.5, 1e-9);
    EXPECT_NEAR(s.utilization, 0.75, 1e-9);
}

TEST(FifoResource, StatsFreshStationIsZero)
{
    EventQueue eq;
    FifoResource disk(eq, "disk", 1);
    auto s = disk.stats();
    EXPECT_EQ(s.completed, 0u);
    EXPECT_EQ(s.peakDepth, 0u);
    EXPECT_DOUBLE_EQ(s.meanDepth, 0.0);
    EXPECT_DOUBLE_EQ(s.utilization, 0.0);
}

} // namespace
