/**
 * @file
 * Unit tests for the stats module.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/histogram.hh"
#include "stats/means.hh"
#include "stats/percentile.hh"
#include "stats/summary.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace {

using namespace wsc;
using namespace wsc::stats;

TEST(Summary, BasicMoments)
{
    Summary s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, EmptyIsSafe)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, MergeMatchesSequential)
{
    Rng r(3);
    Summary all, a, b;
    for (int i = 0; i < 1000; ++i) {
        double x = r.normal(10.0, 2.0);
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Summary, MergeWithEmpty)
{
    Summary a, b;
    a.add(1.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    b.merge(a);
    EXPECT_EQ(b.count(), 1u);
    EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Percentile, NearestRankSemantics)
{
    PercentileTracker p;
    for (int i = 1; i <= 100; ++i)
        p.add(double(i));
    EXPECT_DOUBLE_EQ(p.quantile(0.95), 95.0);
    EXPECT_DOUBLE_EQ(p.quantile(0.50), 50.0);
    EXPECT_DOUBLE_EQ(p.quantile(1.0), 100.0);
    EXPECT_DOUBLE_EQ(p.quantile(0.0), 1.0);
}

TEST(Percentile, FractionAbove)
{
    PercentileTracker p;
    for (int i = 1; i <= 10; ++i)
        p.add(double(i));
    EXPECT_DOUBLE_EQ(p.fractionAbove(8.0), 0.2);
    EXPECT_DOUBLE_EQ(p.fractionAbove(10.0), 0.0);
    EXPECT_DOUBLE_EQ(p.fractionAbove(0.0), 1.0);
}

TEST(Percentile, QosBoundaryIsStrict)
{
    // The paper's QoS is "95% of requests complete in < limit": a
    // sample exactly at the limit violates. fractionAbove() (strict >)
    // must exclude it; fractionAtLeast() (>=) must include it.
    PercentileTracker p;
    p.add(0.4);
    p.add(0.5);
    p.add(0.5);
    p.add(0.6);
    EXPECT_DOUBLE_EQ(p.fractionAbove(0.5), 0.25);
    EXPECT_DOUBLE_EQ(p.fractionAtLeast(0.5), 0.75);
    // Away from any sample the two agree.
    EXPECT_DOUBLE_EQ(p.fractionAbove(0.45), p.fractionAtLeast(0.45));
    // Degenerate cases.
    EXPECT_DOUBLE_EQ(p.fractionAtLeast(0.0), 1.0);
    EXPECT_DOUBLE_EQ(p.fractionAtLeast(0.7), 0.0);
    PercentileTracker empty;
    EXPECT_DOUBLE_EQ(empty.fractionAtLeast(1.0), 0.0);
}

TEST(Histogram, ZeroBinsRejectedBeforeWidthDerivation)
{
    // The bins == 0 path must throw from the validation assert, not
    // divide first and build an inf-width histogram.
    try {
        Histogram h(0.0, 1.0, 0);
        FAIL() << "zero-bin histogram not rejected";
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("at least one bin"),
                  std::string::npos);
    }
}

TEST(Percentile, InterleavedAddAndQuery)
{
    PercentileTracker p;
    p.add(5.0);
    EXPECT_DOUBLE_EQ(p.quantile(0.5), 5.0);
    p.add(1.0);
    p.add(9.0);
    EXPECT_DOUBLE_EQ(p.quantile(0.5), 5.0);
    p.clear();
    EXPECT_EQ(p.count(), 0u);
}

TEST(Percentile, EmptyQuantilePanics)
{
    PercentileTracker p;
    EXPECT_THROW(p.quantile(0.5), PanicError);
}

TEST(Histogram, BinningAndOverflow)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-1.0);
    h.add(0.0);
    h.add(9.999);
    h.add(10.0);
    h.add(5.5);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_EQ(h.binCount(5), 1u);
    EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, EdgesAreHalfOpen)
{
    Histogram h(0.0, 4.0, 4);
    h.add(1.0); // belongs to [1,2), not [0,1)
    EXPECT_EQ(h.binCount(0), 0u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_DOUBLE_EQ(h.binLow(1), 1.0);
    EXPECT_DOUBLE_EQ(h.binHigh(1), 2.0);
}

TEST(Histogram, InvalidConstructionPanics)
{
    EXPECT_THROW(Histogram(1.0, 1.0, 4), PanicError);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), PanicError);
}

TEST(Means, Harmonic)
{
    // HM(1,2,4) = 3 / (1 + 0.5 + 0.25) = 12/7.
    EXPECT_NEAR(harmonicMean({1.0, 2.0, 4.0}), 12.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(harmonicMean({5.0}), 5.0);
}

TEST(Means, HarmonicIsBelowArithmetic)
{
    std::vector<double> v{0.3, 0.9, 2.0, 5.0};
    EXPECT_LT(harmonicMean(v), arithmeticMean(v));
    EXPECT_LT(harmonicMean(v), geometricMean(v));
    EXPECT_LT(geometricMean(v), arithmeticMean(v));
}

TEST(Means, RejectsNonPositive)
{
    EXPECT_THROW(harmonicMean({1.0, 0.0}), PanicError);
    EXPECT_THROW(harmonicMean({}), PanicError);
    EXPECT_THROW(geometricMean({-1.0}), PanicError);
}

TEST(Means, WeightedHarmonic)
{
    // Equal weights reduce to the plain harmonic mean.
    EXPECT_NEAR(weightedHarmonicMean({1.0, 2.0, 4.0}, {1.0, 1.0, 1.0}),
                harmonicMean({1.0, 2.0, 4.0}), 1e-12);
    // All weight on one element returns that element.
    EXPECT_DOUBLE_EQ(weightedHarmonicMean({3.0, 7.0}, {0.0, 2.0}), 7.0);
}

/** Property sweep: harmonic mean of identical values is that value. */
class MeansIdentityTest : public ::testing::TestWithParam<double>
{};

TEST_P(MeansIdentityTest, AllMeansAgreeOnConstantVectors)
{
    double v = GetParam();
    std::vector<double> vec(7, v);
    EXPECT_NEAR(harmonicMean(vec), v, 1e-9 * v);
    EXPECT_NEAR(geometricMean(vec), v, 1e-9 * v);
    EXPECT_NEAR(arithmeticMean(vec), v, 1e-9 * v);
}

INSTANTIATE_TEST_SUITE_P(ConstantVectors, MeansIdentityTest,
                         ::testing::Values(0.01, 0.5, 1.0, 3.25, 1000.0));

} // namespace
