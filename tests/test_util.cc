/**
 * @file
 * Unit tests for the util module: logging, tables, strings, units.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/logging.hh"
#include "util/random.hh"
#include "util/strings.hh"
#include "util/table.hh"
#include "util/units.hh"

namespace {

using namespace wsc;

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("boom"), PanicError);
    try {
        panic("specific message");
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("specific message"),
                  std::string::npos);
    }
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config"), FatalError);
}

TEST(Logging, FatalIsNotPanic)
{
    // The two error classes must stay distinguishable for callers.
    EXPECT_THROW(
        {
            try {
                fatal("x");
            } catch (const PanicError &) {
                FAIL() << "fatal() must not throw PanicError";
            }
        },
        FatalError);
}

TEST(Logging, WarnCountsAndRespectsLevel)
{
    Logger::resetWarnCount();
    Logger::setLevel(LogLevel::Silent);
    warn("suppressed but counted");
    EXPECT_EQ(Logger::warnCount(), 1u);
    Logger::setLevel(LogLevel::Warn);
}

TEST(Logging, AssertMacroPanicsWithMessage)
{
    EXPECT_THROW(WSC_ASSERT(1 == 2, "math broke: " << 42), PanicError);
    EXPECT_NO_THROW(WSC_ASSERT(1 == 1, "fine"));
}

TEST(Table, AlignsAndCounts)
{
    Table t({"System", "Watt"});
    t.addRow({"srvr1", "340"});
    t.addRow({"emb2", "35"});
    EXPECT_EQ(t.rowCount(), 2u);
    std::string s = t.str();
    EXPECT_NE(s.find("srvr1"), std::string::npos);
    EXPECT_NE(s.find("340"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only one"}), PanicError);
}

TEST(Table, CsvOutputQuotesCommas)
{
    Table t({"name", "value"});
    t.addRow({"a,b", "1"});
    std::ostringstream ss;
    t.printCsv(ss);
    EXPECT_NE(ss.str().find("\"a,b\""), std::string::npos);
}

TEST(Table, SeparatorExcludedFromRowCount)
{
    Table t({"x"});
    t.addRow({"1"});
    t.addSeparator();
    t.addRow({"2"});
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TableFormat, Percent)
{
    EXPECT_EQ(fmtPct(1.33), "133%");
    EXPECT_EQ(fmtPct(0.675, 1), "67.5%");
}

TEST(TableFormat, Dollars)
{
    EXPECT_EQ(fmtDollars(5758.0), "$5,758");
    EXPECT_EQ(fmtDollars(120.4), "$120");
    EXPECT_EQ(fmtDollars(1234567.0), "$1,234,567");
    EXPECT_EQ(fmtDollars(-42.0), "-$42");
}

TEST(TableFormat, Fixed)
{
    EXPECT_EQ(fmtF(3.14159, 2), "3.14");
    EXPECT_EQ(fmtF(2.0, 0), "2");
}

TEST(Strings, SplitJoinRoundTrip)
{
    auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(join(parts, ","), "a,b,,c");
}

TEST(Strings, SplitTrailingDelimiter)
{
    auto parts = split("a,", ',');
    ASSERT_EQ(parts.size(), 2u);
    EXPECT_EQ(parts[1], "");
}

TEST(Strings, Trim)
{
    EXPECT_EQ(trim("  x y  "), "x y");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
}

TEST(Strings, LowerAndPrefix)
{
    EXPECT_EQ(toLower("WebSearch"), "websearch");
    EXPECT_TRUE(startsWith("websearch", "web"));
    EXPECT_FALSE(startsWith("web", "websearch"));
}

TEST(Units, EnergyConversions)
{
    // 1 kW sustained for a year is 8.76 MWh.
    EXPECT_NEAR(units::energyMWh(1000.0, 1.0), 8.76, 1e-9);
    EXPECT_NEAR(units::wattHoursToMWh(500.0, 2.0), 0.001, 1e-12);
}

TEST(Rng, DeterministicWithSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, SplitDecorrelates)
{
    Rng a(42);
    Rng child = a.split();
    // The child stream must differ from the parent's continuation.
    bool any_diff = false;
    Rng parent_copy(42);
    (void)parent_copy.raw()(); // consume the split draw
    for (int i = 0; i < 10; ++i)
        any_diff |= (child.uniform() != parent_copy.uniform());
    EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformIntBounds)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        auto v = r.uniformInt(3, 9);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 9u);
    }
}

TEST(Rng, ExponentialMeanApproximation)
{
    Rng r(11);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += r.exponential(2.5);
    EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Rng, BernoulliFrequency)
{
    Rng r(13);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.bernoulli(0.3);
    EXPECT_NEAR(double(hits) / n, 0.3, 0.01);
}

} // namespace
