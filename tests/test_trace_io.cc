/**
 * @file
 * Unit tests for trace persistence (text and binary round trips).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "memblade/trace_io.hh"
#include "memblade/trace_stream.hh"
#include "util/logging.hh"

namespace {

using namespace wsc;
using namespace wsc::memblade;

std::vector<PageId>
sampleTrace()
{
    auto profile = profileFor(workloads::Benchmark::Webmail);
    return generateTrace(profile, 5000, Rng(42));
}

TEST(TraceIo, TextRoundTrip)
{
    auto trace = sampleTrace();
    std::stringstream ss;
    writeTraceText(ss, trace);
    auto back = readTraceText(ss);
    EXPECT_EQ(back, trace);
}

TEST(TraceIo, TextSkipsCommentsAndBlanks)
{
    std::stringstream ss;
    ss << "# header\n\n12\n# mid comment\n 34 \n";
    auto t = readTraceText(ss);
    ASSERT_EQ(t.size(), 2u);
    EXPECT_EQ(t[0], 12u);
    EXPECT_EQ(t[1], 34u);
}

TEST(TraceIo, TextRejectsGarbage)
{
    std::stringstream ss;
    ss << "12\nnot-a-number\n";
    EXPECT_THROW(readTraceText(ss), FatalError);
    std::stringstream ss2;
    ss2 << "12x\n";
    EXPECT_THROW(readTraceText(ss2), FatalError);
}

TEST(TraceIo, BinaryRoundTrip)
{
    auto trace = sampleTrace();
    std::stringstream ss(std::ios::in | std::ios::out |
                         std::ios::binary);
    writeTraceBinary(ss, trace);
    auto back = readTraceBinary(ss);
    EXPECT_EQ(back, trace);
}

TEST(TraceIo, BinaryRejectsBadMagic)
{
    std::stringstream ss(std::ios::in | std::ios::out |
                         std::ios::binary);
    ss << "NOPE and more";
    EXPECT_THROW(readTraceBinary(ss), FatalError);
}

TEST(TraceIo, BinaryRejectsTruncation)
{
    auto trace = sampleTrace();
    std::stringstream ss(std::ios::in | std::ios::out |
                         std::ios::binary);
    writeTraceBinary(ss, trace);
    std::string data = ss.str();
    data.resize(data.size() / 2);
    std::stringstream cut(data,
                          std::ios::in | std::ios::binary);
    EXPECT_THROW(readTraceBinary(cut), FatalError);
}

TEST(TraceIo, FileRoundTripBothFormats)
{
    auto trace = sampleTrace();
    std::string text_path = "/tmp/wsc_test_trace.trace";
    std::string bin_path = "/tmp/wsc_test_trace.btrace";
    saveTrace(text_path, trace);
    saveTrace(bin_path, trace);
    EXPECT_EQ(loadTrace(text_path), trace);
    EXPECT_EQ(loadTrace(bin_path), trace);
    std::remove(text_path.c_str());
    std::remove(bin_path.c_str());
}

TEST(TraceIo, UnknownExtensionFatal)
{
    EXPECT_THROW(saveTrace("/tmp/x.csv", sampleTrace()), FatalError);
    EXPECT_THROW(loadTrace("/tmp/x.csv"), FatalError);
}

TEST(TraceIo, BinaryRejectsTruncatedHeader)
{
    // Cut inside the magic, inside the version byte, and inside the
    // count field: all must fatal, never allocate.
    auto trace = sampleTrace();
    std::stringstream ss(std::ios::in | std::ios::out |
                         std::ios::binary);
    writeTraceBinary(ss, trace);
    std::string data = ss.str();
    for (std::size_t cut : {std::size_t(2), std::size_t(4),
                            std::size_t(8)}) {
        std::stringstream s(data.substr(0, cut),
                            std::ios::in | std::ios::binary);
        EXPECT_THROW(readTraceBinary(s), FatalError) << cut;
    }
}

TEST(TraceIo, BinaryRejectsOversizedCount)
{
    // A corrupt header claiming ~2^61 ids must fatal on the length
    // check instead of requesting a multi-exabyte allocation.
    std::string data;
    data += "WSCT";
    data += char(2); // version
    std::uint64_t huge = std::uint64_t(1) << 61;
    data.append(reinterpret_cast<const char *>(&huge), sizeof(huge));
    data += "only a few bytes of body";
    std::stringstream ss(data, std::ios::in | std::ios::binary);
    EXPECT_THROW(readTraceBinary(ss), FatalError);
}

TEST(TraceIo, BinaryRejectsWrongVersion)
{
    std::string data;
    data += "WSCT";
    data += char(1); // pre-v2 files land here too (count low byte)
    std::uint64_t count = 0;
    data.append(reinterpret_cast<const char *>(&count), sizeof(count));
    std::stringstream ss(data, std::ios::in | std::ios::binary);
    EXPECT_THROW(readTraceBinary(ss), FatalError);
}

TEST(TraceIo, RoundTripsEmptyAndSingleAcrossFormats)
{
    for (const auto &trace :
         {std::vector<PageId>{}, std::vector<PageId>{123456789}}) {
        for (const char *name :
             {"/tmp/wsc_edge.trace", "/tmp/wsc_edge.btrace",
              "/tmp/wsc_edge.strace"}) {
            saveTrace(name, trace);
            EXPECT_EQ(loadTrace(name), trace) << name;
            std::remove(name);
        }
    }
}

TEST(TraceIo, CrossFormatRoundTripIsExact)
{
    // text -> binary -> streaming -> text must be the identity.
    auto trace = sampleTrace();
    saveTrace("/tmp/wsc_x.trace", trace);
    saveTrace("/tmp/wsc_x.btrace", loadTrace("/tmp/wsc_x.trace"));
    saveTrace("/tmp/wsc_x.strace", loadTrace("/tmp/wsc_x.btrace"));
    auto back = loadTrace("/tmp/wsc_x.strace");
    EXPECT_EQ(back, trace);
    for (const char *name : {"/tmp/wsc_x.trace", "/tmp/wsc_x.btrace",
                             "/tmp/wsc_x.strace"})
        std::remove(name);
}

TEST(TraceIo, ReplayTraceHonorsDeclaredBound)
{
    // Passing the known page bound must not change the statistics
    // (it only skips the O(n) bound scan).
    auto profile = profileFor(workloads::Benchmark::Webmail);
    auto trace = generateTrace(profile, 20000, Rng(13));
    std::size_t frames =
        std::size_t(double(profile.footprintPages) * 0.2);
    auto scanned = replayTrace(trace, frames, PolicyKind::Lru, 5);
    auto declared = replayTrace(trace, frames, PolicyKind::Lru, 5,
                                profile.footprintPages);
    EXPECT_EQ(scanned.accesses, declared.accesses);
    EXPECT_EQ(scanned.hits, declared.hits);
    EXPECT_EQ(scanned.misses, declared.misses);
    EXPECT_EQ(scanned.coldMisses, declared.coldMisses);
}

TEST(TraceIo, ReplayMatchesGeneratorPath)
{
    // Replaying a materialized trace gives identical statistics to
    // streaming the same generator directly.
    auto profile = profileFor(workloads::Benchmark::Ytube);
    auto trace = generateTrace(profile, 50000, Rng(9));
    std::size_t frames =
        std::size_t(double(profile.footprintPages) * 0.25);

    auto from_file = replayTrace(trace, frames, PolicyKind::Lru, 5);

    TwoLevelMemory direct(frames, PolicyKind::Lru, Rng(5));
    TraceGenerator gen(profile, Rng(9));
    direct.replay(gen, 50000);

    EXPECT_EQ(from_file.accesses, direct.stats().accesses);
    EXPECT_EQ(from_file.misses, direct.stats().misses);
    EXPECT_EQ(from_file.coldMisses, direct.stats().coldMisses);
}

} // namespace
