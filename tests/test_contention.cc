/**
 * @file
 * Unit tests for the memory-blade contention model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "memblade/contention.hh"
#include "memblade/two_level.hh"
#include "util/logging.hh"

namespace {

using namespace wsc;
using namespace wsc::memblade;

TEST(Contention, ZeroLoadHasNoWait)
{
    auto r = analyzeContention(0.0, BladeLinkParams{},
                               RemoteLink::pcieX4());
    EXPECT_DOUBLE_EQ(r.meanWaitSeconds, 0.0);
    EXPECT_DOUBLE_EQ(r.effectiveStallSeconds, 4.0e-6);
    EXPECT_TRUE(r.stable);
}

TEST(Contention, MD1WaitFormula)
{
    BladeLinkParams p;
    p.serviceSecondsPerFetch = 2.0e-6;
    // rho = 0.5 at 250k fetches/s: W = 0.5 * S / (2 * 0.5) = S/2.
    auto r = analyzeContention(250000.0, p, RemoteLink::pcieX4());
    EXPECT_NEAR(r.utilization, 0.5, 1e-12);
    EXPECT_NEAR(r.meanWaitSeconds, 1.0e-6, 1e-12);
    EXPECT_TRUE(r.stable);
}

TEST(Contention, OverloadUnstable)
{
    BladeLinkParams p;
    p.serviceSecondsPerFetch = 2.0e-6;
    auto r = analyzeContention(600000.0, p, RemoteLink::pcieX4());
    EXPECT_FALSE(r.stable);
    EXPECT_TRUE(std::isinf(r.meanWaitSeconds));
}

TEST(Contention, ChannelsSplitLoad)
{
    BladeLinkParams one;
    one.serviceSecondsPerFetch = 2.0e-6;
    BladeLinkParams two = one;
    two.channels = 2;
    auto r1 = analyzeContention(300000.0, one, RemoteLink::pcieX4());
    auto r2 = analyzeContention(300000.0, two, RemoteLink::pcieX4());
    EXPECT_NEAR(r2.utilization, r1.utilization / 2.0, 1e-12);
    EXPECT_LT(r2.meanWaitSeconds, r1.meanWaitSeconds);
}

TEST(Contention, SlowdownGrowsWithSharers)
{
    auto prof = profileFor(workloads::Benchmark::Websearch);
    auto st = replayProfile(prof, 0.25, PolicyKind::Random, 400000, 1);
    BladeLinkParams p;
    auto link = RemoteLink::pcieX4();
    double s1 = contendedSlowdown(st, prof, link, 1, p);
    double s16 = contendedSlowdown(st, prof, link, 16, p);
    EXPECT_GT(s16, s1);
    // A single sharer adds only its own queueing, so it is close to
    // the uncontended slowdown.
    double uncontended = slowdown(st, prof, link);
    EXPECT_NEAR(s1, uncontended, 0.2 * uncontended);
}

TEST(Contention, MaxServersRespectsBudget)
{
    auto prof = profileFor(workloads::Benchmark::Websearch);
    auto st =
        replayProfile(prof, 0.25, PolicyKind::Random, 1500000, 1);
    BladeLinkParams p;
    auto link = RemoteLink::pcieX4();
    // Budget slightly above the single-server slowdown: the blade
    // saturates once the aggregate fetch rate approaches 1/S.
    double budget = 1.5 * contendedSlowdown(st, prof, link, 1, p);
    unsigned n = maxServersPerBlade(st, prof, link, budget, p, 4096);
    ASSERT_GE(n, 1u);
    ASSERT_LT(n, 4096u);
    EXPECT_LE(contendedSlowdown(st, prof, link, n, p), budget);
    EXPECT_GT(contendedSlowdown(st, prof, link, n + 1, p), budget);
}

TEST(Contention, LowTrafficWorkloadSharesWidely)
{
    // webmail's near-zero miss traffic should allow many sharers;
    // websearch far fewer.
    BladeLinkParams p;
    auto link = RemoteLink::pcieX4();
    auto ws_prof = profileFor(workloads::Benchmark::Websearch);
    auto ws = replayProfile(ws_prof, 0.25, PolicyKind::Random, 400000, 1);
    auto wm_prof = profileFor(workloads::Benchmark::Webmail);
    auto wm = replayProfile(wm_prof, 0.25, PolicyKind::Random, 400000, 1);
    unsigned n_ws =
        maxServersPerBlade(ws, ws_prof, link, 0.06, p, 1024);
    unsigned n_wm =
        maxServersPerBlade(wm, wm_prof, link, 0.06, p, 1024);
    EXPECT_GT(n_wm, n_ws);
}

TEST(Contention, InvalidArgsPanic)
{
    EXPECT_THROW(analyzeContention(-1.0, BladeLinkParams{},
                                   RemoteLink::pcieX4()),
                 PanicError);
    BladeLinkParams bad;
    bad.serviceSecondsPerFetch = 0.0;
    EXPECT_THROW(analyzeContention(1.0, bad, RemoteLink::pcieX4()),
                 PanicError);
}

/** Utilization sweep: wait time grows convexly toward saturation. */
class WaitConvexityTest : public ::testing::TestWithParam<double>
{};

TEST_P(WaitConvexityTest, WaitIncreasesWithUtilization)
{
    BladeLinkParams p;
    p.serviceSecondsPerFetch = 2.0e-6;
    double rho = GetParam();
    double rate_lo = rho / p.serviceSecondsPerFetch;
    double rate_hi = (rho + 0.1) / p.serviceSecondsPerFetch;
    auto lo = analyzeContention(rate_lo, p, RemoteLink::pcieX4());
    auto hi = analyzeContention(rate_hi, p, RemoteLink::pcieX4());
    EXPECT_LT(lo.meanWaitSeconds, hi.meanWaitSeconds);
}

INSTANTIATE_TEST_SUITE_P(Utilizations, WaitConvexityTest,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.85));

} // namespace
