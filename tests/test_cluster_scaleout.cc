/**
 * @file
 * Unit tests for cluster planning, scale-out limits, and the diurnal
 * energy model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/cluster.hh"
#include "core/diurnal.hh"
#include "core/scaleout.hh"
#include "util/logging.hh"

namespace {

using namespace wsc;
using namespace wsc::core;

TEST(Cluster, BaselineAgainstItselfIsIdentity)
{
    ClusterPlanner planner;
    auto s1 = DesignConfig::baseline(platform::SystemClass::Srvr1);
    auto plan =
        planner.plan(s1, s1, 40, workloads::Benchmark::MapredWc);
    EXPECT_NEAR(plan.perfPerServer, 1.0, 1e-9);
    EXPECT_NEAR(plan.serversNeeded, 40.0, 1e-9);
    EXPECT_EQ(plan.racks, 1u);
    // 40 servers at 341 W = 13.6 kW.
    EXPECT_NEAR(plan.totalPowerKW, 13.64, 0.01);
}

TEST(Cluster, EqualPerformanceN2ClusterSmallerCheaper)
{
    // Section 3.6: at equal performance, N2 cuts power and cost.
    ClusterPlanner planner;
    auto s1 = DesignConfig::baseline(platform::SystemClass::Srvr1);
    auto n2 = DesignConfig::n2();
    auto base =
        planner.plan(s1, s1, 40, workloads::Benchmark::MapredWc);
    auto plan =
        planner.plan(n2, s1, 40, workloads::Benchmark::MapredWc);
    EXPECT_GT(plan.serversNeeded, 40.0); // slower nodes, more of them
    EXPECT_LT(plan.totalPowerKW, base.totalPowerKW * 0.6);
    EXPECT_LT(plan.totalDollars(), base.totalDollars() * 0.6);
    EXPECT_LE(plan.racks, base.racks);
}

TEST(Cluster, RealEstateChargedPerRack)
{
    ClusterParams cp;
    cp.realEstatePerRackYear = 3000.0;
    ClusterPlanner planner(cp);
    auto s1 = DesignConfig::baseline(platform::SystemClass::Srvr1);
    auto plan =
        planner.plan(s1, s1, 80, workloads::Benchmark::MapredWc);
    EXPECT_EQ(plan.racks, 2u);
    EXPECT_NEAR(plan.realEstateDollars, 2 * 3000.0 * 3.0, 1e-9);
}

TEST(ScaleOut, PerfectScalingWithoutFriction)
{
    ScaleOutParams none;
    EXPECT_DOUBLE_EQ(uslThroughput(2.0, 100.0, none), 200.0);
    EXPECT_DOUBLE_EQ(uslEfficiency(1000.0, none), 1.0);
}

TEST(ScaleOut, SigmaCapsThroughput)
{
    // With kappa = 0 the USL tends to p/sigma as n grows.
    ScaleOutParams p{0.02, 0.0};
    double huge = uslThroughput(1.0, 1e6, p);
    EXPECT_NEAR(huge, 1.0 / 0.02, 1.0);
    EXPECT_LT(uslEfficiency(100.0, p), 1.0);
}

TEST(ScaleOut, KappaCausesRetrograde)
{
    // Crosstalk makes throughput peak and then fall.
    ScaleOutParams p{0.0, 1e-4};
    double at100 = uslThroughput(1.0, 100.0, p);
    double at400 = uslThroughput(1.0, 400.0, p);
    EXPECT_GT(at100, at400);
}

TEST(ScaleOut, PenaltyIsOneWithoutFriction)
{
    EXPECT_NEAR(penalizedPerfRatio(0.25, 100.0, ScaleOutParams{}),
                0.25, 1e-12);
}

TEST(ScaleOut, SmallerNodesPayMoreFriction)
{
    // A design needing 4x the nodes loses more to sigma than the
    // baseline does.
    ScaleOutParams p{0.001, 0.0};
    double penalized = penalizedPerfRatio(0.25, 100.0, p);
    EXPECT_LT(penalized, 0.25);
    EXPECT_GT(penalized, 0.15);
}

TEST(ScaleOut, BreakEvenSigmaBisection)
{
    double sigma = breakEvenSigma(0.25, 100.0, 2.0);
    ASSERT_GT(sigma, 0.0);
    ASSERT_LT(sigma, 1.0);
    // At the break-even sigma the surviving fraction is 1/advantage.
    ScaleOutParams p{sigma, 0.0};
    double surviving =
        penalizedPerfRatio(0.25, 100.0, p) / 0.25;
    EXPECT_NEAR(surviving, 0.5, 0.01);
}

TEST(Diurnal, ProfilesWellFormed)
{
    auto p = DiurnalProfile::internetService();
    double peak = 0.0;
    for (double h : p.hourly) {
        EXPECT_GT(h, 0.0);
        EXPECT_LE(h, 1.0);
        peak = std::max(peak, h);
    }
    EXPECT_DOUBLE_EQ(peak, 1.0);
    EXPECT_LT(p.meanLoad(), 1.0);
    EXPECT_DOUBLE_EQ(DiurnalProfile::flat().meanLoad(), 1.0);
}

TEST(Diurnal, FlatLoadGivesNoSavings)
{
    EnsembleEnergyParams params;
    auto flat = DiurnalProfile::flat();
    auto off = dailyEnergy(flat, PowerPolicy::PowerOff, params);
    EXPECT_NEAR(off.savingsVsAlwaysOn, 0.0, 0.02);
}

TEST(Diurnal, PowerOffSavesOnDiurnalLoad)
{
    EnsembleEnergyParams params;
    auto profile = DiurnalProfile::internetService();
    auto on = dailyEnergy(profile, PowerPolicy::AlwaysOn, params);
    auto off = dailyEnergy(profile, PowerPolicy::PowerOff, params);
    EXPECT_GT(off.savingsVsAlwaysOn, 0.10);
    EXPECT_LT(off.kWhPerDay, on.kWhPerDay);
    EXPECT_LT(off.meanActiveServers, double(params.servers));
}

TEST(Diurnal, ConsolidationAloneBarelyHelps)
{
    // With the linear (non-energy-proportional) power curve of
    // 2008-era servers, packing without power-off changes little.
    EnsembleEnergyParams params;
    auto profile = DiurnalProfile::internetService();
    auto cons =
        dailyEnergy(profile, PowerPolicy::ConsolidateIdle, params);
    EXPECT_NEAR(cons.savingsVsAlwaysOn, 0.0, 0.02);
}

TEST(Diurnal, SavingsGrowWithEnergyProportionality)
{
    // Lower idle power (more energy-proportional hardware) increases
    // the power-off win less than it increases the always-on win:
    // the gap between policies narrows.
    auto profile = DiurnalProfile::internetService();
    EnsembleEnergyParams leaky;
    leaky.idlePowerFraction = 0.8;
    EnsembleEnergyParams proportional;
    proportional.idlePowerFraction = 0.1;
    auto off_leaky =
        dailyEnergy(profile, PowerPolicy::PowerOff, leaky);
    auto off_prop =
        dailyEnergy(profile, PowerPolicy::PowerOff, proportional);
    EXPECT_GT(off_leaky.savingsVsAlwaysOn,
              off_prop.savingsVsAlwaysOn);
}

TEST(Diurnal, ZeroLoadHoursKeepOnlyReserveOn)
{
    // Regression: a dead-of-night trough of exactly 0 used to trip
    // the load > 0 assert. With nothing busy, PowerOff must keep just
    // the reserve margin idling while the other policies degrade to
    // their whole-fleet idle floor.
    EnsembleEnergyParams params;
    DiurnalProfile dark;
    dark.hourly.fill(0.0);

    auto on = dailyEnergy(dark, PowerPolicy::AlwaysOn, params);
    auto cons = dailyEnergy(dark, PowerPolicy::ConsolidateIdle, params);
    auto off = dailyEnergy(dark, PowerPolicy::PowerOff, params);

    // AlwaysOn and ConsolidateIdle both leave the whole fleet idling.
    EXPECT_DOUBLE_EQ(on.kWhPerDay, cons.kWhPerDay);
    // PowerOff keeps ceil(reserveMargin * servers) of them.
    EXPECT_NEAR(off.kWhPerDay,
                params.reserveMargin * cons.kWhPerDay, 1e-9);
    EXPECT_DOUBLE_EQ(off.meanActiveServers,
                     std::ceil(params.reserveMargin *
                               double(params.servers)));
    EXPECT_GT(off.kWhPerDay, 0.0);
}

TEST(Diurnal, SingleZeroHourAccepted)
{
    // A profile that dips to zero for one hour runs end to end and
    // costs strictly less than the same profile with that hour busy.
    EnsembleEnergyParams params;
    auto profile = DiurnalProfile::internetService();
    auto busy = dailyEnergy(profile, PowerPolicy::PowerOff, params);
    profile.hourly[4] = 0.0;
    auto dipped = dailyEnergy(profile, PowerPolicy::PowerOff, params);
    EXPECT_LT(dipped.kWhPerDay, busy.kWhPerDay);
}

TEST(Diurnal, PolicyNames)
{
    EXPECT_EQ(to_string(PowerPolicy::AlwaysOn), "always-on");
    EXPECT_EQ(to_string(PowerPolicy::PowerOff), "power-off");
}

} // namespace
