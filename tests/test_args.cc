/**
 * @file
 * Unit tests for the command-line argument parser.
 */

#include <gtest/gtest.h>

#include "util/args.hh"
#include "util/logging.hh"

namespace {

using namespace wsc;

ArgParser
makeParser()
{
    ArgParser p("tool", "test tool");
    p.addOption("system", "platform", "srvr2")
        .addOption("tariff", "dollars per MWh", "100")
        .addFlag("csv", "emit csv");
    return p;
}

TEST(Args, DefaultsApply)
{
    auto p = makeParser();
    const char *argv[] = {"tool"};
    EXPECT_TRUE(p.parse(1, argv));
    EXPECT_EQ(p.get("system"), "srvr2");
    EXPECT_DOUBLE_EQ(p.getDouble("tariff"), 100.0);
    EXPECT_FALSE(p.flag("csv"));
}

TEST(Args, OptionsAndFlagsParsed)
{
    auto p = makeParser();
    const char *argv[] = {"tool", "--system", "emb1", "--csv",
                          "--tariff", "170"};
    EXPECT_TRUE(p.parse(6, argv));
    EXPECT_EQ(p.get("system"), "emb1");
    EXPECT_TRUE(p.flag("csv"));
    EXPECT_DOUBLE_EQ(p.getDouble("tariff"), 170.0);
}

TEST(Args, HelpShortCircuits)
{
    auto p = makeParser();
    const char *argv[] = {"tool", "--help"};
    EXPECT_FALSE(p.parse(2, argv));
    const char *argv2[] = {"tool", "-h"};
    EXPECT_FALSE(makeParser().parse(2, argv2));
}

TEST(Args, EqualsFormParsed)
{
    // wsc_eval --threads=8 smoke case: the = form must behave exactly
    // like the two-token form.
    ArgParser p("wsc_eval", "t");
    p.addOption("threads", "worker threads", "0");
    const char *argv[] = {"wsc_eval", "--threads=8"};
    EXPECT_TRUE(p.parse(2, argv));
    EXPECT_EQ(p.get("threads"), "8");
    EXPECT_DOUBLE_EQ(p.getDouble("threads"), 8.0);
    EXPECT_TRUE(p.given("threads"));
}

TEST(Args, EqualsFormFlag)
{
    auto p = makeParser();
    const char *on[] = {"tool", "--csv=true"};
    EXPECT_TRUE(p.parse(2, on));
    EXPECT_TRUE(p.flag("csv"));
    const char *off[] = {"tool", "--csv=false"};
    EXPECT_TRUE(p.parse(2, off));
    EXPECT_FALSE(p.flag("csv"));
    const char *bad[] = {"tool", "--csv=yes"};
    EXPECT_THROW(p.parse(2, bad), FatalError);
}

TEST(Args, EqualsFormEmptyAndEmbeddedEquals)
{
    auto p = makeParser();
    const char *argv[] = {"tool", "--system="};
    EXPECT_TRUE(p.parse(2, argv));
    EXPECT_EQ(p.get("system"), "");
    // Only the first '=' splits; the value may contain more.
    const char *argv2[] = {"tool", "--system=a=b"};
    EXPECT_TRUE(p.parse(2, argv2));
    EXPECT_EQ(p.get("system"), "a=b");
}

TEST(Args, UnknownEqualsOptionFatal)
{
    auto p = makeParser();
    const char *argv[] = {"tool", "--bogus=3"};
    EXPECT_THROW(p.parse(2, argv), FatalError);
}

TEST(Args, ReparseResetsState)
{
    // A second parse() must not inherit values or set-state from the
    // first.
    auto p = makeParser();
    const char *first[] = {"tool", "--system=emb1", "--csv",
                           "--tariff", "170"};
    EXPECT_TRUE(p.parse(5, first));
    EXPECT_TRUE(p.given("system"));
    EXPECT_TRUE(p.flag("csv"));

    const char *second[] = {"tool"};
    EXPECT_TRUE(p.parse(1, second));
    EXPECT_EQ(p.get("system"), "srvr2");
    EXPECT_DOUBLE_EQ(p.getDouble("tariff"), 100.0);
    EXPECT_FALSE(p.flag("csv"));
    EXPECT_FALSE(p.given("system"));
    EXPECT_FALSE(p.given("csv"));
    // Usage still advertises the registered default, not a parsed
    // value.
    EXPECT_NE(p.usage().find("default: srvr2"), std::string::npos);
}

TEST(Args, UnknownOptionFatal)
{
    auto p = makeParser();
    const char *argv[] = {"tool", "--bogus", "1"};
    EXPECT_THROW(p.parse(3, argv), FatalError);
}

TEST(Args, UnknownOptionSuggestsNearestName)
{
    auto p = makeParser();
    const char *argv[] = {"tool", "--sytem", "emb1"};
    try {
        p.parse(3, argv);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("unknown option '--sytem'"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("did you mean '--system'?"),
                  std::string::npos)
            << msg;
        // The full usage text still follows the hint.
        EXPECT_NE(msg.find("--help"), std::string::npos) << msg;
    }
}

TEST(Args, UnknownOptionFarFromEverythingGetsNoSuggestion)
{
    auto p = makeParser();
    const char *argv[] = {"tool", "--frobnicate", "1"};
    try {
        p.parse(3, argv);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("unknown option '--frobnicate'"),
                  std::string::npos)
            << msg;
        EXPECT_EQ(msg.find("did you mean"), std::string::npos) << msg;
    }
}

TEST(Args, SuggestFindsTyposAndRejectsStrangers)
{
    auto p = makeParser();
    EXPECT_EQ(p.suggest("sytem"), "system");
    EXPECT_EQ(p.suggest("tarrif"), "tariff");
    EXPECT_EQ(p.suggest("cvs"), "csv");
    EXPECT_EQ(p.suggest("frobnicate"), "");
}

TEST(Args, MissingValueFatal)
{
    auto p = makeParser();
    const char *argv[] = {"tool", "--system"};
    EXPECT_THROW(p.parse(2, argv), FatalError);
}

TEST(Args, PositionalRejected)
{
    auto p = makeParser();
    const char *argv[] = {"tool", "emb1"};
    EXPECT_THROW(p.parse(2, argv), FatalError);
}

TEST(Args, NonNumericDoubleFatal)
{
    auto p = makeParser();
    const char *argv[] = {"tool", "--tariff", "cheap"};
    EXPECT_TRUE(p.parse(3, argv));
    EXPECT_THROW(p.getDouble("tariff"), FatalError);
}

TEST(Args, UsageListsEverything)
{
    auto p = makeParser();
    auto usage = p.usage();
    EXPECT_NE(usage.find("--system"), std::string::npos);
    EXPECT_NE(usage.find("--csv"), std::string::npos);
    EXPECT_NE(usage.find("default: srvr2"), std::string::npos);
    EXPECT_NE(usage.find("--help"), std::string::npos);
}

TEST(Args, DuplicateRegistrationPanics)
{
    ArgParser p("tool", "t");
    p.addOption("x", "h", "1");
    EXPECT_THROW(p.addOption("x", "h", "2"), PanicError);
    EXPECT_THROW(p.addFlag("x", "h"), PanicError);
}

TEST(Args, UnregisteredLookupPanics)
{
    auto p = makeParser();
    const char *argv[] = {"tool"};
    p.parse(1, argv);
    EXPECT_THROW(p.get("nope"), PanicError);
}

} // namespace
