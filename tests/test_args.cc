/**
 * @file
 * Unit tests for the command-line argument parser.
 */

#include <gtest/gtest.h>

#include "util/args.hh"
#include "util/logging.hh"

namespace {

using namespace wsc;

ArgParser
makeParser()
{
    ArgParser p("tool", "test tool");
    p.addOption("system", "platform", "srvr2")
        .addOption("tariff", "dollars per MWh", "100")
        .addFlag("csv", "emit csv");
    return p;
}

TEST(Args, DefaultsApply)
{
    auto p = makeParser();
    const char *argv[] = {"tool"};
    EXPECT_TRUE(p.parse(1, argv));
    EXPECT_EQ(p.get("system"), "srvr2");
    EXPECT_DOUBLE_EQ(p.getDouble("tariff"), 100.0);
    EXPECT_FALSE(p.flag("csv"));
}

TEST(Args, OptionsAndFlagsParsed)
{
    auto p = makeParser();
    const char *argv[] = {"tool", "--system", "emb1", "--csv",
                          "--tariff", "170"};
    EXPECT_TRUE(p.parse(6, argv));
    EXPECT_EQ(p.get("system"), "emb1");
    EXPECT_TRUE(p.flag("csv"));
    EXPECT_DOUBLE_EQ(p.getDouble("tariff"), 170.0);
}

TEST(Args, HelpShortCircuits)
{
    auto p = makeParser();
    const char *argv[] = {"tool", "--help"};
    EXPECT_FALSE(p.parse(2, argv));
    const char *argv2[] = {"tool", "-h"};
    EXPECT_FALSE(makeParser().parse(2, argv2));
}

TEST(Args, UnknownOptionFatal)
{
    auto p = makeParser();
    const char *argv[] = {"tool", "--bogus", "1"};
    EXPECT_THROW(p.parse(3, argv), FatalError);
}

TEST(Args, MissingValueFatal)
{
    auto p = makeParser();
    const char *argv[] = {"tool", "--system"};
    EXPECT_THROW(p.parse(2, argv), FatalError);
}

TEST(Args, PositionalRejected)
{
    auto p = makeParser();
    const char *argv[] = {"tool", "emb1"};
    EXPECT_THROW(p.parse(2, argv), FatalError);
}

TEST(Args, NonNumericDoubleFatal)
{
    auto p = makeParser();
    const char *argv[] = {"tool", "--tariff", "cheap"};
    EXPECT_TRUE(p.parse(3, argv));
    EXPECT_THROW(p.getDouble("tariff"), FatalError);
}

TEST(Args, UsageListsEverything)
{
    auto p = makeParser();
    auto usage = p.usage();
    EXPECT_NE(usage.find("--system"), std::string::npos);
    EXPECT_NE(usage.find("--csv"), std::string::npos);
    EXPECT_NE(usage.find("default: srvr2"), std::string::npos);
    EXPECT_NE(usage.find("--help"), std::string::npos);
}

TEST(Args, DuplicateRegistrationPanics)
{
    ArgParser p("tool", "t");
    p.addOption("x", "h", "1");
    EXPECT_THROW(p.addOption("x", "h", "2"), PanicError);
    EXPECT_THROW(p.addFlag("x", "h"), PanicError);
}

TEST(Args, UnregisteredLookupPanics)
{
    auto p = makeParser();
    const char *argv[] = {"tool"};
    p.parse(1, argv);
    EXPECT_THROW(p.get("nope"), PanicError);
}

} // namespace
