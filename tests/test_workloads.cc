/**
 * @file
 * Unit tests for the benchmark-suite workload models (Table 1).
 */

#include <gtest/gtest.h>

#include "workloads/mapreduce.hh"
#include "workloads/suite.hh"
#include "workloads/webmail.hh"
#include "workloads/websearch.hh"
#include "workloads/ytube.hh"

namespace {

using namespace wsc;
using namespace wsc::workloads;

TEST(Suite, AllFiveBenchmarksInstantiable)
{
    for (auto b : allBenchmarks) {
        auto w = makeBenchmark(b);
        ASSERT_NE(w, nullptr);
        EXPECT_EQ(w->name(), to_string(b));
    }
}

TEST(Suite, KindsMatchPaperTable1)
{
    EXPECT_EQ(makeBenchmark(Benchmark::Websearch)->kind(),
              WorkloadKind::Interactive);
    EXPECT_EQ(makeBenchmark(Benchmark::Webmail)->kind(),
              WorkloadKind::Interactive);
    EXPECT_EQ(makeBenchmark(Benchmark::Ytube)->kind(),
              WorkloadKind::Interactive);
    EXPECT_EQ(makeBenchmark(Benchmark::MapredWc)->kind(),
              WorkloadKind::Batch);
    EXPECT_EQ(makeBenchmark(Benchmark::MapredWr)->kind(),
              WorkloadKind::Batch);
}

TEST(Websearch, QosMatchesTable1)
{
    Websearch ws;
    EXPECT_DOUBLE_EQ(ws.qos().quantile, 0.95);
    EXPECT_DOUBLE_EQ(ws.qos().latencyLimit, 0.5);
}

TEST(Websearch, SampleMeanTracksMeanDemand)
{
    Websearch ws;
    Rng rng(5);
    ServiceDemand acc;
    const int n = 40000;
    for (int i = 0; i < n; ++i) {
        auto d = ws.nextRequest(rng);
        acc.cpuWork += d.cpuWork;
        acc.diskReadBytes += d.diskReadBytes;
        acc.netBytes += d.netBytes;
    }
    auto mean = ws.meanDemand();
    EXPECT_NEAR(acc.cpuWork / n, mean.cpuWork, 0.10 * mean.cpuWork);
    EXPECT_NEAR(acc.diskReadBytes / n, mean.diskReadBytes,
                0.15 * mean.diskReadBytes);
    EXPECT_DOUBLE_EQ(acc.netBytes / n, mean.netBytes);
}

TEST(Websearch, PopularTermsAreCached)
{
    Websearch ws;
    EXPECT_TRUE(ws.termIsCached(1));
    EXPECT_FALSE(ws.termIsCached(ws.params().vocabularyTerms));
}

TEST(Websearch, KeywordCountsInObservedRange)
{
    Websearch ws;
    Rng rng(6);
    for (int i = 0; i < 1000; ++i) {
        unsigned k = ws.sampleKeywordCount(rng);
        EXPECT_GE(k, 1u);
        EXPECT_LE(k, 5u);
    }
}

TEST(Websearch, DiskReadsOnlyForColdTerms)
{
    // With everything cached there must be no disk demand.
    WebsearchParams p;
    p.cachedTermFraction = 1.0;
    Websearch ws(p);
    Rng rng(7);
    for (int i = 0; i < 200; ++i)
        EXPECT_DOUBLE_EQ(ws.nextRequest(rng).diskReadBytes, 0.0);
    EXPECT_DOUBLE_EQ(ws.meanDemand().diskReadOps, 0.0);
}

TEST(Webmail, QosMatchesTable1)
{
    Webmail wm;
    EXPECT_DOUBLE_EQ(wm.qos().quantile, 0.95);
    EXPECT_DOUBLE_EQ(wm.qos().latencyLimit, 0.8);
}

TEST(Webmail, ActionMixCoversAllActions)
{
    Webmail wm;
    Rng rng(8);
    int counts[8] = {};
    for (int i = 0; i < 20000; ++i)
        ++counts[int(wm.sampleAction(rng))];
    for (int i = 0; i < 8; ++i)
        EXPECT_GT(counts[i], 0) << "action " << i << " never drawn";
    // ReadMessage dominates the heavy-usage mix.
    EXPECT_GT(counts[int(MailAction::ReadMessage)],
              counts[int(MailAction::Login)]);
}

TEST(Webmail, MeanDemandConsistentWithSamples)
{
    Webmail wm;
    Rng rng(9);
    double cpu = 0, net = 0;
    const int n = 60000;
    for (int i = 0; i < n; ++i) {
        auto d = wm.nextRequest(rng);
        cpu += d.cpuWork;
        net += d.netBytes;
    }
    auto mean = wm.meanDemand();
    EXPECT_NEAR(cpu / n, mean.cpuWork, 0.10 * mean.cpuWork);
    EXPECT_NEAR(net / n, mean.netBytes, 0.10 * mean.netBytes);
}

TEST(Webmail, BackendTrafficIncluded)
{
    // Network bytes must exceed the raw body size: IMAP/SMTP backend
    // chatter is part of the workload (paper Section 2.1).
    Webmail wm;
    auto mean = wm.meanDemand();
    EXPECT_GT(mean.netBytes,
              (mean.diskReadBytes + mean.diskWriteBytes));
}

TEST(Ytube, StreamingTraits)
{
    Ytube yt;
    auto t = yt.traits();
    EXPECT_GT(t.streamPacingCapMBs, 0.0);
    EXPECT_GT(t.diskCacheHitRate, 0.5); // Zipf head cached
    EXPECT_DOUBLE_EQ(t.cpuScalingGamma, 1.0);
}

TEST(Ytube, TransferSizesHeavyTailed)
{
    Ytube yt;
    Rng rng(10);
    double max_mb = 0, sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        auto d = yt.nextRequest(rng);
        double mb = d.netBytes / 1e6;
        max_mb = std::max(max_mb, mb);
        sum += mb;
    }
    double mean = sum / n;
    EXPECT_NEAR(mean, yt.params().meanTransferMB,
                0.15 * yt.params().meanTransferMB);
    // Heavy tail: the max is many times the mean.
    EXPECT_GT(max_mb, 5.0 * mean);
}

TEST(Ytube, DiskDemandEqualsNetworkDemand)
{
    // Whole objects are read and streamed.
    Ytube yt;
    Rng rng(11);
    auto d = yt.nextRequest(rng);
    EXPECT_DOUBLE_EQ(d.diskReadBytes, d.netBytes);
}

TEST(Ytube, PopularityRanksValid)
{
    Ytube yt;
    Rng rng(12);
    for (int i = 0; i < 2000; ++i) {
        auto r = yt.sampleVideoRank(rng);
        EXPECT_GE(r, 1u);
        EXPECT_LE(r, yt.params().catalogSize);
    }
}

TEST(MapReduce, WordCountTaskStructure)
{
    MapReduce wc(MapReduceApp::WordCount);
    Rng rng(13);
    auto tasks = wc.tasks(rng);
    // 5 GB in 64 MB splits = 80 maps, plus 8 reduces.
    EXPECT_EQ(wc.mapTaskCount(), 80u);
    EXPECT_EQ(tasks.size(), 88u);
    unsigned reduces = 0;
    for (const auto &t : tasks) {
        if (t.isReduce) {
            ++reduces;
            EXPECT_GT(t.diskWriteBytes, 0.0);
            EXPECT_DOUBLE_EQ(t.diskReadBytes, 0.0);
        } else {
            EXPECT_GT(t.diskReadBytes, 0.0);
            EXPECT_DOUBLE_EQ(t.diskWriteBytes, 0.0);
            EXPECT_GT(t.cpuWork, 0.0);
        }
    }
    EXPECT_EQ(reduces, 8u);
}

TEST(MapReduce, FileWriteTaskStructure)
{
    MapReduce wr(MapReduceApp::FileWrite);
    Rng rng(14);
    auto tasks = wr.tasks(rng);
    // 2 GB in 64 MB splits = 32 write maps, no reduces.
    EXPECT_EQ(tasks.size(), 32u);
    for (const auto &t : tasks) {
        EXPECT_FALSE(t.isReduce);
        EXPECT_GT(t.diskWriteBytes, 0.0);
        EXPECT_DOUBLE_EQ(t.diskReadBytes, 0.0);
    }
}

TEST(MapReduce, FourThreadsPerCore)
{
    MapReduce wc(MapReduceApp::WordCount);
    EXPECT_EQ(wc.threadsPerCore(), 4u); // paper: Hadoop, 4 per CPU
}

TEST(MapReduce, JitterPreservesMeanWork)
{
    MapReduce wc(MapReduceApp::WordCount);
    Rng rng(15);
    double total = 0;
    unsigned maps = 0;
    for (int rep = 0; rep < 20; ++rep) {
        for (const auto &t : wc.tasks(rng)) {
            if (!t.isReduce) {
                total += t.cpuWork;
                ++maps;
            }
        }
    }
    EXPECT_NEAR(total / maps, wc.params().wcCpuPerTask,
                0.05 * wc.params().wcCpuPerTask);
}

/** All interactive workloads expose positive mean demands. */
class MeanDemandTest
    : public ::testing::TestWithParam<Benchmark>
{};

TEST_P(MeanDemandTest, PositiveAndFinite)
{
    auto w = makeBenchmark(GetParam());
    auto &iw = dynamic_cast<InteractiveWorkload &>(*w);
    auto mean = iw.meanDemand();
    EXPECT_GT(mean.cpuWork, 0.0);
    EXPECT_GT(mean.netBytes, 0.0);
    EXPECT_GE(mean.diskReadBytes, 0.0);
    EXPECT_LT(mean.cpuWork, 10.0); // sanity: under 10 GHz-seconds
}

INSTANTIATE_TEST_SUITE_P(Interactive, MeanDemandTest,
                         ::testing::Values(Benchmark::Websearch,
                                           Benchmark::Webmail,
                                           Benchmark::Ytube));

} // namespace
