/**
 * @file
 * Unit tests for the memory-blade subsystem: traces, replacement
 * policies, two-level simulation, latency/slowdown, provisioning.
 */

#include <gtest/gtest.h>

#include "memblade/blade.hh"
#include "memblade/latency.hh"
#include "memblade/replacement.hh"
#include "memblade/trace.hh"
#include "memblade/two_level.hh"
#include "platform/catalog.hh"

namespace {

using namespace wsc;
using namespace wsc::memblade;

TEST(Trace, ProfilesExistForAllBenchmarks)
{
    for (auto b : workloads::allBenchmarks) {
        auto p = profileFor(b);
        EXPECT_FALSE(p.name.empty());
        EXPECT_GT(p.footprintPages, 0u);
        EXPECT_GT(p.touchesPerSecond, 0.0);
    }
}

TEST(Trace, PagesWithinFootprint)
{
    auto p = profileFor(workloads::Benchmark::Websearch);
    Rng rng(1);
    TraceGenerator gen(p, rng);
    for (int i = 0; i < 100000; ++i)
        ASSERT_LT(gen.next(), p.footprintPages);
}

TEST(Trace, HotSetDominatesTouches)
{
    auto p = profileFor(workloads::Benchmark::Webmail);
    auto hot_pages = PageId(double(p.footprintPages) * p.hotSetFraction);
    Rng rng(2);
    TraceGenerator gen(p, rng);
    std::uint64_t hot = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        if (gen.next() < hot_pages)
            ++hot;
    // Hot probability plus sequential spillover: clearly a majority.
    EXPECT_GT(double(hot) / n, 0.7);
}

TEST(Trace, DeterministicWithSeed)
{
    auto p = profileFor(workloads::Benchmark::Ytube);
    auto t1 = generateTrace(p, 10000, Rng(3));
    auto t2 = generateTrace(p, 10000, Rng(3));
    EXPECT_EQ(t1, t2);
}

TEST(Lru, EvictsLeastRecentlyUsed)
{
    LruPolicy lru(2);
    EXPECT_FALSE(lru.access(1));
    EXPECT_FALSE(lru.access(2));
    EXPECT_TRUE(lru.access(1));  // 1 now MRU
    EXPECT_FALSE(lru.access(3)); // evicts 2
    EXPECT_TRUE(lru.access(1));
    EXPECT_FALSE(lru.access(2)); // 2 was evicted
}

TEST(Lru, ResidentNeverExceedsFrames)
{
    LruPolicy lru(16);
    Rng rng(4);
    for (int i = 0; i < 10000; ++i) {
        lru.access(rng.uniformInt(0, 99));
        ASSERT_LE(lru.resident(), 16u);
    }
}

TEST(Random, ResidentNeverExceedsFrames)
{
    RandomPolicy rp(16, Rng(5));
    Rng rng(6);
    for (int i = 0; i < 10000; ++i) {
        rp.access(rng.uniformInt(0, 99));
        ASSERT_LE(rp.resident(), 16u);
    }
}

TEST(Random, HitsOnResidentPages)
{
    RandomPolicy rp(4, Rng(7));
    rp.access(1);
    EXPECT_TRUE(rp.access(1));
    EXPECT_TRUE(rp.access(1));
}

TEST(Clock, SecondChanceBehaviour)
{
    ClockPolicy clock(2);
    EXPECT_FALSE(clock.access(1));
    EXPECT_FALSE(clock.access(2));
    EXPECT_TRUE(clock.access(1));
    // 2's bit is also set (insertion); the hand clears bits and evicts
    // the first unreferenced frame.
    EXPECT_FALSE(clock.access(3));
    EXPECT_EQ(clock.resident(), 2u);
}

TEST(Policies, FactoryProducesAllKinds)
{
    for (auto kind :
         {PolicyKind::Lru, PolicyKind::Random, PolicyKind::Clock}) {
        auto p = makePolicy(kind, 8, Rng(8));
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(p->name(), to_string(kind));
        EXPECT_FALSE(p->access(42));
        EXPECT_TRUE(p->access(42));
    }
}

TEST(TwoLevel, FullLocalMemoryNeverMissesWarm)
{
    auto p = profileFor(workloads::Benchmark::Webmail);
    auto st = replayProfile(p, 1.0, PolicyKind::Lru, 200000, 9);
    // With local = footprint every miss is a cold (first-touch) miss.
    EXPECT_EQ(st.misses, st.coldMisses);
    EXPECT_DOUBLE_EQ(st.warmMissRate(), 0.0);
}

TEST(TwoLevel, SmallerLocalMemoryMissesMore)
{
    auto p = profileFor(workloads::Benchmark::Websearch);
    auto at25 = replayProfile(p, 0.25, PolicyKind::Random, 400000, 10);
    auto at12 = replayProfile(p, 0.125, PolicyKind::Random, 400000, 10);
    EXPECT_GT(at12.warmMissRate(), at25.warmMissRate());
}

TEST(TwoLevel, StatsAreConsistent)
{
    auto p = profileFor(workloads::Benchmark::Ytube);
    auto st = replayProfile(p, 0.25, PolicyKind::Lru, 100000, 11);
    EXPECT_EQ(st.hits + st.misses, st.accesses);
    EXPECT_LE(st.coldMisses, st.misses);
    EXPECT_GE(st.missRate(), st.warmMissRate());
}

TEST(Latency, LinkPresets)
{
    EXPECT_DOUBLE_EQ(RemoteLink::pcieX4().stallSecondsPerMiss, 4.0e-6);
    EXPECT_DOUBLE_EQ(RemoteLink::cbf().stallSecondsPerMiss, 0.5e-6);
    EXPECT_DOUBLE_EQ(RemoteLink::cbfWithSetup().stallSecondsPerMiss,
                     0.75e-6);
}

TEST(Latency, SlowdownScalesWithLink)
{
    auto p = profileFor(workloads::Benchmark::Websearch);
    auto st = replayProfile(p, 0.25, PolicyKind::Random, 400000, 12);
    double pcie = slowdown(st, p, RemoteLink::pcieX4());
    double cbf = slowdown(st, p, RemoteLink::cbf());
    EXPECT_NEAR(cbf / pcie, 0.125, 1e-9);
    EXPECT_GT(pcie, 0.0);
}

TEST(Latency, PaperFigure4bWebsearchSlowdown)
{
    // Paper Figure 4(b): websearch 4.7% at 25% local, random, PCIe x4.
    auto p = profileFor(workloads::Benchmark::Websearch);
    auto st = replayProfile(p, 0.25, PolicyKind::Random, 2000000, 42);
    double sd = slowdown(st, p, RemoteLink::pcieX4());
    EXPECT_NEAR(sd, 0.047, 0.012);
}

TEST(Latency, PaperFigure4bOrdering)
{
    // websearch suffers most; webmail is negligible (paper Fig. 4b).
    auto sd_of = [](workloads::Benchmark b) {
        auto p = profileFor(b);
        auto st = replayProfile(p, 0.25, PolicyKind::Random, 1000000, 42);
        return slowdown(st, p, RemoteLink::pcieX4());
    };
    double ws = sd_of(workloads::Benchmark::Websearch);
    double wm = sd_of(workloads::Benchmark::Webmail);
    double yt = sd_of(workloads::Benchmark::Ytube);
    EXPECT_GT(ws, yt);
    EXPECT_GT(yt, wm);
    EXPECT_LT(wm, 0.005);
}

TEST(Blade, StaticSchemeCostMath)
{
    // emb1 memory: $180 / 12 W. Static: 25% local + 75% remote at 24%
    // discount + $10 PCIe; power: 25% + 75% at 10% + 1.45 W.
    auto server = platform::makeSystem(platform::SystemClass::Emb1);
    auto out = applyMemorySharing(server, BladeParams{},
                                  Provisioning::Static);
    EXPECT_NEAR(out.memoryDollars,
                180.0 * 0.25 + 180.0 * 0.75 * 0.76 + 10.0, 1e-9);
    EXPECT_NEAR(out.memoryWatts, 12.0 * 0.25 + 12.0 * 0.75 * 0.1 + 1.45,
                1e-9);
    EXPECT_DOUBLE_EQ(out.slowdown, 0.02);
}

TEST(Blade, DynamicSchemeUsesLessDram)
{
    auto server = platform::makeSystem(platform::SystemClass::Emb1);
    auto stat = applyMemorySharing(server, BladeParams{},
                                   Provisioning::Static);
    auto dyn = applyMemorySharing(server, BladeParams{},
                                  Provisioning::Dynamic);
    EXPECT_LT(dyn.memoryDollars, stat.memoryDollars);
    EXPECT_LT(dyn.memoryWatts, stat.memoryWatts);
}

TEST(Blade, SharingReducesCostAndPower)
{
    // The whole point (Figure 4c): memory line item shrinks.
    auto server = platform::makeSystem(platform::SystemClass::Emb1);
    for (auto scheme : {Provisioning::Static, Provisioning::Dynamic}) {
        auto cfg = withMemorySharing(server, BladeParams{}, scheme);
        EXPECT_LT(cfg.memory.dollars, server.memory.dollars)
            << to_string(scheme);
        EXPECT_LT(cfg.memory.watts, server.memory.watts);
        EXPECT_DOUBLE_EQ(cfg.memory.capacityGB, 1.0); // 25% of 4 GB
    }
}


TEST(Latency, TrapCostsOrdered)
{
    EXPECT_DOUBLE_EQ(trapCostSeconds(TrapHandling::None), 0.0);
    EXPECT_GT(trapCostSeconds(TrapHandling::SoftwareTrap),
              trapCostSeconds(TrapHandling::HardwareTlb));
}

TEST(Latency, WithTrapCostAddsPerMissStall)
{
    auto base = RemoteLink::cbf();
    auto sw = withTrapCost(base, TrapHandling::SoftwareTrap);
    auto hw = withTrapCost(base, TrapHandling::HardwareTlb);
    auto none = withTrapCost(base, TrapHandling::None);
    EXPECT_NEAR(sw.stallSecondsPerMiss, 0.9e-6, 1e-12);
    EXPECT_NEAR(hw.stallSecondsPerMiss, 0.55e-6, 1e-12);
    EXPECT_DOUBLE_EQ(none.stallSecondsPerMiss,
                     base.stallSecondsPerMiss);
    EXPECT_NE(sw.name, base.name);
}

TEST(Latency, SoftwareTrapComparableToCbfStall)
{
    // The Section 4 motivation: with CBF the software trap handler is
    // of the same order as the stall it accompanies (it nearly
    // doubles the miss cost), so hardware TLB handling pays off.
    auto base = RemoteLink::cbf();
    double trap = trapCostSeconds(TrapHandling::SoftwareTrap);
    EXPECT_GT(trap, 0.5 * base.stallSecondsPerMiss);
    EXPECT_LT(trapCostSeconds(TrapHandling::HardwareTlb),
              0.2 * base.stallSecondsPerMiss);
}

/** Local-fraction sweep: warm miss rate decreases monotonically. */
class LocalFractionSweep : public ::testing::TestWithParam<double>
{};

TEST_P(LocalFractionSweep, MoreLocalMemoryNeverHurts)
{
    auto p = profileFor(workloads::Benchmark::Ytube);
    double f = GetParam();
    auto lo = replayProfile(p, f, PolicyKind::Lru, 300000, 13);
    auto hi = replayProfile(p, std::min(1.0, f * 2.0), PolicyKind::Lru,
                            300000, 13);
    EXPECT_GE(lo.warmMissRate() + 1e-6, hi.warmMissRate());
}

INSTANTIATE_TEST_SUITE_P(Fractions, LocalFractionSweep,
                         ::testing::Values(0.0625, 0.125, 0.25, 0.5));

} // namespace
