/**
 * @file
 * Cross-module integration tests reproducing the paper's headline
 * claims end-to-end. These run real (small-window) throughput
 * searches, so they use the cheaper platforms where possible.
 */

#include <gtest/gtest.h>

#include "core/design.hh"
#include "core/evaluator.hh"
#include "core/report.hh"

namespace {

using namespace wsc;
using namespace wsc::core;

EvaluatorParams
fastParams()
{
    EvaluatorParams p;
    p.search.iterations = 6;
    p.search.window.warmupSeconds = 3.0;
    p.search.window.measureSeconds = 15.0;
    return p;
}

TEST(Integration, YtubeIsIoBoundAcrossMidRange)
{
    // Figure 2(c): ytube performance barely degrades from srvr2 down
    // to emb1 (NIC/disk bound), then falls off a cliff on emb2.
    DesignEvaluator ev(fastParams());
    auto s1 = DesignConfig::baseline(platform::SystemClass::Srvr1);
    auto e1 = DesignConfig::baseline(platform::SystemClass::Emb1);
    auto e2 = DesignConfig::baseline(platform::SystemClass::Emb2);
    auto r_e1 =
        ev.evaluateRelative(e1, s1, workloads::Benchmark::Ytube);
    auto r_e2 =
        ev.evaluateRelative(e2, s1, workloads::Benchmark::Ytube);
    EXPECT_GT(r_e1.perf, 0.75);
    EXPECT_LT(r_e2.perf, 0.45);
}

TEST(Integration, EmbeddedWinsPerfPerTcoOnYtube)
{
    // Figure 2(c): emb1 achieves ~6x Perf/TCO-$ on ytube vs srvr1.
    DesignEvaluator ev(fastParams());
    auto s1 = DesignConfig::baseline(platform::SystemClass::Srvr1);
    auto e1 = DesignConfig::baseline(platform::SystemClass::Emb1);
    auto r = ev.evaluateRelative(e1, s1, workloads::Benchmark::Ytube);
    EXPECT_GT(r.perfPerTcoDollar, 3.5);
}

TEST(Integration, N2BeatsN1OnBatchEfficiency)
{
    DesignEvaluator ev(fastParams());
    auto s1 = DesignConfig::baseline(platform::SystemClass::Srvr1);
    auto n1 = DesignConfig::n1();
    auto n2 = DesignConfig::n2();
    auto r1 =
        ev.evaluateRelative(n1, s1, workloads::Benchmark::MapredWc);
    auto r2 =
        ev.evaluateRelative(n2, s1, workloads::Benchmark::MapredWc);
    // Figure 5: both unified designs improve mapreduce Perf/TCO-$
    // by 2x or more.
    EXPECT_GT(r1.perfPerTcoDollar, 2.0);
    EXPECT_GT(r2.perfPerTcoDollar, 2.0);
}

TEST(Integration, WebmailDegradesOnUnifiedDesigns)
{
    // Figure 5: webmail sees net Perf/TCO-$ degradation on N1 (~40%
    // loss) and a smaller one on N2 (~20% loss).
    DesignEvaluator ev(fastParams());
    auto s1 = DesignConfig::baseline(platform::SystemClass::Srvr1);
    auto n1 = DesignConfig::n1();
    auto r =
        ev.evaluateRelative(n1, s1, workloads::Benchmark::Webmail);
    EXPECT_LT(r.perfPerTcoDollar, 1.0);
    EXPECT_GT(r.perfPerTcoDollar, 0.35);
}

TEST(Integration, RelativeTableShape)
{
    DesignEvaluator ev(fastParams());
    auto s1 = DesignConfig::baseline(platform::SystemClass::Srvr1);
    auto e2 = DesignConfig::baseline(platform::SystemClass::Emb2);
    auto table = relativeTable(ev, {e2}, s1, Metric::Perf);
    // 5 workloads + HMean row.
    EXPECT_EQ(table.rowCount(), 6u);
    auto s = table.str();
    EXPECT_NE(s.find("websearch"), std::string::npos);
    EXPECT_NE(s.find("HMean"), std::string::npos);
    EXPECT_NE(s.find("emb2"), std::string::npos);
}

} // namespace
