/**
 * @file
 * Unit tests for the thermal/packaging models (paper Section 3.3).
 */

#include <gtest/gtest.h>

#include "thermal/airflow.hh"
#include "thermal/conduction.hh"
#include "thermal/cooling_cost.hh"
#include "thermal/enclosure.hh"
#include "util/logging.hh"

namespace {

using namespace wsc;
using namespace wsc::thermal;

TEST(Airflow, PressureDropQuadraticInFlow)
{
    FlowPath p{1000.0};
    EXPECT_DOUBLE_EQ(p.pressureDrop(2.0), 4.0 * p.pressureDrop(1.0));
}

TEST(Airflow, SeriesResistancesAdd)
{
    auto s = FlowPath::series({{100.0}, {200.0}, {300.0}});
    EXPECT_DOUBLE_EQ(s.k, 600.0);
}

TEST(Airflow, ParallelIdenticalPathsQuarterResistance)
{
    // Two identical paths in parallel: k/4 (flow splits evenly and
    // deltaP is quadratic).
    auto p = FlowPath::parallel({{400.0}, {400.0}});
    EXPECT_DOUBLE_EQ(p.k, 100.0);
}

TEST(Airflow, DuctScalesWithLengthAndArea)
{
    auto base = FlowPath::duct(0.75, 0.0019);
    auto longer = FlowPath::duct(1.5, 0.0019);
    auto wider = FlowPath::duct(0.75, 0.0038);
    EXPECT_NEAR(longer.k, 2.0 * base.k, 1e-9);
    EXPECT_NEAR(wider.k, base.k / 4.0, 1e-6);
}

TEST(Airflow, RequiredFlowSensibleHeat)
{
    // ~1 kW at 10 K rise needs roughly 0.086 m^3/s of air.
    double q = requiredFlow(1000.0, 10.0);
    EXPECT_NEAR(q, 1000.0 / (1.16 * 1007.0 * 10.0), 1e-12);
}

TEST(Airflow, FanPowerAndEfficiency)
{
    FlowPath p{2.0e4};
    double q = 0.03;
    double fp = fanPower(p, q);
    EXPECT_NEAR(fp, 2.0e4 * 0.03 * 0.03 * 0.03 / 0.35, 1e-9);
    EXPECT_GT(coolingEfficiency(p, 340.0, 10.0), 1.0);
}

TEST(Airflow, InvalidArgsPanic)
{
    EXPECT_THROW(requiredFlow(100.0, 0.0), PanicError);
    EXPECT_THROW(fanPower(FlowPath{1.0}, 1.0, 0.0), PanicError);
    EXPECT_THROW(FlowPath::series({}), PanicError);
}

TEST(Conduction, HeatPipeIsThreeTimesCopper)
{
    auto cu = Spreader::copper(0.05, 2e-4);
    auto hp = Spreader::heatPipe(0.05, 2e-4);
    EXPECT_NEAR(cu.resistance() / hp.resistance(), 3.0, 1e-9);
}

TEST(Conduction, SinkResistanceFallsWithFlow)
{
    HeatSink sink{0.05, 25.0, 0.6};
    EXPECT_LT(sink.resistance(2.0), sink.resistance(1.0));
    EXPECT_GT(sink.resistance(0.5), sink.resistance(1.0));
}

TEST(Conduction, MaxDissipationBudget)
{
    auto hp = Spreader::heatPipe(0.09, 2e-4);
    HeatSink sink{0.13, 25.0, 0.6};
    double w = maxDissipation(hp, sink, 35.0);
    EXPECT_GT(w, 25.0); // must support a 25 W module
}

TEST(Enclosure, DensityMatchesPaper)
{
    // 40 conventional 1U servers; 320 blades (8 x 5U enclosures of
    // 40); ~1250 aggregated micro-blade modules per rack.
    EXPECT_EQ(makeEnclosure(PackagingDesign::Conventional1U)
                  .systemsPerRack(),
              40u);
    EXPECT_EQ(makeEnclosure(PackagingDesign::DualEntry).systemsPerRack(),
              320u);
    unsigned agg = makeEnclosure(PackagingDesign::AggregatedMicroblade)
                       .systemsPerRack();
    EXPECT_GE(agg, 1200u);
    EXPECT_LE(agg, 1300u);
}

TEST(Enclosure, DualEntryGainRoughlyTwoX)
{
    // Paper Section 3.3: the packaging optimizations have the
    // potential to improve cooling efficiencies by ~2X (dual entry).
    double gain = coolingGainOverBaseline(PackagingDesign::DualEntry);
    EXPECT_GT(gain, 1.5);
    EXPECT_LT(gain, 2.7);
}

TEST(Enclosure, AggregatedGainRoughlyFourX)
{
    double gain =
        coolingGainOverBaseline(PackagingDesign::AggregatedMicroblade);
    EXPECT_GT(gain, 3.2);
    EXPECT_LT(gain, 5.0);
}

TEST(Enclosure, ConventionalGainIsOne)
{
    EXPECT_NEAR(coolingGainOverBaseline(PackagingDesign::Conventional1U),
                1.0, 1e-9);
}

TEST(Enclosure, AggregationBeatsDiscreteCooling)
{
    auto a = analyzeAggregation(4);
    EXPECT_GT(a.aggregatedMaxW, a.discreteMaxW);
    EXPECT_GE(a.aggregatedMaxW, 25.0); // supports the 25 W module
}

TEST(CoolingCost, L1ScalesInverselyWithGain)
{
    cost::BurdenedPowerParams base;
    auto adjusted = applyCoolingGain(base, 2.0);
    EXPECT_DOUBLE_EQ(adjusted.l1, base.l1 / 2.0);
    EXPECT_DOUBLE_EQ(adjusted.k1, base.k1);
    EXPECT_LT(adjusted.burdenMultiplier(), base.burdenMultiplier());
}

TEST(CoolingCost, DesignsReduceBurden)
{
    cost::BurdenedPowerParams base;
    auto dual = applyCooling(base, PackagingDesign::DualEntry);
    auto agg = applyCooling(base, PackagingDesign::AggregatedMicroblade);
    EXPECT_LT(dual.burdenMultiplier(), base.burdenMultiplier());
    EXPECT_LT(agg.burdenMultiplier(), dual.burdenMultiplier());
}

TEST(CoolingCost, PackagingHardwareFactors)
{
    auto conv = packagingHardware(PackagingDesign::Conventional1U);
    EXPECT_DOUBLE_EQ(conv.fanCostFactor, 1.0);
    auto agg = packagingHardware(PackagingDesign::AggregatedMicroblade);
    EXPECT_LT(agg.fanCostFactor, 1.0);
    EXPECT_LT(agg.fanPowerFactor, 1.0);
}

TEST(Enclosure, Names)
{
    EXPECT_EQ(to_string(PackagingDesign::DualEntry), "dual-entry");
    EXPECT_EQ(to_string(PackagingDesign::AggregatedMicroblade),
              "aggregated-microblade");
}

/** Fan-efficiency sweep: cooling efficiency is monotone in fan eff. */
class FanEfficiencySweep : public ::testing::TestWithParam<double>
{};

TEST_P(FanEfficiencySweep, MonotoneInFanEfficiency)
{
    FlowPath p{2e4};
    double lower = coolingEfficiency(p, 200.0, 10.0, GetParam());
    double higher =
        coolingEfficiency(p, 200.0, 10.0, GetParam() + 0.1);
    EXPECT_LT(lower, higher);
}

INSTANTIATE_TEST_SUITE_P(Efficiencies, FanEfficiencySweep,
                         ::testing::Values(0.2, 0.3, 0.4, 0.5));

} // namespace
