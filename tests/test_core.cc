/**
 * @file
 * Unit tests for the core module: metrics, designs, evaluator.
 *
 * Interactive throughput searches are slow, so evaluator tests here
 * stick to batch benchmarks and cost/power paths; the end-to-end
 * interactive results are covered by test_integration.
 */

#include <gtest/gtest.h>

#include "core/design.hh"
#include "core/evaluator.hh"
#include "core/metrics.hh"
#include "core/report.hh"
#include "util/logging.hh"

namespace {

using namespace wsc;
using namespace wsc::core;

EfficiencyMetrics
sample(double perf, double watts, double inf, double pc)
{
    EfficiencyMetrics m;
    m.perf = perf;
    m.watts = watts;
    m.infDollars = inf;
    m.pcDollars = pc;
    m.tcoDollars = inf + pc;
    return m;
}

TEST(Metrics, DerivedRatios)
{
    auto m = sample(100.0, 50.0, 1000.0, 500.0);
    EXPECT_DOUBLE_EQ(m.perfPerWatt(), 2.0);
    EXPECT_DOUBLE_EQ(m.perfPerInfDollar(), 0.1);
    EXPECT_DOUBLE_EQ(m.perfPerPcDollar(), 0.2);
    EXPECT_NEAR(m.perfPerTcoDollar(), 100.0 / 1500.0, 1e-12);
}

TEST(Metrics, RelativeToBaseline)
{
    auto base = sample(100.0, 50.0, 1000.0, 500.0);
    auto target = sample(50.0, 10.0, 250.0, 100.0);
    auto r = relativeTo(target, base);
    EXPECT_DOUBLE_EQ(r.perf, 0.5);
    EXPECT_DOUBLE_EQ(r.perfPerWatt, 2.5);
    EXPECT_DOUBLE_EQ(r.perfPerInfDollar, 2.0);
    EXPECT_DOUBLE_EQ(r.perfPerPcDollar, 2.5);
    // TCO: (50/350) / (100/1500) = 15/7.
    EXPECT_NEAR(r.perfPerTcoDollar, 15.0 / 7.0, 1e-12);
}

TEST(Metrics, HarmonicAggregate)
{
    RelativeMetrics a{1.0, 1.0, 1.0, 1.0, 1.0};
    RelativeMetrics b{2.0, 4.0, 2.0, 2.0, 2.0};
    auto h = harmonicAggregate({a, b});
    EXPECT_NEAR(h.perf, 4.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(h.perfPerWatt, 1.6);
}

TEST(Metrics, ZeroDenominatorPanics)
{
    auto base = sample(100.0, 0.0, 1000.0, 500.0);
    EXPECT_THROW(base.perfPerWatt(), PanicError);
}

TEST(Design, BaselineUsesCatalogPlatform)
{
    auto d = DesignConfig::baseline(platform::SystemClass::Srvr2);
    EXPECT_EQ(d.name, "srvr2");
    EXPECT_EQ(d.packaging, thermal::PackagingDesign::Conventional1U);
    EXPECT_FALSE(d.memorySharing.has_value());
    EXPECT_FALSE(d.storage.has_value());
}

TEST(Design, N1CompositionMatchesPaper)
{
    auto d = DesignConfig::n1();
    EXPECT_EQ(d.server.cls, platform::SystemClass::Mobl);
    EXPECT_EQ(d.packaging, thermal::PackagingDesign::DualEntry);
    EXPECT_FALSE(d.memorySharing.has_value()); // N1 skips sharing
    EXPECT_FALSE(d.storage.has_value());       // and flash caching
}

TEST(Design, N2CompositionMatchesPaper)
{
    auto d = DesignConfig::n2();
    EXPECT_EQ(d.server.cls, platform::SystemClass::Emb1);
    EXPECT_EQ(d.packaging,
              thermal::PackagingDesign::AggregatedMicroblade);
    ASSERT_TRUE(d.memorySharing.has_value());
    EXPECT_EQ(*d.memorySharing, memblade::Provisioning::Dynamic);
    ASSERT_TRUE(d.storage.has_value());
    EXPECT_TRUE(d.storage->hasFlashCache);
    EXPECT_TRUE(d.storage->disk.remote);
}

TEST(Evaluator, AdjustedServerAppliesAllDeltas)
{
    DesignEvaluator ev;
    auto n2 = DesignConfig::n2();
    auto adj = ev.adjustedServer(n2);
    auto raw = n2.server;
    EXPECT_LT(adj.memory.dollars, raw.memory.dollars);
    EXPECT_LT(adj.memory.watts, raw.memory.watts);
    EXPECT_DOUBLE_EQ(adj.disk.dollars, 80.0); // remote laptop
    EXPECT_GT(adj.boardMgmtDollars, raw.boardMgmtDollars); // + flash
    EXPECT_LT(adj.powerFansDollars, raw.powerFansDollars);
}

TEST(Evaluator, BurdenReducedByPackaging)
{
    DesignEvaluator ev;
    auto base = DesignConfig::baseline(platform::SystemClass::Srvr1);
    auto n2 = DesignConfig::n2();
    EXPECT_LT(ev.burdenFor(n2).burdenMultiplier(),
              ev.burdenFor(base).burdenMultiplier());
}

TEST(Evaluator, BatchMetricsAndCaching)
{
    DesignEvaluator ev;
    auto desk = DesignConfig::baseline(platform::SystemClass::Desk);
    auto m1 = ev.evaluate(desk, workloads::Benchmark::MapredWc);
    auto m2 = ev.evaluate(desk, workloads::Benchmark::MapredWc);
    EXPECT_DOUBLE_EQ(m1.perf, m2.perf); // perf cache
    EXPECT_GT(m1.perf, 0.0);
    EXPECT_NEAR(m1.infDollars, 849.0, 1.0); // Table 2
    EXPECT_NEAR(m1.watts, 136.0, 1.0); // max operational w/ switch
}

TEST(Evaluator, RelativeBatchOrderingMatchesFigure2)
{
    DesignEvaluator ev;
    auto s1 = DesignConfig::baseline(platform::SystemClass::Srvr1);
    auto e1 = DesignConfig::baseline(platform::SystemClass::Emb1);
    auto r = ev.evaluateRelative(e1, s1, workloads::Benchmark::MapredWc);
    // Figure 2(c): emb1 mapred-wc perf ~51%, Perf/TCO ~3.6x.
    EXPECT_NEAR(r.perf, 0.51, 0.08);
    EXPECT_GT(r.perfPerTcoDollar, 2.5);
    EXPECT_GT(r.perfPerWatt, 2.5);
}

TEST(Evaluator, SlowdownAppliedForMemorySharing)
{
    DesignEvaluator ev;
    auto e1 = DesignConfig::baseline(platform::SystemClass::Emb1);
    auto shared = e1;
    shared.name = "emb1+memblade";
    shared.memorySharing = memblade::Provisioning::Static;
    double p0 =
        ev.evaluate(e1, workloads::Benchmark::MapredWc).perf;
    double p1 =
        ev.evaluate(shared, workloads::Benchmark::MapredWc).perf;
    EXPECT_LT(p1, p0);
    EXPECT_NEAR(p1 / p0, 1.0 / 1.02, 0.01); // the assumed 2% slowdown
}

TEST(Evaluator, MemorySharingImprovesTcoEfficiency)
{
    // Figure 4(c): both provisioning schemes pay off on Perf/TCO-$.
    DesignEvaluator ev;
    auto e1 = DesignConfig::baseline(platform::SystemClass::Emb1);
    for (auto scheme : {memblade::Provisioning::Static,
                        memblade::Provisioning::Dynamic}) {
        auto shared = e1;
        shared.name = "emb1+" + memblade::to_string(scheme);
        shared.memorySharing = scheme;
        auto r = ev.evaluateRelative(shared, e1,
                                     workloads::Benchmark::MapredWc);
        EXPECT_GT(r.perfPerTcoDollar, 1.0)
            << memblade::to_string(scheme);
        EXPECT_GT(r.perfPerWatt, 1.05);
    }
}

TEST(Report, MetricNamesAndValues)
{
    RelativeMetrics m{0.5, 1.5, 2.0, 2.5, 3.0};
    EXPECT_DOUBLE_EQ(metricValue(m, Metric::Perf), 0.5);
    EXPECT_DOUBLE_EQ(metricValue(m, Metric::PerfPerWatt), 1.5);
    EXPECT_DOUBLE_EQ(metricValue(m, Metric::PerfPerInfDollar), 2.0);
    EXPECT_DOUBLE_EQ(metricValue(m, Metric::PerfPerPcDollar), 2.5);
    EXPECT_DOUBLE_EQ(metricValue(m, Metric::PerfPerTcoDollar), 3.0);
    EXPECT_EQ(to_string(Metric::PerfPerTcoDollar), "Perf/TCO-$");
}

} // namespace
