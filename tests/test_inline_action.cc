/**
 * @file
 * Tests for InlineAction, the inline-storage callable the DES kernel
 * and the resources use in place of std::function<void()>: inline
 * storage up to the SBO boundary, the heap escape hatch past it,
 * move-only semantics, and the EventQueue slot-recycling behaviour
 * the request drivers rely on.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <new>

#include "sim/event_queue.hh"
#include "sim/inline_action.hh"

// Counting allocator: every global allocation in this binary bumps the
// counter, so tests can assert "this construction did not allocate".
namespace {
std::uint64_t g_allocations = 0;

void *
countedAlloc(std::size_t n)
{
    ++g_allocations;
    void *p = std::malloc(n ? n : 1);
    if (!p)
        throw std::bad_alloc();
    return p;
}
} // namespace

void *operator new(std::size_t n) { return countedAlloc(n); }
void *operator new[](std::size_t n) { return countedAlloc(n); }
void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

namespace {

using wsc::sim::EventQueue;
using wsc::sim::InlineAction;

TEST(InlineAction, InvokesHeldCallable)
{
    int hits = 0;
    InlineAction a([&hits] { ++hits; });
    ASSERT_TRUE(bool(a));
    a();
    a();
    EXPECT_EQ(hits, 2);
}

TEST(InlineAction, DefaultConstructedIsEmpty)
{
    InlineAction a;
    EXPECT_FALSE(bool(a));
}

TEST(InlineAction, MoveTransfersOwnership)
{
    int hits = 0;
    InlineAction a([&hits] { ++hits; });
    InlineAction b(std::move(a));
    EXPECT_FALSE(bool(a)); // NOLINT: moved-from state is specified
    ASSERT_TRUE(bool(b));
    b();
    EXPECT_EQ(hits, 1);

    InlineAction c;
    c = std::move(b);
    EXPECT_FALSE(bool(b)); // NOLINT
    ASSERT_TRUE(bool(c));
    c();
    EXPECT_EQ(hits, 2);
}

TEST(InlineAction, MoveAssignDestroysPreviousPayload)
{
    auto tracked = std::make_shared<int>(7);
    std::weak_ptr<int> watch = tracked;
    InlineAction a([held = std::move(tracked)] { (void)held; });
    EXPECT_FALSE(watch.expired());
    a = InlineAction([] {});
    EXPECT_TRUE(watch.expired());
}

TEST(InlineAction, ResetDestroysCapturesAndEmpties)
{
    auto tracked = std::make_shared<int>(7);
    std::weak_ptr<int> watch = tracked;
    InlineAction a([held = std::move(tracked)] { (void)held; });
    a.reset();
    EXPECT_FALSE(bool(a));
    EXPECT_TRUE(watch.expired());
}

TEST(InlineAction, HoldsMoveOnlyCallable)
{
    auto owned = std::make_unique<int>(11);
    int seen = 0;
    InlineAction a(
        [p = std::move(owned), &seen] { seen = *p; });
    a();
    EXPECT_EQ(seen, 11);
}

TEST(InlineAction, CaptureAtSboBoundaryStaysInline)
{
    // A capture of exactly kInlineBytes must not allocate — on
    // construction, on move, or on invocation.
    std::array<char, InlineAction::kInlineBytes> blob{};
    blob[0] = 42;
    static char sink = 0;
    auto fits = [blob] { sink = blob[0]; };
    static_assert(sizeof(fits) == InlineAction::kInlineBytes,
                  "capture should exactly fill the inline storage");
    static_assert(InlineAction::fitsInline<decltype(fits)>,
                  "boundary capture must qualify for inline storage");

    std::uint64_t before = g_allocations;
    InlineAction a(fits);
    InlineAction b(std::move(a));
    b();
    EXPECT_EQ(g_allocations, before);
    EXPECT_EQ(sink, 42);
}

TEST(InlineAction, OversizedCaptureTakesSingleAllocationEscapeHatch)
{
    std::array<char, InlineAction::kInlineBytes + 8> blob{};
    blob[0] = 9;
    static char sink = 0;
    auto big = [blob] { sink = blob[0]; };
    static_assert(!InlineAction::fitsInline<decltype(big)>,
                  "oversized capture must take the escape hatch");

    std::uint64_t before = g_allocations;
    InlineAction a(big);
    EXPECT_EQ(g_allocations, before + 1); // one heap move, thunk inline
    InlineAction b(std::move(a));
    b();
    EXPECT_EQ(g_allocations, before + 1); // moves stay allocation-free
    EXPECT_EQ(sink, 9);
}

TEST(InlineAction, EmptyStdFunctionYieldsEmptyAction)
{
    std::function<void()> none;
    InlineAction a(std::move(none));
    EXPECT_FALSE(bool(a));

    std::function<void()> some = [] {};
    InlineAction b(std::move(some));
    EXPECT_TRUE(bool(b));
}

TEST(InlineAction, EngagedStdFunctionRoundTrips)
{
    int hits = 0;
    std::function<void()> f = [&hits] { ++hits; };
    InlineAction a(std::move(f));
    a();
    EXPECT_EQ(hits, 1);
}

TEST(InlineActionQueue, CancelDestroysClosureImmediately)
{
    // The kernel parks actions in its slot pool; cancel() must destroy
    // the closure right away rather than holding captures hostage
    // until the stale heap entry is skipped or compacted.
    EventQueue eq;
    auto tracked = std::make_shared<int>(1);
    std::weak_ptr<int> watch = tracked;
    auto id = eq.scheduleAfter(
        1.0, [held = std::move(tracked)] { (void)held; });
    EXPECT_FALSE(watch.expired());
    EXPECT_TRUE(eq.cancel(id));
    EXPECT_TRUE(watch.expired());
    EXPECT_FALSE(eq.cancel(id)); // stale handle: generation mismatch
}

TEST(InlineActionQueue, RecycledSlotInvalidatesOldHandle)
{
    // Cancelling and rescheduling recycles the slot; the old handle's
    // generation stamp must not cancel the new tenant.
    EventQueue eq;
    auto first = eq.scheduleAfter(1.0, [] {});
    EXPECT_TRUE(eq.cancel(first));
    int hits = 0;
    auto second = eq.scheduleAfter(2.0, [&hits] { ++hits; });
    EXPECT_NE(first, second);
    EXPECT_FALSE(eq.cancel(first)); // must not hit the new tenant
    eq.runAll();
    EXPECT_EQ(hits, 1);
}

TEST(InlineActionQueue, SteadySchedulingDoesNotAllocate)
{
    // Schedule/dispatch churn with inline-sized captures must be
    // allocation-free once the kernel's pools are warm.
    EventQueue eq;
    std::uint64_t dispatched = 0;
    for (int i = 0; i < 64; ++i)
        eq.scheduleAfter(double(i), [&dispatched] { ++dispatched; });
    eq.runAll();

    std::uint64_t before = g_allocations;
    for (int i = 0; i < 1024; ++i)
        eq.scheduleAfter(double(i), [&dispatched] { ++dispatched; });
    eq.runAll();
    EXPECT_EQ(g_allocations, before);
    EXPECT_EQ(dispatched, 64u + 1024u);
}

} // namespace
