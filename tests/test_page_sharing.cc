/**
 * @file
 * Unit tests for content-based page sharing and compression.
 */

#include <gtest/gtest.h>

#include "memblade/page_sharing.hh"
#include "platform/catalog.hh"
#include "util/logging.hh"

namespace {

using namespace wsc;
using namespace wsc::memblade;

TEST(PageSharing, DisabledIsIdentity)
{
    ContentParams p;
    p.enableSharing = false;
    p.enableCompression = false;
    EXPECT_DOUBLE_EQ(physicalPerLogical(p), 1.0);
}

TEST(PageSharing, DefaultsReducePhysicalCapacity)
{
    ContentParams p;
    double f = physicalPerLogical(p);
    EXPECT_LT(f, 1.0);
    EXPECT_GT(f, 0.3); // not magic
    // Hand computation: 0.15/3 + 0.85*(0.6/2 + 0.4) = 0.05 + 0.595.
    EXPECT_NEAR(f, 0.645, 1e-12);
}

TEST(PageSharing, SharingOnlyComponent)
{
    ContentParams p;
    p.enableCompression = false;
    // 0.15/3 + 0.85 = 0.90.
    EXPECT_NEAR(physicalPerLogical(p), 0.90, 1e-12);
}

TEST(PageSharing, CompressionOnlyComponent)
{
    ContentParams p;
    p.enableSharing = false;
    // 0.6/2 + 0.4 = 0.70.
    EXPECT_NEAR(physicalPerLogical(p), 0.70, 1e-12);
}

TEST(PageSharing, DecompressionLatencyFoldedIntoLink)
{
    ContentParams p;
    auto link = linkWith(p, RemoteLink::pcieX4());
    EXPECT_NEAR(link.stallSecondsPerMiss, 4.3e-6, 1e-12);
    p.enableCompression = false;
    auto same = linkWith(p, RemoteLink::pcieX4());
    EXPECT_DOUBLE_EQ(same.stallSecondsPerMiss, 4.0e-6);
}

TEST(PageSharing, ContentReductionLowersBladeCost)
{
    auto emb1 = platform::makeSystem(platform::SystemClass::Emb1);
    auto plain = applyMemorySharing(emb1, BladeParams{},
                                    Provisioning::Static);
    auto reduced = applyMemorySharingWithContent(
        emb1, BladeParams{}, Provisioning::Static, ContentParams{});
    EXPECT_LT(reduced.memoryDollars, plain.memoryDollars);
    EXPECT_LT(reduced.memoryWatts, plain.memoryWatts);
    // Local memory and the PCIe tax are untouched: the saving is
    // bounded by the remote tier's cost.
    double remote_cost = 180.0 * 0.75 * 0.76;
    EXPECT_GT(reduced.memoryDollars,
              plain.memoryDollars - remote_cost);
}

TEST(PageSharing, DisabledContentMatchesPlainSharing)
{
    auto emb1 = platform::makeSystem(platform::SystemClass::Emb1);
    ContentParams off;
    off.enableSharing = false;
    off.enableCompression = false;
    auto plain = applyMemorySharing(emb1, BladeParams{},
                                    Provisioning::Dynamic);
    auto same = applyMemorySharingWithContent(
        emb1, BladeParams{}, Provisioning::Dynamic, off);
    EXPECT_NEAR(same.memoryDollars, plain.memoryDollars, 1e-9);
    EXPECT_NEAR(same.memoryWatts, plain.memoryWatts, 1e-9);
}

TEST(PageSharing, InvalidParamsPanic)
{
    ContentParams p;
    p.dupFraction = 1.0;
    EXPECT_THROW(physicalPerLogical(p), PanicError);
    ContentParams q;
    q.compressionRatio = 0.5;
    EXPECT_THROW(physicalPerLogical(q), PanicError);
}

/** Dedup-factor sweep: physical capacity is monotone in class size. */
class DupClassSweep : public ::testing::TestWithParam<double>
{};

TEST_P(DupClassSweep, LargerClassesSaveMore)
{
    ContentParams a, b;
    a.dupClassSize = GetParam();
    b.dupClassSize = GetParam() + 1.0;
    EXPECT_GT(physicalPerLogical(a), physicalPerLogical(b));
}

INSTANTIATE_TEST_SUITE_P(ClassSizes, DupClassSweep,
                         ::testing::Values(1.5, 2.0, 3.0, 5.0));

} // namespace
