/**
 * @file
 * Fault subsystem: failure models, spec parsing, injector state
 * machines, correlated failures, thermal coupling, and the
 * availability simulation's degraded-mode protocol.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "faults/availability_sim.hh"
#include "faults/fault_spec.hh"
#include "faults/injector.hh"
#include "faults/thermal_coupling.hh"
#include "perfsim/perf_eval.hh"
#include "platform/catalog.hh"
#include "util/hash.hh"
#include "util/logging.hh"

namespace {

using namespace wsc;
using namespace wsc::faults;

TEST(FailureModel, MttfFollowsAfr)
{
    FailureModel m;
    m.afr = 0.5; // one failure per two device-years
    EXPECT_NEAR(m.mttfSeconds(), 2.0 * 365.25 * 24 * 3600, 1.0);
}

TEST(FailureModel, ExponentialDrawsHitTheMean)
{
    FailureModel m;
    m.afr = 1.0;
    m.weibullShape = 1.0;
    Rng rng(7);
    double sum = 0.0;
    const int draws = 20000;
    for (int i = 0; i < draws; ++i)
        sum += m.drawLifetimeSeconds(rng);
    double mean = sum / draws;
    EXPECT_NEAR(mean / m.mttfSeconds(), 1.0, 0.05);
}

TEST(FailureModel, WeibullDrawsHitTheMeanForAnyShape)
{
    for (double shape : {0.8, 1.5, 3.0}) {
        FailureModel m;
        m.afr = 2.0;
        m.weibullShape = shape;
        Rng rng(11);
        double sum = 0.0;
        const int draws = 20000;
        for (int i = 0; i < draws; ++i)
            sum += m.drawLifetimeSeconds(rng);
        EXPECT_NEAR(sum / draws / m.mttfSeconds(), 1.0, 0.08)
            << "shape " << shape;
    }
}

TEST(FailureModel, MttfScaleCompressesLifetimesOnly)
{
    FailureModel m = defaultModel(Component::Disk);
    Rng a(3), b(3);
    double full = m.drawLifetimeSeconds(a, 1.0);
    double scaled = m.drawLifetimeSeconds(b, 1e-3);
    EXPECT_NEAR(scaled, full * 1e-3, full * 1e-9);
    // Repair draws are not scaled by design: compressed failures with
    // real-length repairs expose blast-radius cost in short runs.
    Rng c(5), d(5);
    EXPECT_EQ(m.drawRepairSeconds(c), m.drawRepairSeconds(d));
}

TEST(FaultSpec, ParseAcceptsCanonicalForms)
{
    EXPECT_FALSE(FaultSpec::parse("none").any());
    EXPECT_FALSE(FaultSpec::parse("").any());
    EXPECT_TRUE(FaultSpec::parse("all").any());
    for (auto c : allComponents)
        EXPECT_TRUE(FaultSpec::parse("all").enabled(c));

    auto s = FaultSpec::parse("disk, fan,memory-blade");
    EXPECT_TRUE(s.enabled(Component::Disk));
    EXPECT_TRUE(s.enabled(Component::Fan));
    EXPECT_TRUE(s.enabled(Component::MemoryBlade));
    EXPECT_FALSE(s.enabled(Component::Server));
    EXPECT_EQ(s.summary(), "disk,fan,memory-blade");
    EXPECT_EQ(FaultSpec::parse("all").summary(), "all");
    EXPECT_EQ(FaultSpec::none().summary(), "none");
}

TEST(FaultSpec, ParseRejectsUnknownComponents)
{
    EXPECT_THROW(FaultSpec::parse("disk,flux-capacitor"), FatalError);
}

TEST(ThermalCoupling, BudgetPowerSitsAtAllowableDeltaT)
{
    auto enc =
        thermal::makeEnclosure(thermal::PackagingDesign::Conventional1U);
    auto tc = fanFailureCoupling(thermal::PackagingDesign::Conventional1U,
                                 enc.serverPowerBudgetW, 4);
    EXPECT_NEAR(tc.baseDeltaT, enc.allowableDeltaT, 1e-9);
    // One of four fans out: delta-T rises by 4/3.
    EXPECT_NEAR(tc.degradedDeltaT, tc.baseDeltaT * 4.0 / 3.0, 1e-9);
}

TEST(ThermalCoupling, CrossingTimeMatchesFirstOrderFormula)
{
    const double tau = 120.0;
    // 90% of the power budget: below throttle at full flow, above it
    // in the degraded (one-of-two-fans) steady state.
    auto enc = thermal::makeEnclosure(thermal::PackagingDesign::DualEntry);
    auto tc = fanFailureCoupling(thermal::PackagingDesign::DualEntry,
                                 0.9 * enc.serverPowerBudgetW, 2, tau,
                                 1.1, 1.6);
    ASSERT_GT(tc.degradedDeltaT, tc.throttleDeltaT);
    double expected =
        -tau * std::log((tc.degradedDeltaT - tc.throttleDeltaT) /
                        (tc.degradedDeltaT - tc.baseDeltaT));
    EXPECT_DOUBLE_EQ(tc.timeToThrottleSeconds, expected);
}

TEST(ThermalCoupling, CoolDesignNeverThrottles)
{
    // Four fans and a fraction of the power budget: the degraded
    // steady state stays below the throttle threshold.
    auto enc =
        thermal::makeEnclosure(thermal::PackagingDesign::Conventional1U);
    auto tc = fanFailureCoupling(thermal::PackagingDesign::Conventional1U,
                                 0.5 * enc.serverPowerBudgetW, 4);
    EXPECT_TRUE(std::isinf(tc.timeToThrottleSeconds));
    EXPECT_TRUE(std::isinf(tc.timeToShutdownSeconds));
}

TEST(ThermalCoupling, SingleFanMarchesToShutdown)
{
    // The aggregated micro-blade's lone mover: losing it leaves only
    // natural convection, so even a modest load crosses shutdown.
    auto enc = thermal::makeEnclosure(
        thermal::PackagingDesign::AggregatedMicroblade);
    auto tc = fanFailureCoupling(
        thermal::PackagingDesign::AggregatedMicroblade,
        0.8 * enc.serverPowerBudgetW, 1);
    EXPECT_TRUE(std::isfinite(tc.timeToShutdownSeconds));
    EXPECT_LE(tc.timeToThrottleSeconds, tc.timeToShutdownSeconds);
}

InjectorConfig
serverOnlyConfig(double mttfScale)
{
    InjectorConfig cfg;
    cfg.spec = FaultSpec::parse("server");
    cfg.spec.mttfScale = mttfScale;
    cfg.seed = 42;
    return cfg;
}

TEST(FaultInjector, ServerWalksThroughTheStateMachine)
{
    sim::EventQueue eq;
    auto cfg = serverOnlyConfig(1e-5);
    FaultInjector inj(eq, cfg, 1);
    std::vector<double> downAt, upAt;
    inj.onServerDown(
        [&](unsigned s, Component c) {
            EXPECT_EQ(s, 0u);
            EXPECT_EQ(c, Component::Server);
            downAt.push_back(eq.now());
        });
    inj.onServerUp([&](unsigned s) {
        EXPECT_EQ(s, 0u);
        upAt.push_back(eq.now());
    });

    EXPECT_EQ(inj.serverHealth(0), Health::Healthy);
    inj.start();

    // Run to the first failure.
    while (downAt.empty() && eq.step())
        ;
    ASSERT_EQ(downAt.size(), 1u);
    EXPECT_FALSE(inj.serverUp(0));
    EXPECT_EQ(inj.upCount(), 0u);
    EXPECT_EQ(inj.serverHealth(0), Health::Failed);

    // Detection lag turns Failed into Repairing before repair lands.
    while (upAt.empty() && eq.step()) {
        if (inj.serverUp(0))
            break;
        if (eq.now() > downAt[0] + cfg.detectionSeconds) {
            EXPECT_EQ(inj.serverHealth(0), Health::Repairing);
        }
    }
    ASSERT_EQ(upAt.size(), 1u);
    EXPECT_TRUE(inj.serverUp(0));
    EXPECT_EQ(inj.serverHealth(0), Health::Healthy);
    EXPECT_GE(upAt[0] - downAt[0], cfg.detectionSeconds);
    EXPECT_EQ(inj.stats().failures[std::size_t(Component::Server)], 1u);
    EXPECT_EQ(inj.stats().repairs[std::size_t(Component::Server)], 1u);
    EXPECT_EQ(inj.stats().serverCrashes, 1u);
    EXPECT_NEAR(inj.stats().serverDownSeconds, upAt[0] - downAt[0],
                1e-9);
}

TEST(FaultInjector, MemoryBladeTakesDownTheWholeEnsemble)
{
    sim::EventQueue eq;
    InjectorConfig cfg;
    cfg.spec = FaultSpec::parse("memory-blade");
    cfg.spec.mttfScale = 1e-5;
    cfg.memoryBlade = true;
    cfg.seed = 7;
    const unsigned servers = 6;
    FaultInjector inj(eq, cfg, servers);
    unsigned downs = 0, ups = 0;
    inj.onServerDown([&](unsigned, Component c) {
        EXPECT_EQ(c, Component::MemoryBlade);
        ++downs;
    });
    inj.onServerUp([&](unsigned) { ++ups; });
    inj.start();

    while (downs == 0 && eq.step())
        ;
    EXPECT_EQ(downs, servers);
    EXPECT_EQ(inj.upCount(), 0u);
    EXPECT_EQ(inj.stats().blastMax, servers);

    while (ups < servers && eq.step())
        ;
    EXPECT_EQ(ups, servers);
    EXPECT_EQ(inj.upCount(), servers);
}

TEST(FaultInjector, RemoteDiskTargetDownsItsFanoutGroup)
{
    sim::EventQueue eq;
    InjectorConfig cfg;
    cfg.spec = FaultSpec::parse("disk");
    cfg.spec.mttfScale = 1e-5;
    cfg.storageFanout = 4;
    cfg.seed = 13;
    FaultInjector inj(eq, cfg, 8);
    std::vector<unsigned> downed;
    inj.onServerDown(
        [&](unsigned s, Component c) {
            EXPECT_EQ(c, Component::Disk);
            downed.push_back(s);
        });
    inj.start();
    while (downed.empty() && eq.step())
        ;
    // Exactly one fanout-sized group fell together.
    ASSERT_EQ(downed.size(), 4u);
    unsigned group = downed[0] / 4;
    for (unsigned s : downed)
        EXPECT_EQ(s / 4, group);
    EXPECT_EQ(inj.stats().blastMax, 4u);
    EXPECT_EQ(inj.upCount(), 4u);
}

TEST(FaultInjector, FanFailureThrottlesAtTheModeledTime)
{
    sim::EventQueue eq;
    InjectorConfig cfg;
    cfg.spec = FaultSpec::parse("fan");
    cfg.spec.mttfScale = 1e-4;
    cfg.seed = 99;
    // A single fan makes the replay unambiguous (exactly one fan
    // stream exists) and the thermal march fast (natural-convection
    // fallback), so the throttle always lands before the repair.
    cfg.fansPerServer = 1;
    cfg.packaging = thermal::PackagingDesign::DualEntry;
    // Run hot enough that the fan loss crosses the throttle threshold.
    cfg.serverWatts =
        thermal::makeEnclosure(thermal::PackagingDesign::DualEntry)
            .serverPowerBudgetW;
    FaultInjector inj(eq, cfg, 1);
    ASSERT_TRUE(std::isfinite(
        inj.thermalResponse().timeToThrottleSeconds));

    std::vector<std::pair<double, double>> throttles;
    inj.onServerThrottle([&](unsigned s, double factor) {
        EXPECT_EQ(s, 0u);
        throttles.push_back({eq.now(), factor});
    });
    inj.start();
    while (throttles.empty() && eq.step())
        ;
    ASSERT_GE(throttles.size(), 1u);

    // Replay the fan unit's identity-hashed stream to recover the
    // failure instant; the throttle must land exactly at the modeled
    // crossing time after it.
    Rng stream(seedFor(cfg.seed, "fault", to_string(Component::Fan),
                       0u, 0u));
    double tFail = cfg.spec.model(Component::Fan)
                       .drawLifetimeSeconds(stream, cfg.spec.mttfScale);
    EXPECT_DOUBLE_EQ(throttles[0].first,
                     tFail +
                         inj.thermalResponse().timeToThrottleSeconds);
    EXPECT_EQ(throttles[0].second, cfg.throttleCapacityFactor);
    EXPECT_EQ(inj.serverHealth(0), Health::Degraded);

    // The repair lifts the throttle (capacity factor back to 1).
    while (throttles.size() < 2 && eq.step())
        ;
    ASSERT_EQ(throttles.size(), 2u);
    EXPECT_EQ(throttles[1].second, 1.0);
    EXPECT_EQ(inj.serverHealth(0), Health::Healthy);
    EXPECT_GT(inj.stats().serverDegradedSeconds, 0.0);
}

TEST(FaultInjector, EmptySpecSchedulesNothing)
{
    sim::EventQueue eq;
    InjectorConfig cfg; // spec defaults to none
    FaultInjector inj(eq, cfg, 16);
    inj.start();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(inj.stats().totalFailures(), 0u);
    EXPECT_EQ(inj.upCount(), 16u);
}

perfsim::StationConfig
testStations()
{
    perfsim::PerfEvaluator perf;
    auto server = platform::makeSystem(platform::SystemClass::Emb1);
    auto workload =
        workloads::makeBenchmark(workloads::Benchmark::Websearch);
    return perf.stationsFor(server, workload->traits(), {});
}

AvailabilityParams
availParams()
{
    AvailabilityParams p;
    p.servers = 4;
    p.horizonSeconds = 120.0;
    p.epochSeconds = 5.0;
    p.offeredRps = 40.0;
    p.seed = 2024;
    return p;
}

TEST(AvailabilitySim, FaultFreeClusterIsFullyAvailable)
{
    auto st = testStations();
    auto workload =
        workloads::makeBenchmark(workloads::Benchmark::Websearch);
    auto &iw = dynamic_cast<workloads::InteractiveWorkload &>(*workload);
    auto r = simulateAvailability(iw, st, availParams());
    EXPECT_EQ(r.availability, 1.0);
    EXPECT_EQ(r.epochsPassed, r.epochsTotal);
    EXPECT_EQ(r.faults.totalFailures(), 0u);
    EXPECT_EQ(r.giveups, 0u);
    EXPECT_EQ(r.meanTimeToQosViolationSeconds, r.horizonSeconds);
    EXPECT_GT(r.goodputFraction, 0.95);
}

TEST(AvailabilitySim, InjectedFaultsCostAvailability)
{
    auto st = testStations();
    auto workload =
        workloads::makeBenchmark(workloads::Benchmark::Websearch);
    auto &iw = dynamic_cast<workloads::InteractiveWorkload &>(*workload);
    auto p = availParams();
    // ~80% of the four Emb1 servers' aggregate sustainable websearch
    // throughput (~210 rps each): healthy epochs pass, but losing one
    // server pushes the survivors past saturation.
    p.offeredRps = 680.0;
    p.injector.spec = FaultSpec::parse("server");
    // Compress MTTF so a 120 s horizon sees crashes: at 2e-7 a
    // server's mean lifetime is ~315 s, so four servers average one
    // to two crashes per run (and repairs outlast the horizon).
    p.injector.spec.mttfScale = 2e-7;
    auto r = simulateAvailability(iw, st, p);
    EXPECT_GT(r.faults.totalFailures(), 0u);
    EXPECT_GT(r.serverDownFraction, 0.0);
    EXPECT_LT(r.availability, 1.0);
    EXPECT_GT(r.availability, 0.0);
    EXPECT_LT(r.meanTimeToQosViolationSeconds, r.horizonSeconds);
    // The degraded-mode protocol engaged: timeouts and retries, and
    // the survivors kept serving (goodput did not collapse to zero).
    EXPECT_GT(r.timeouts, 0u);
    EXPECT_GT(r.retries, 0u);
    EXPECT_GT(r.goodputRps, 0.0);
}

TEST(AvailabilitySim, RunsAreBitIdentical)
{
    auto st = testStations();
    auto workload =
        workloads::makeBenchmark(workloads::Benchmark::Websearch);
    auto &iw = dynamic_cast<workloads::InteractiveWorkload &>(*workload);
    auto p = availParams();
    p.injector.spec = FaultSpec::all();
    p.injector.spec.mttfScale = 5e-5;
    p.injector.memoryBlade = true;
    auto a = simulateAvailability(iw, st, p);
    auto b = simulateAvailability(iw, st, p);
    EXPECT_EQ(a.availability, b.availability);
    EXPECT_EQ(a.offered, b.offered);
    EXPECT_EQ(a.completions, b.completions);
    EXPECT_EQ(a.timeouts, b.timeouts);
    EXPECT_EQ(a.faults.totalFailures(), b.faults.totalFailures());
    EXPECT_EQ(a.goodputRps, b.goodputRps);
}

} // namespace
