/**
 * @file
 * Unit tests for the replacement-policy zoo (ARC, SLRU, 2Q, LFUDA).
 *
 * The acceptance criterion for the zoo is the PR-4 oracle contract:
 * every kernel makes exactly the same hit/miss decision as its
 * per-access reference implementation on every access. The grid test
 * enforces it across all five workload profiles and three capacities;
 * the edge tests pin tiny frame counts and adversarial patterns where
 * the published algorithms have the most corner cases.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "memblade/policy_zoo.hh"
#include "memblade/trace_io.hh"
#include "util/logging.hh"

namespace {

using namespace wsc;
using namespace wsc::memblade;

constexpr PolicyKind kZooKinds[] = {PolicyKind::Arc, PolicyKind::Slru,
                                    PolicyKind::TwoQ,
                                    PolicyKind::Lfuda};

/**
 * Replay @p trace through both the flat kernel and the per-access
 * reference of @p kind, demanding the identical decision (and the
 * identical resident count) on every single access.
 */
void
expectKernelMatchesReference(PolicyKind kind,
                             const std::vector<PageId> &trace,
                             std::size_t frames, std::uint64_t bound,
                             const std::string &label)
{
    auto ref = makePolicy(kind, frames, Rng(21));
    withPolicyKernel(kind, frames, bound, Rng(21), [&](auto &k) {
        for (std::size_t i = 0; i < trace.size(); ++i) {
            bool kernelHit = k.access(trace[i]);
            bool refHit = ref->access(trace[i]);
            if (kernelHit != refHit) {
                ADD_FAILURE()
                    << label << ": decision diverged at access " << i
                    << " (page " << trace[i] << "): kernel "
                    << (kernelHit ? "hit" : "miss") << ", reference "
                    << (refHit ? "hit" : "miss");
                return;
            }
            if (k.resident() != ref->resident()) {
                ADD_FAILURE()
                    << label << ": resident counts diverged at access "
                    << i << ": kernel " << k.resident()
                    << ", reference " << ref->resident();
                return;
            }
        }
        EXPECT_LE(ref->resident(), frames) << label;
    });
}

// The acceptance-criterion grid: every new policy, all five workload
// profiles, three capacities spanning thrashing to comfortable.
TEST(PolicyZoo, KernelMatchesReferenceAcrossWorkloadsAndCapacities)
{
    const double fractions[] = {0.01, 0.05, 0.25};
    for (auto b : workloads::allBenchmarks) {
        auto profile = profileFor(b);
        auto trace = generateTrace(profile, 30000, Rng(42));
        for (double f : fractions) {
            auto frames = std::size_t(
                std::max(1.0, double(profile.footprintPages) * f));
            for (PolicyKind kind : kZooKinds)
                expectKernelMatchesReference(
                    kind, trace, frames, profile.footprintPages,
                    std::string(to_string(kind)) + "/" + profile.name +
                        "/" + std::to_string(f));
        }
    }
}

// Tiny caches exercise every structural corner: SLRU with no
// protected segment (frames == 1), 2Q with Kin == Kout == 1, ARC with
// target pinned at the edges, LFUDA heap of 1-3 slots.
TEST(PolicyZoo, KernelMatchesReferenceAtTinyCapacities)
{
    TraceProfile small;
    small.name = "tiny";
    small.footprintPages = 8;
    auto trace = generateTrace(small, 4000, Rng(3));
    for (std::size_t frames : {std::size_t(1), std::size_t(2),
                               std::size_t(3), std::size_t(5)}) {
        for (PolicyKind kind : kZooKinds)
            expectKernelMatchesReference(
                kind, trace, frames, small.footprintPages,
                std::string(to_string(kind)) + "/tiny/" +
                    std::to_string(frames));
    }
}

// Adversarial shapes: a looping set one larger than the cache (LRU's
// worst case, where ARC/2Q should adapt) and a hot set punctuated by
// one-shot sequential scans (the scan-resistance motivation).
TEST(PolicyZoo, KernelMatchesReferenceOnAdversarialPatterns)
{
    std::vector<PageId> loop;
    for (int rep = 0; rep < 200; ++rep)
        for (PageId p = 0; p < 17; ++p)
            loop.push_back(p);

    std::vector<PageId> scanned;
    PageId scanBase = 100;
    for (int rep = 0; rep < 100; ++rep) {
        for (PageId p = 0; p < 8; ++p) // hot set
            scanned.push_back(p);
        for (PageId p = 0; p < 32; ++p) // one-shot scan
            scanned.push_back(scanBase++);
    }

    for (PolicyKind kind : kZooKinds) {
        expectKernelMatchesReference(
            kind, loop, 16, 17,
            std::string(to_string(kind)) + "/loop17");
        expectKernelMatchesReference(
            kind, scanned, 16, scanBase,
            std::string(to_string(kind)) + "/scan");
    }
}

// Sparse page ids (bound 0) take PageSlotMap's hashed path instead of
// the direct-mapped table; the oracle contract must hold there too.
TEST(PolicyZoo, KernelMatchesReferenceWithSparseIds)
{
    TraceProfile small;
    small.name = "sparse";
    small.footprintPages = 64;
    auto trace = generateTrace(small, 5000, Rng(8));
    for (auto &p : trace)
        p = p * 0x9e3779b97f4a7c15ull % (std::uint64_t(1) << 40);
    for (PolicyKind kind : kZooKinds)
        expectKernelMatchesReference(
            kind, trace, 16, 0,
            std::string(to_string(kind)) + "/sparse");
}

// The batched replay driver (chunked fills, prefetch hints) must not
// change any decision relative to the plain per-access loop.
TEST(PolicyZoo, ReplayPagesMatchesReferenceHitCounts)
{
    auto profile = profileFor(workloads::Benchmark::Webmail);
    auto trace = generateTrace(profile, 50000, Rng(17));
    auto frames =
        std::size_t(double(profile.footprintPages) * 0.25);
    for (PolicyKind kind : kZooKinds) {
        auto fast = replayPages(trace.data(), trace.size(), kind,
                                frames, profile.footprintPages,
                                Rng(7));
        auto ref = makePolicy(kind, frames, Rng(7));
        std::uint64_t refHits = 0;
        for (PageId p : trace)
            refHits += ref->access(p);
        EXPECT_EQ(fast.hits, refHits) << to_string(kind);
        EXPECT_EQ(fast.misses, trace.size() - refHits)
            << to_string(kind);
        EXPECT_EQ(fast.accesses, trace.size()) << to_string(kind);
    }
}

TEST(PolicyZoo, PolicyNamesRoundTrip)
{
    for (PolicyKind kind : allPolicyKinds) {
        EXPECT_EQ(policyFromString(to_string(kind)), kind);
        auto p = makePolicy(kind, 8, Rng(1));
        EXPECT_EQ(p->name(), to_string(kind));
    }
    EXPECT_THROW(policyFromString("mru"), FatalError);
    EXPECT_THROW(policyFromString(""), FatalError);
}

// LFUDA's defining behavior: after an eviction raises the age, a new
// page's key starts at 1 + age, so long-resident high-count pages do
// not starve newcomers forever (plain LFU would).
TEST(PolicyZoo, LfudaAgesOutStaleFrequentPages)
{
    auto policy = makePolicy(PolicyKind::Lfuda, 2, Rng(1));
    for (int i = 0; i < 100; ++i)
        policy->access(1); // page 1: count 100
    policy->access(2);     // fills the second frame
    // Alternate two fresh pages: each miss evicts the other fresh
    // page and raises the age; once age exceeds page 1's key, page 1
    // becomes the victim and a fresh page finally sticks.
    for (int i = 0; i < 300; ++i)
        policy->access(3 + (i & 1));
    bool page1Hit = policy->access(1);
    EXPECT_FALSE(page1Hit);
}

// SLRU's defining behavior: a page must be touched twice to enter the
// protected segment, and one-shot pages wash through probation only.
TEST(PolicyZoo, SlruProtectsReReferencedPages)
{
    auto policy = makePolicy(PolicyKind::Slru, 4, Rng(1));
    policy->access(1);
    policy->access(1); // promoted to protected
    // 100 one-shot pages churn the 2-frame probationary segment...
    for (PageId p = 10; p < 110; ++p)
        policy->access(p);
    // ...but the protected page survives.
    EXPECT_TRUE(policy->access(1));
}

} // namespace
