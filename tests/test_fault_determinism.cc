/**
 * @file
 * Determinism contract for the fault-injection subsystem: availability
 * evaluation fans out over a thread pool yet must produce bit-identical
 * results to the serial path at every pool width, and the serialized
 * report (timings excluded) must be byte-identical. Also pins the
 * zero-fault invariant: with no --faults spec the report carries no
 * "avail" section and the perf content is untouched by the subsystem.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/evaluator.hh"
#include "core/sweep_report.hh"
#include "faults/fault_spec.hh"
#include "obs/run_report.hh"

namespace {

using namespace wsc;
using namespace wsc::core;

EvaluatorParams
fastParams()
{
    EvaluatorParams p;
    p.search.window.warmupSeconds = 1.0;
    p.search.window.measureSeconds = 4.0;
    p.search.iterations = 3;
    return p;
}

std::vector<DesignConfig>
designs()
{
    return {DesignConfig::baseline(platform::SystemClass::Emb1),
            DesignConfig::n1(), DesignConfig::n2()};
}

AvailabilityEvalParams
availParams()
{
    AvailabilityEvalParams p;
    p.spec = faults::FaultSpec::all();
    // Compress MTTFs so a two-minute horizon sees real fault activity.
    p.spec.mttfScale = 2e-5;
    p.servers = 4;
    p.horizonSeconds = 120.0;
    p.epochSeconds = 5.0;
    p.loadFactor = 0.6;
    return p;
}

void
expectBitIdentical(const faults::AvailabilityResult &a,
                   const faults::AvailabilityResult &b,
                   const std::string &where)
{
    // Bitwise, not EXPECT_DOUBLE_EQ: the contract is identity.
    EXPECT_EQ(std::memcmp(&a.availability, &b.availability,
                          sizeof(double)),
              0)
        << "availability differs: " << where;
    EXPECT_EQ(
        std::memcmp(&a.goodputRps, &b.goodputRps, sizeof(double)), 0)
        << "goodput differs: " << where;
    EXPECT_EQ(a.epochsPassed, b.epochsPassed) << where;
    EXPECT_EQ(a.completions, b.completions) << where;
    EXPECT_EQ(a.timeouts, b.timeouts) << where;
    EXPECT_EQ(a.retries, b.retries) << where;
    EXPECT_EQ(a.giveups, b.giveups) << where;
    EXPECT_EQ(a.faults.totalFailures(), b.faults.totalFailures())
        << where;
    EXPECT_EQ(a.faults.serverCrashes, b.faults.serverCrashes) << where;
    EXPECT_EQ(a.kernel.dispatched, b.kernel.dispatched) << where;
}

TEST(FaultDeterminism, BatchMatchesSerialAtEveryWidth)
{
    auto ds = designs();
    auto ap = availParams();

    // Serial reference: one-at-a-time evaluateAvailability calls.
    DesignEvaluator ref(fastParams());
    std::vector<faults::AvailabilityResult> serial;
    for (const auto &d : ds)
        serial.push_back(ref.evaluateAvailability(d, ap));

    for (unsigned threads : {1u, 2u, 8u}) {
        ThreadPool pool(threads);
        DesignEvaluator ev(fastParams());
        auto batch = ev.evaluateAvailabilityBatch(ds, ap, &pool);
        ASSERT_EQ(batch.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i)
            expectBitIdentical(serial[i], batch[i],
                               ds[i].name + " at width " +
                                   std::to_string(threads));
    }
}

TEST(FaultDeterminism, AvailReportJsonIdenticalAtEveryWidth)
{
    auto ds = designs();
    auto ap = availParams();
    obs::ReportOptions noTimings;
    noTimings.includeTimings = false;

    std::vector<std::string> reports;
    for (unsigned threads : {1u, 2u, 8u}) {
        ThreadPool pool(threads);
        DesignEvaluator ev(fastParams());
        auto runs = ev.evaluateAvailabilityBatch(ds, ap, &pool);
        std::string all;
        for (std::size_t i = 0; i < ds.size(); ++i)
            all += obs::toJson(availReport(ds[i], ap, runs[i]),
                               noTimings) +
                   "\n";
        reports.push_back(all);
    }
    ASSERT_EQ(reports.size(), 3u);
    EXPECT_EQ(reports[0], reports[1]);
    EXPECT_EQ(reports[0], reports[2]);
    // Sanity: the comparison covers real avail/fault content.
    EXPECT_NE(reports[0].find("\"availability\""), std::string::npos);
    EXPECT_NE(reports[0].find("\"per_component\""), std::string::npos);
    EXPECT_NE(reports[0].find("\"blast_radius_max\""),
              std::string::npos);
}

TEST(FaultDeterminism, SweepReportOmitsAvailSectionWhenEmpty)
{
    // The zero-fault invariant: a report built without availability
    // entries must not mention the section at all, so pre-subsystem
    // report consumers (and byte-level diffs) see no change.
    DesignEvaluator ev(fastParams());
    std::vector<EvalCell> cells{
        {DesignConfig::baseline(platform::SystemClass::Emb1),
         workloads::Benchmark::Websearch}};
    ev.evaluateBatch(cells);
    auto report = buildSweepReport(ev, cells, "test");
    EXPECT_TRUE(report.avail.empty());
    auto json = obs::toJson(report);
    EXPECT_EQ(json.find("\"avail\""), std::string::npos);

    obs::AvailReport entry;
    entry.design = "probe";
    report.avail.push_back(entry);
    EXPECT_NE(obs::toJson(report).find("\"avail\""),
              std::string::npos);
}

TEST(FaultDeterminism, ZeroFaultAvailabilityLeavesPerfMetricsAlone)
{
    // Running the availability mode with an empty spec must not
    // perturb the evaluator's perf results: the injector registers no
    // units and the cached measurements stay bit-identical.
    auto d = DesignConfig::baseline(platform::SystemClass::Emb1);

    DesignEvaluator plain(fastParams());
    auto before = plain.evaluate(d, workloads::Benchmark::Websearch);

    DesignEvaluator withAvail(fastParams());
    AvailabilityEvalParams ap = availParams();
    ap.spec = faults::FaultSpec::none();
    auto run = withAvail.evaluateAvailability(d, ap);
    EXPECT_EQ(run.faults.totalFailures(), 0u);
    EXPECT_EQ(run.availability, 1.0);
    auto after = withAvail.evaluate(d, workloads::Benchmark::Websearch);

    EXPECT_EQ(std::memcmp(&before.perf, &after.perf, sizeof(double)),
              0);
    EXPECT_EQ(std::memcmp(&before.tcoDollars, &after.tcoDollars,
                          sizeof(double)),
              0);
}

} // namespace
