/**
 * @file
 * Tests keeping the experiment registry complete and consistent with
 * the bench tree.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "core/experiments.hh"

namespace {

using namespace wsc;
using namespace wsc::core;

TEST(Experiments, RegistryNonEmptyAndUnique)
{
    const auto &all = allExperiments();
    ASSERT_GE(all.size(), 25u);
    std::set<std::string> ids;
    for (const auto &e : all) {
        EXPECT_FALSE(e.id.empty());
        EXPECT_FALSE(e.title.empty());
        EXPECT_FALSE(e.benchTarget.empty());
        ids.insert(e.id);
    }
    EXPECT_EQ(ids.size(), all.size()) << "duplicate experiment ids";
}

TEST(Experiments, EveryPaperArtifactRegistered)
{
    for (const auto &id :
         {"table1", "fig1a", "fig1b", "table2", "fig2c", "fig3",
          "fig4b", "fig4c", "table3a", "table3b", "fig5", "sec36"}) {
        auto *e = findExperiment(id);
        ASSERT_NE(e, nullptr) << id;
        EXPECT_NE(e->kind, ExperimentKind::Extension) << id;
        EXPECT_FALSE(e->paperReference.empty()) << id;
    }
}

TEST(Experiments, ExtensionsHaveNoPaperReference)
{
    for (const auto &e : allExperiments()) {
        if (e.kind == ExperimentKind::Extension)
            EXPECT_TRUE(e.paperReference.empty()) << e.id;
    }
}

TEST(Experiments, LookupMissReturnsNull)
{
    EXPECT_EQ(findExperiment("nonexistent"), nullptr);
}

TEST(Experiments, BenchTargetsExistInSourceTree)
{
    // Every registered bench target must have a source file under
    // bench/ — the registry cannot reference binaries that are not
    // built.
    namespace fs = std::filesystem;
    fs::path bench_dir;
    for (auto candidate : {"bench", "../bench", "../../bench",
                           "/root/repo/bench"}) {
        if (fs::exists(fs::path(candidate) / "bench_fig1.cc")) {
            bench_dir = candidate;
            break;
        }
    }
    if (bench_dir.empty())
        GTEST_SKIP() << "bench sources not reachable from test cwd";
    for (const auto &target : registeredBenchTargets()) {
        EXPECT_TRUE(fs::exists(bench_dir / (target + ".cc")))
            << target;
    }
}

TEST(Experiments, KindNamesPrintable)
{
    EXPECT_EQ(to_string(ExperimentKind::PaperTable), "paper-table");
    EXPECT_EQ(to_string(ExperimentKind::Extension), "extension");
}

} // namespace
