/**
 * @file
 * Unit and property tests for the workload distributions.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "sim/distributions.hh"
#include "util/logging.hh"

namespace {

using namespace wsc;
using namespace wsc::sim;

TEST(Constant, AlwaysSameValue)
{
    Rng r(1);
    ConstantDist d(4.2);
    for (int i = 0; i < 10; ++i)
        EXPECT_DOUBLE_EQ(d.sample(r), 4.2);
    EXPECT_DOUBLE_EQ(d.mean(), 4.2);
}

TEST(Uniform, InRangeAndMean)
{
    Rng r(2);
    UniformDist d(2.0, 6.0);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        double x = d.sample(r);
        ASSERT_GE(x, 2.0);
        ASSERT_LT(x, 6.0);
        sum += x;
    }
    EXPECT_NEAR(sum / n, d.mean(), 0.02);
    EXPECT_DOUBLE_EQ(d.mean(), 4.0);
}

TEST(Exponential, SampleMeanMatches)
{
    Rng r(3);
    ExponentialDist d(0.25);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += d.sample(r);
    EXPECT_NEAR(sum / n, 0.25, 0.005);
}

TEST(Lognormal, MeanAndCovRecovered)
{
    Rng r(4);
    LognormalDist d(10.0, 0.5);
    double sum = 0, sumsq = 0;
    const int n = 400000;
    for (int i = 0; i < n; ++i) {
        double x = d.sample(r);
        ASSERT_GT(x, 0.0);
        sum += x;
        sumsq += x * x;
    }
    double mean = sum / n;
    double var = sumsq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.1);
    EXPECT_NEAR(std::sqrt(var) / mean, 0.5, 0.02);
}

TEST(BoundedPareto, RespectsBounds)
{
    Rng r(5);
    BoundedParetoDist d(1.0, 100.0, 1.3);
    for (int i = 0; i < 50000; ++i) {
        double x = d.sample(r);
        ASSERT_GE(x, 1.0);
        ASSERT_LE(x, 100.0);
    }
}

TEST(BoundedPareto, SampleMeanMatchesClosedForm)
{
    Rng r(6);
    BoundedParetoDist d(1.0, 1000.0, 1.5);
    double sum = 0;
    const int n = 500000;
    for (int i = 0; i < n; ++i)
        sum += d.sample(r);
    EXPECT_NEAR(sum / n, d.mean(), d.mean() * 0.03);
}

TEST(Zipf, PmfSumsToOne)
{
    ZipfDist d(1000, 0.9);
    double total = 0;
    for (std::uint64_t k = 1; k <= 1000; ++k)
        total += d.pmf(k);
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, RankOneIsMostPopular)
{
    ZipfDist d(100, 1.0);
    EXPECT_GT(d.pmf(1), d.pmf(2));
    EXPECT_GT(d.pmf(2), d.pmf(50));
    EXPECT_GT(d.pmf(50), d.pmf(100));
}

TEST(Zipf, EmpiricalFrequencyTracksPmf)
{
    Rng r(7);
    ZipfDist d(50, 0.8);
    std::map<std::uint64_t, int> counts;
    const int n = 300000;
    for (int i = 0; i < n; ++i)
        ++counts[d.sampleRank(r)];
    for (std::uint64_t k : {1ull, 2ull, 10ull, 50ull}) {
        double expected = d.pmf(k);
        double observed = double(counts[k]) / n;
        EXPECT_NEAR(observed, expected, 0.15 * expected + 0.001)
            << "rank " << k;
    }
}

TEST(Zipf, SamplesInRange)
{
    Rng r(8);
    ZipfDist d(10, 1.2);
    for (int i = 0; i < 10000; ++i) {
        auto k = d.sampleRank(r);
        ASSERT_GE(k, 1u);
        ASSERT_LE(k, 10u);
    }
}

TEST(Zipf, SingleRankDegenerate)
{
    Rng r(9);
    ZipfDist d(1, 1.0);
    EXPECT_EQ(d.sampleRank(r), 1u);
    EXPECT_DOUBLE_EQ(d.mean(), 1.0);
    EXPECT_DOUBLE_EQ(d.pmf(1), 1.0);
}

TEST(Zipf, InvalidArgsPanic)
{
    EXPECT_THROW(ZipfDist(0, 1.0), PanicError);
    EXPECT_THROW(ZipfDist(10, 0.0), PanicError);
}

TEST(Empirical, FrequenciesMatchWeights)
{
    Rng r(10);
    EmpiricalDist d({1.0, 2.0, 3.0}, {1.0, 2.0, 7.0});
    std::map<double, int> counts;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        ++counts[d.sample(r)];
    EXPECT_NEAR(double(counts[1.0]) / n, 0.1, 0.01);
    EXPECT_NEAR(double(counts[2.0]) / n, 0.2, 0.01);
    EXPECT_NEAR(double(counts[3.0]) / n, 0.7, 0.01);
    EXPECT_NEAR(d.mean(), 0.1 + 0.4 + 2.1, 1e-12);
}

TEST(Empirical, ZeroWeightOutcomeNeverDrawn)
{
    Rng r(11);
    EmpiricalDist d({5.0, 6.0}, {0.0, 1.0});
    for (int i = 0; i < 1000; ++i)
        EXPECT_DOUBLE_EQ(d.sample(r), 6.0);
}

TEST(Empirical, InvalidArgsPanic)
{
    EXPECT_THROW(EmpiricalDist({}, {}), PanicError);
    EXPECT_THROW(EmpiricalDist({1.0}, {1.0, 2.0}), PanicError);
    EXPECT_THROW(EmpiricalDist({1.0}, {0.0}), PanicError);
    EXPECT_THROW(EmpiricalDist({1.0, 2.0}, {1.0, -1.0}), PanicError);
}

/**
 * Property sweep over Zipf exponents: the head of the distribution
 * (top 10% of ranks) must hold a share of mass that grows with s.
 */
class ZipfSkewTest : public ::testing::TestWithParam<double>
{};

TEST_P(ZipfSkewTest, HeadMassGrowsWithExponent)
{
    double s = GetParam();
    ZipfDist d(1000, s);
    double head = 0;
    for (std::uint64_t k = 1; k <= 100; ++k)
        head += d.pmf(k);
    ZipfDist d_flatter(1000, s * 0.5);
    double head_flatter = 0;
    for (std::uint64_t k = 1; k <= 100; ++k)
        head_flatter += d_flatter.pmf(k);
    EXPECT_GT(head, head_flatter);
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfSkewTest,
                         ::testing::Values(0.6, 0.8, 1.0, 1.2, 1.5));

} // namespace
