/**
 * @file
 * Unit tests for design-space enumeration and Pareto analysis.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/design_space.hh"
#include "util/logging.hh"

namespace {

using namespace wsc;
using namespace wsc::core;

TEST(DesignSpace, FullEnumerationSize)
{
    // 6 platforms x 3 packagings x 3 sharing x 4 storage = 216.
    auto all = enumerateDesigns();
    EXPECT_EQ(all.size(), 216u);
}

TEST(DesignSpace, NamesUnique)
{
    auto all = enumerateDesigns();
    std::set<std::string> names;
    for (const auto &d : all)
        names.insert(d.name);
    EXPECT_EQ(names.size(), all.size());
}

TEST(DesignSpace, ContainsThePaperDesignPoints)
{
    auto all = enumerateDesigns();
    auto find = [&](const std::string &name) {
        for (const auto &d : all)
            if (d.name == name)
                return true;
        return false;
    };
    // The six baselines and the N1/N2 compositions (under their
    // systematic names).
    EXPECT_TRUE(find("srvr1/conventional-1U"));
    EXPECT_TRUE(find("mobl/dual-entry"));
    EXPECT_TRUE(find(
        "emb1/aggregated-microblade/mem-dynamic/laptop-flash"));
}

TEST(DesignSpace, RestrictedAxes)
{
    DesignSpaceOptions opts;
    opts.allPackaging = false;
    opts.allMemorySharing = false;
    opts.allStorage = false;
    auto some = enumerateDesigns(opts);
    EXPECT_EQ(some.size(), 6u); // platforms only
    for (const auto &d : some) {
        EXPECT_EQ(d.packaging, thermal::PackagingDesign::Conventional1U);
        EXPECT_FALSE(d.memorySharing.has_value());
        EXPECT_FALSE(d.storage.has_value());
    }
}

TEST(Pareto, SimpleFrontier)
{
    // Points: (objective, cost). C dominates B (better, cheaper).
    std::vector<double> obj{1.0, 2.0, 3.0, 4.0};
    std::vector<double> cost{1.0, 3.0, 2.0, 4.0};
    auto f = paretoFrontier(obj, cost);
    // A (cheap), C (dominates B), D (best objective).
    EXPECT_EQ(f, (std::vector<std::size_t>{0, 2, 3}));
}

TEST(Pareto, DominatedPointRemoved)
{
    std::vector<double> obj{5.0, 4.0};
    std::vector<double> cost{1.0, 2.0};
    auto f = paretoFrontier(obj, cost);
    EXPECT_EQ(f, (std::vector<std::size_t>{0}));
}

TEST(Pareto, TiesKeepTheBetterObjective)
{
    std::vector<double> obj{1.0, 3.0};
    std::vector<double> cost{2.0, 2.0};
    auto f = paretoFrontier(obj, cost);
    ASSERT_EQ(f.size(), 1u);
    EXPECT_EQ(f[0], 1u);
}

TEST(Pareto, AllNonDominatedSurvive)
{
    std::vector<double> obj{1.0, 2.0, 3.0};
    std::vector<double> cost{1.0, 2.0, 3.0};
    auto f = paretoFrontier(obj, cost);
    EXPECT_EQ(f.size(), 3u);
}

TEST(Pareto, MismatchedInputsPanic)
{
    EXPECT_THROW(paretoFrontier({1.0}, {1.0, 2.0}), PanicError);
    EXPECT_THROW(paretoFrontier({}, {}), PanicError);
}

} // namespace
