/**
 * @file
 * Tests for the multi-server cluster simulation (the paper's
 * aggregation-assumption validation).
 */

#include <gtest/gtest.h>

#include "perfsim/cluster_sim.hh"
#include "perfsim/perf_eval.hh"
#include "platform/catalog.hh"
#include "util/logging.hh"
#include "workloads/ytube.hh"

namespace {

using namespace wsc;
using namespace wsc::perfsim;

StationConfig
stations()
{
    PerfEvaluator ev;
    workloads::Ytube yt;
    return ev.stationsFor(platform::makeSystem(
                              platform::SystemClass::Emb1),
                          yt.traits(), {});
}

SimWindow
fastWindow()
{
    SimWindow w;
    w.warmupSeconds = 3.0;
    w.measureSeconds = 15.0;
    return w;
}

TEST(ClusterSim, LowLoadPassesOnAllPolicies)
{
    workloads::Ytube yt;
    auto st = stations();
    for (auto policy :
         {DispatchPolicy::RoundRobin, DispatchPolicy::Random,
          DispatchPolicy::LeastOutstanding,
          DispatchPolicy::TwoChoices}) {
        Rng rng(41);
        auto r = simulateCluster(yt, st, 4, policy, 40.0, fastWindow(),
                                 rng);
        EXPECT_TRUE(r.passes(yt.qos())) << to_string(policy);
        EXPECT_GT(r.completed, 300u);
        EXPECT_FALSE(r.saturated);
    }
}

TEST(ClusterSim, OverloadFailsQos)
{
    workloads::Ytube yt;
    auto st = stations();
    Rng rng(42);
    // Single emb1 sustains ~85 rps on ytube; 4 servers cannot do 800.
    auto r = simulateCluster(yt, st, 4, DispatchPolicy::RoundRobin,
                             800.0, fastWindow(), rng);
    EXPECT_FALSE(r.passes(yt.qos()));
}

TEST(ClusterSim, LoadSpreadAcrossServers)
{
    workloads::Ytube yt;
    auto st = stations();
    Rng rng(43);
    auto r = simulateCluster(yt, st, 4, DispatchPolicy::RoundRobin,
                             100.0, fastWindow(), rng);
    // Utilization roughly even: the max is close to the mean.
    EXPECT_GT(r.meanCpuUtilization, 0.0);
    EXPECT_LT(r.maxCpuUtilization,
              2.0 * r.meanCpuUtilization + 0.05);
}

TEST(ClusterSim, ScalingNearLinearWithGoodDispatch)
{
    // The paper's aggregation assumption: a 4-node cluster sustains
    // close to 4x the single-node rate under sensible dispatch.
    workloads::Ytube yt;
    auto st = stations();
    Rng rng(44);
    SearchParams sp;
    sp.iterations = 6;
    sp.window = fastWindow();
    auto scaling = measureClusterScaling(
        yt, st, 4, DispatchPolicy::LeastOutstanding, sp, rng);
    EXPECT_GT(scaling.scalingEfficiency, 0.85);
    EXPECT_LE(scaling.scalingEfficiency, 1.1);
}

TEST(ClusterSim, RandomDispatchNoBetterThanLeastOutstanding)
{
    workloads::Ytube yt;
    auto st = stations();
    SearchParams sp;
    sp.iterations = 5;
    sp.window = fastWindow();
    Rng r1(45), r2(45);
    auto lo = measureClusterScaling(
        yt, st, 4, DispatchPolicy::LeastOutstanding, sp, r1);
    auto rnd = measureClusterScaling(yt, st, 4,
                                     DispatchPolicy::Random, sp, r2);
    EXPECT_LE(rnd.scalingEfficiency, lo.scalingEfficiency + 0.08);
}

TEST(ClusterSim, SingleServerClusterMatchesSingleSearch)
{
    workloads::Ytube yt;
    auto st = stations();
    SearchParams sp;
    sp.iterations = 6;
    sp.window = fastWindow();
    Rng rng(46);
    auto scaling = measureClusterScaling(
        yt, st, 1, DispatchPolicy::RoundRobin, sp, rng);
    EXPECT_NEAR(scaling.scalingEfficiency, 1.0, 0.15);
}

TEST(ClusterSim, InvalidArgsPanic)
{
    workloads::Ytube yt;
    auto st = stations();
    Rng rng(47);
    EXPECT_THROW(simulateCluster(yt, st, 0, DispatchPolicy::RoundRobin,
                                 10.0, fastWindow(), rng),
                 PanicError);
    EXPECT_THROW(simulateCluster(yt, st, 2, DispatchPolicy::RoundRobin,
                                 0.0, fastWindow(), rng),
                 PanicError);
}

TEST(ClusterSim, ScalingSearchRejectsEmptyClusterEarly)
{
    // Regression: the servers == 0 config default used to survive all
    // the way into pick(), dividing by zero (RoundRobin) or
    // underflowing uniformInt's bounds (Random), and only after the
    // expensive single-server search had already run. The entry
    // assert must fire immediately.
    workloads::Ytube yt;
    auto st = stations();
    SearchParams sp;
    sp.iterations = 2;
    sp.window = fastWindow();
    Rng rng(48);
    EXPECT_THROW(measureClusterScaling(
                     yt, st, 0, DispatchPolicy::RoundRobin, sp, rng),
                 PanicError);
}

TEST(ClusterSim, TwoChoicesTracksLeastOutstanding)
{
    // Power of two choices should land within a whisker of the exact
    // full scan at this scale while doing O(1) work per arrival.
    workloads::Ytube yt;
    auto st = stations();
    SearchParams sp;
    sp.iterations = 5;
    sp.window = fastWindow();
    Rng r1(49), r2(49);
    auto lo = measureClusterScaling(
        yt, st, 4, DispatchPolicy::LeastOutstanding, sp, r1);
    auto p2c = measureClusterScaling(
        yt, st, 4, DispatchPolicy::TwoChoices, sp, r2);
    EXPECT_GT(p2c.scalingEfficiency, 0.8);
    EXPECT_LE(p2c.scalingEfficiency, lo.scalingEfficiency + 0.08);
}

TEST(ClusterSim, TwoChoicesDeterministic)
{
    workloads::Ytube yt;
    auto st = stations();
    Rng r1(50), r2(50);
    auto a = simulateCluster(yt, st, 6, DispatchPolicy::TwoChoices,
                             120.0, fastWindow(), r1);
    auto b = simulateCluster(yt, st, 6, DispatchPolicy::TwoChoices,
                             120.0, fastWindow(), r2);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_DOUBLE_EQ(a.p95Latency, b.p95Latency);
    EXPECT_DOUBLE_EQ(a.qosViolationFraction, b.qosViolationFraction);
}

TEST(ClusterSim, DispatchPolicyNames)
{
    EXPECT_EQ(to_string(DispatchPolicy::LeastOutstanding),
              "least-outstanding");
    EXPECT_EQ(to_string(DispatchPolicy::TwoChoices), "two-choices");
}

} // namespace
