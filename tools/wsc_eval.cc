/**
 * @file
 * wsc_eval: command-line design evaluator.
 *
 * Composes a design from flags (platform, packaging, memory sharing,
 * storage), evaluates it across the benchmark suite, and prints
 * absolute metrics plus ratios against a baseline platform.
 *
 * Examples:
 *   wsc_eval --system emb1
 *   wsc_eval --design n2 --baseline srvr1
 *   wsc_eval --system desk --packaging dual-entry \
 *            --memory-sharing dynamic --storage laptop-flash --csv
 */

#include <atomic>
#include <fstream>
#include <iostream>

#include "core/design.hh"
#include "core/ensemble.hh"
#include "core/evaluator.hh"
#include "core/report.hh"
#include "core/sweep_report.hh"
#include "obs/run_report.hh"
#include "sim/fast_mode.hh"
#include "util/args.hh"
#include "util/logging.hh"

using namespace wsc;
using namespace wsc::core;

namespace {

workloads::Benchmark
parseBenchmark(const std::string &name)
{
    for (auto b : workloads::allBenchmarks)
        if (workloads::to_string(b) == name)
            return b;
    fatal("unknown benchmark '" + name + "'");
}

platform::SystemClass
parseSystem(const std::string &name)
{
    for (auto cls : platform::allSystemClasses)
        if (platform::to_string(cls) == name)
            return cls;
    fatal("unknown system '" + name +
          "' (srvr1|srvr2|desk|mobl|emb1|emb2)");
}

DesignConfig
buildDesign(const ArgParser &args)
{
    std::string named = args.get("design");
    if (named == "n1")
        return DesignConfig::n1();
    if (named == "n2")
        return DesignConfig::n2();
    if (!named.empty())
        fatal("unknown design '" + named + "' (n1|n2 or use --system)");

    auto design =
        DesignConfig::baseline(parseSystem(args.get("system")));

    std::string packaging = args.get("packaging");
    if (packaging == "dual-entry")
        design.packaging = thermal::PackagingDesign::DualEntry;
    else if (packaging == "aggregated")
        design.packaging =
            thermal::PackagingDesign::AggregatedMicroblade;
    else if (packaging != "conventional")
        fatal("unknown packaging '" + packaging +
              "' (conventional|dual-entry|aggregated)");

    std::string sharing = args.get("memory-sharing");
    if (sharing == "static")
        design.memorySharing = memblade::Provisioning::Static;
    else if (sharing == "dynamic")
        design.memorySharing = memblade::Provisioning::Dynamic;
    else if (sharing != "none")
        fatal("unknown memory-sharing '" + sharing +
              "' (none|static|dynamic)");

    std::string storage = args.get("storage");
    if (storage == "laptop")
        design.storage = flashcache::StorageOption::remoteLaptop();
    else if (storage == "laptop-flash")
        design.storage = flashcache::StorageOption::remoteLaptopFlash();
    else if (storage == "laptop2-flash")
        design.storage =
            flashcache::StorageOption::remoteLaptop2Flash();
    else if (storage != "platform")
        fatal("unknown storage '" + storage +
              "' (platform|laptop|laptop-flash|laptop2-flash)");

    // Compose a descriptive name so evaluator caching stays distinct.
    design.name = args.get("system");
    if (packaging != "conventional")
        design.name += "+" + packaging;
    if (sharing != "none")
        design.name += "+mem-" + sharing;
    if (storage != "platform")
        design.name += "+" + storage;
    return design;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("wsc_eval",
                   "evaluate a warehouse-computing server design "
                   "across the benchmark suite");
    args.addOption("system", "platform class when composing a design",
                   "srvr2")
        .addOption("design", "named design (n1|n2) overriding --system",
                   "")
        .addOption("packaging",
                   "conventional|dual-entry|aggregated", "conventional")
        .addOption("memory-sharing", "none|static|dynamic", "none")
        .addOption("storage",
                   "platform|laptop|laptop-flash|laptop2-flash",
                   "platform")
        .addOption("baseline", "baseline platform for ratios", "srvr1")
        .addOption("tariff", "electricity tariff, $/MWh", "100")
        .addOption("activity", "activity factor (0, 1]", "0.75")
        .addOption("threads",
                   "worker threads for the simulations "
                   "(0 = hardware concurrency)",
                   "0")
        .addOption("report",
                   "write a structured JSON run report to this path", "")
        .addOption("warmup", "simulation warmup window, seconds", "10")
        .addOption("measure", "simulation measurement window, seconds",
                   "40")
        .addOption("search-iters",
                   "bisection steps in the throughput search", "9")
        .addOption("faults",
                   "fault-injection spec: none|all|comma-list of "
                   "components (e.g. disk,fan,memory-blade)",
                   "none")
        .addOption("mttf-scale",
                   "MTTF multiplier for accelerated-life compression "
                   "(repairs stay real-length)",
                   "1e-4")
        .addOption("avail-servers",
                   "cluster size for the availability runs", "8")
        .addOption("avail-horizon",
                   "availability simulation horizon, seconds", "600")
        .addOption("avail-epoch",
                   "QoS accounting epoch, seconds", "10")
        .addOption("avail-load",
                   "offered load as a fraction of aggregate "
                   "sustainable RPS",
                   "0.7")
        .addOption("avail-benchmark",
                   "interactive benchmark driving the availability runs",
                   "websearch")
        .addFlag("ensemble",
                 "run the warehouse-scale ensemble DES: rank the "
                 "diurnal power policies by measured energy x QoS")
        .addOption("ensemble-servers",
                   "fleet size for the ensemble runs", "10000")
        .addOption("ensemble-cells",
                   "dispatch cells (model topology)", "16")
        .addOption("ensemble-shards",
                   "event-queue shards (execution knob; results are "
                   "bit-identical across shard counts)",
                   "1")
        .addOption("ensemble-workers",
                   "threads executing the shards (0 = min(shards, "
                   "hardware))",
                   "1")
        .addOption("ensemble-queue",
                   "event-queue backend: heap|calendar (execution "
                   "knob; results are byte-identical)",
                   "heap")
        .addOption("ensemble-hours", "simulated hours", "24")
        .addOption("ensemble-seconds-per-hour",
                   "duty-cycle compression: simulated seconds per "
                   "modeled hour",
                   "5")
        .addOption("ensemble-profile",
                   "hourly load shape: internet-service|flat",
                   "internet-service")
        .addOption("ensemble-power-cap",
                   "ensemble power cap, watts (0 = uncapped)", "0")
        .addOption("ensemble-seed", "ensemble RNG seed", "1")
        .addFlag("ensemble-mmpp",
                 "enable MMPP flash-crowd bursts in the ensemble runs")
        .addOption("ensemble-policy",
                   "evaluate a single ensemble policy instead of the "
                   "full ranking: always-on|consolidate-idle|power-off "
                   "(empty = all three)",
                   "")
        .addFlag("trace",
                 "count kernel trace records and summarize on stderr")
        .addFlag("fast-mode",
                 "statistically-equivalent fast paths (not "
                 "bit-identical): batched sampling in the perf search "
                 "(contract " +
                     sim::FastModeConfig::contractVersion() +
                     ") and macro-event arrival coalescing in the "
                     "ensemble DES (contract " +
                     sim::EnsembleFastConfig::contractVersion() + ")")
        .addFlag("csv", "emit CSV instead of an aligned table");

    try {
        if (!args.parse(argc, argv))
            return 0;

        double threads = args.getDouble("threads");
        if (threads < 0 || threads > 4096)
            fatal("--threads must be in [0, 4096]");
        ThreadPool::setGlobalThreads(unsigned(threads));

        EvaluatorParams params;
        params.burden.tariffPerMWh = args.getDouble("tariff");
        params.burden.activityFactor = args.getDouble("activity");
        params.search.window.warmupSeconds = args.getDouble("warmup");
        params.search.window.measureSeconds = args.getDouble("measure");
        double iters = args.getDouble("search-iters");
        if (iters < 1 || iters > 64)
            fatal("--search-iters must be in [1, 64]");
        params.search.iterations = unsigned(iters);
        params.search.window.fastMode.enabled = args.flag("fast-mode");

        // --trace installs a shared (thread-safe) counting sink on
        // every simulation's event queue.
        std::atomic<std::uint64_t> traced[3] = {};
        if (args.flag("trace")) {
            params.search.window.tracer =
                [&traced](const sim::EventQueue::TraceRecord &r) {
                    ++traced[std::size_t(r.kind)];
                };
        }
        DesignEvaluator evaluator(params);

        auto design = buildDesign(args);
        auto baseline =
            DesignConfig::baseline(parseSystem(args.get("baseline")));

        // Dependability-aware evaluation: --faults enables the
        // availability mode; the default "none" leaves every zero-fault
        // output (table and report bytes) untouched. Parse and validate
        // up front so a bad spec fails before the perf sweep runs.
        auto spec = faults::FaultSpec::parse(args.get("faults"));
        spec.mttfScale = args.getDouble("mttf-scale");
        if (spec.mttfScale <= 0)
            fatal("--mttf-scale must be > 0");
        AvailabilityEvalParams availParams;
        if (spec.any()) {
            availParams.spec = spec;
            double servers = args.getDouble("avail-servers");
            if (servers < 1 || servers > 4096)
                fatal("--avail-servers must be in [1, 4096]");
            availParams.servers = unsigned(servers);
            availParams.horizonSeconds = args.getDouble("avail-horizon");
            availParams.epochSeconds = args.getDouble("avail-epoch");
            availParams.loadFactor = args.getDouble("avail-load");
            if (availParams.loadFactor <= 0 ||
                availParams.loadFactor > 1)
                fatal("--avail-load must be in (0, 1]");
            availParams.benchmark =
                parseBenchmark(args.get("avail-benchmark"));
        }

        // Run the whole (design + baseline) x suite matrix as one
        // parallel batch; the per-benchmark queries below then hit
        // the evaluator's cache.
        std::vector<EvalCell> cells;
        for (auto b : workloads::allBenchmarks) {
            cells.push_back({design, b});
            cells.push_back({baseline, b});
        }
        evaluator.evaluateBatch(cells);

        Table t({"Benchmark", "Perf", "Watts", "TCO-$",
                 "Perf rel " + baseline.name,
                 "Perf/TCO-$ rel " + baseline.name});
        for (auto b : workloads::allBenchmarks) {
            auto m = evaluator.evaluate(design, b);
            auto rel = evaluator.evaluateRelative(design, baseline, b);
            t.addRow({workloads::to_string(b), fmtF(m.perf, 3),
                      fmtF(m.watts, 1), fmtDollars(m.tcoDollars),
                      fmtPct(rel.perf),
                      fmtPct(rel.perfPerTcoDollar)});
        }
        auto agg = evaluator.aggregateRelative(design, baseline);
        t.addSeparator();
        t.addRow({"HMean", "-", "-", "-", fmtPct(agg.perf),
                  fmtPct(agg.perfPerTcoDollar)});

        std::cout << "Design: " << design.name << "\n\n";
        if (args.flag("csv"))
            t.printCsv(std::cout);
        else
            t.print(std::cout);

        std::vector<obs::AvailReport> availEntries;
        if (spec.any()) {
            std::vector<DesignConfig> designs{design, baseline};
            auto runs = evaluator.evaluateAvailabilityBatch(
                designs, availParams);

            Table at({"Design", "Avail %", "Goodput RPS", "Goodput %",
                      "MTT-QoS-viol s", "Failures", "Crashes",
                      "Blast max", "Avail x Perf/TCO-$ rel"});
            for (std::size_t i = 0; i < designs.size(); ++i) {
                const auto &r = runs[i];
                // Dependability-adjusted figure of merit: the perf-per-
                // TCO ratio a design actually delivers once the epochs
                // it cannot sustain QoS are discounted.
                auto rel = evaluator.evaluateRelative(
                    designs[i], baseline, availParams.benchmark);
                double baseAvail = runs.back().availability;
                double combined =
                    baseAvail > 0 ? rel.perfPerTcoDollar *
                                        r.availability / baseAvail
                                  : 0.0;
                at.addRow({designs[i].name,
                           fmtF(100.0 * r.availability, 2),
                           fmtF(r.goodputRps, 1),
                           fmtF(100.0 * r.goodputFraction, 1),
                           fmtF(r.meanTimeToQosViolationSeconds, 1),
                           fmtF(double(r.faults.totalFailures()), 0),
                           fmtF(double(r.faults.serverCrashes), 0),
                           fmtF(double(r.faults.blastMax), 0),
                           fmtPct(combined)});
                availEntries.push_back(
                    availReport(designs[i], availParams, r));
            }
            std::cout << "\nAvailability under faults ("
                      << spec.summary()
                      << ", mttf-scale=" << spec.mttfScale << ", "
                      << availParams.servers << " servers, "
                      << availParams.horizonSeconds << " s):\n\n";
            if (args.flag("csv"))
                at.printCsv(std::cout);
            else
                at.print(std::cout);
        }

        std::vector<obs::EnsembleReport> ensembleEntries;
        if (args.flag("ensemble")) {
            EnsembleEvalParams ep;
            double eServers = args.getDouble("ensemble-servers");
            if (eServers < 1 || eServers > 1e6)
                fatal("--ensemble-servers must be in [1, 1e6]");
            ep.energy.servers = unsigned(eServers);
            // Price both models off the evaluated design's server.
            ep.energy.wattsPerServer = design.server.totalWatts();
            ep.energy.activityFactor = params.burden.activityFactor;
            double eCells = args.getDouble("ensemble-cells");
            if (eCells < 1 || eCells > 4096)
                fatal("--ensemble-cells must be in [1, 4096]");
            ep.cells = unsigned(eCells);
            double eShards = args.getDouble("ensemble-shards");
            if (eShards < 1 || eShards > 4096)
                fatal("--ensemble-shards must be in [1, 4096]");
            ep.shards = unsigned(eShards);
            double eWorkers = args.getDouble("ensemble-workers");
            if (eWorkers < 0 || eWorkers > 4096)
                fatal("--ensemble-workers must be in [0, 4096]");
            ep.workers = unsigned(eWorkers);
            if (!sim::parseQueueKind(args.get("ensemble-queue"),
                                     ep.queue))
                fatal("--ensemble-queue must be heap|calendar");
            // Couple the fleet to the evaluated design: its relative
            // performance (harmonic mean over the suite, vs the
            // baseline) scales per-request service demand, so the
            // policy ranking reflects the platform being evaluated.
            ep.designName = design.name;
            ep.serviceDemandScale = agg.perf;
            double eHours = args.getDouble("ensemble-hours");
            if (eHours < 1 || eHours > 24)
                fatal("--ensemble-hours must be in [1, 24]");
            ep.hours = unsigned(eHours);
            ep.secondsPerHour =
                args.getDouble("ensemble-seconds-per-hour");
            if (ep.secondsPerHour <= 0.0)
                fatal("--ensemble-seconds-per-hour must be positive");
            ep.powerCapWatts = args.getDouble("ensemble-power-cap");
            if (ep.powerCapWatts < 0.0)
                fatal("--ensemble-power-cap must be >= 0");
            double eSeed = args.getDouble("ensemble-seed");
            if (eSeed < 0)
                fatal("--ensemble-seed must be >= 0");
            ep.seed = std::uint64_t(eSeed);
            ep.mmpp.enabled = args.flag("ensemble-mmpp");
            ep.fast.enabled = args.flag("fast-mode");

            std::string policyName = args.get("ensemble-policy");
            if (policyName == "always-on")
                ep.policies = {PowerPolicy::AlwaysOn};
            else if (policyName == "consolidate-idle")
                ep.policies = {PowerPolicy::ConsolidateIdle};
            else if (policyName == "power-off")
                ep.policies = {PowerPolicy::PowerOff};
            else if (!policyName.empty())
                fatal("unknown ensemble policy '" + policyName +
                      "' (always-on|consolidate-idle|power-off)");

            std::string shape = args.get("ensemble-profile");
            DiurnalProfile profile;
            if (shape == "internet-service")
                profile = DiurnalProfile::internetService();
            else if (shape == "flat")
                profile = DiurnalProfile::flat();
            else
                fatal("unknown ensemble profile '" + shape +
                      "' (internet-service|flat)");

            auto ranked = rankEnsemblePolicies(profile, ep);

            Table et({"Policy", "kWh/day", "Analytic kWh", "Mean awake",
                      "QoS attain %", "p95 s", "Wakes", "Boots",
                      "Score"});
            for (const auto &o : ranked) {
                const auto &m = o.measured;
                et.addRow({to_string(o.policy), fmtF(m.kWhPerDay, 1),
                           fmtF(o.analytical.kWhPerDay, 1),
                           fmtF(m.meanAwakeServers, 1),
                           fmtF(100.0 * m.qosAttainment, 2),
                           fmtF(m.p95, 3), fmtF(double(m.wakes), 0),
                           fmtF(double(m.boots), 0),
                           fmtF(m.score, 1)});
                ensembleEntries.push_back(ensembleReport(o));
            }
            std::cout << "\nEnsemble policy ranking for design "
                      << design.name << " (service demand x"
                      << fmtF(1.0 / ep.serviceDemandScale, 3) << ", "
                      << ep.energy.servers << " servers, " << ep.cells
                      << " cells, " << ep.hours << " h x "
                      << ep.secondsPerHour << " s, profile=" << shape
                      << (ep.mmpp.enabled ? ", mmpp" : "")
                      << (ep.fast.enabled
                              ? ", " + sim::EnsembleFastConfig::
                                           contractVersion()
                              : "")
                      << ", queue=" << sim::queueKindName(ep.queue)
                      << "; score = kWh / attainment, lower wins):\n\n";
            if (args.flag("csv"))
                et.printCsv(std::cout);
            else
                et.print(std::cout);
        }

        if (args.flag("trace")) {
            using Kind = sim::EventQueue::TraceRecord::Kind;
            std::cerr << "trace: scheduled="
                      << traced[std::size_t(Kind::Schedule)].load()
                      << " dispatched="
                      << traced[std::size_t(Kind::Dispatch)].load()
                      << " cancelled="
                      << traced[std::size_t(Kind::Cancel)].load()
                      << "\n";
        }

        std::string report_path = args.get("report");
        if (!report_path.empty()) {
            auto report = buildSweepReport(evaluator, cells, "wsc_eval",
                                           std::uint64_t(threads));
            report.avail = availEntries;
            report.ensemble = ensembleEntries;
            if (args.flag("fast-mode"))
                report.fastMode = sim::FastModeConfig::contractVersion();
            std::ofstream out(report_path);
            if (!out)
                fatal("cannot open report path '" + report_path + "'");
            out << obs::toJson(report) << "\n";
            if (!out)
                fatal("failed writing report to '" + report_path + "'");
            std::cerr << "report: " << report_path << " ("
                      << report.cells.size() << " cells)\n";
        }
        return 0;
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
