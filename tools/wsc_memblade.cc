/**
 * @file
 * wsc_memblade: trace-driven memory-blade analysis tool.
 *
 * Replays a page trace — either a synthetic trace for one of the
 * benchmark profiles or a user-supplied trace file (.trace text /
 * .btrace binary) — through the two-level memory simulator and
 * reports miss rates, slowdowns per link, and blade-sharing limits.
 *
 * Examples:
 *   wsc_memblade --benchmark websearch --local 0.25
 *   wsc_memblade --trace /path/app.trace --frames 120000 --policy lru
 *   wsc_memblade --benchmark ytube --generate /tmp/ytube.btrace
 */

#include <cmath>
#include <iostream>

#include "memblade/contention.hh"
#include "memblade/stack_distance.hh"
#include "memblade/trace_io.hh"
#include "util/args.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace wsc;
using namespace wsc::memblade;

namespace {

workloads::Benchmark
parseBenchmark(const std::string &name)
{
    for (auto b : workloads::allBenchmarks)
        if (workloads::to_string(b) == name)
            return b;
    fatal("unknown benchmark '" + name +
          "' (websearch|webmail|ytube|mapred-wc|mapred-wr)");
}

PolicyKind
parsePolicy(const std::string &name)
{
    if (name == "lru")
        return PolicyKind::Lru;
    if (name == "random")
        return PolicyKind::Random;
    if (name == "clock")
        return PolicyKind::Clock;
    fatal("unknown policy '" + name + "' (lru|random|clock)");
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("wsc_memblade",
                   "trace-driven two-level memory analysis");
    args.addOption("benchmark",
                   "synthetic profile to replay "
                   "(websearch|webmail|ytube|mapred-wc|mapred-wr)",
                   "websearch")
        .addOption("trace", "replay this trace file instead", "")
        .addOption("frames",
                   "local frames when replaying a trace file", "100000")
        .addOption("local",
                   "local fraction of the footprint (synthetic mode)",
                   "0.25")
        .addOption("policy", "lru|random|clock", "random")
        .addOption("accesses", "synthetic trace length", "2000000")
        .addOption("seed", "RNG seed", "42")
        .addOption("generate",
                   "write the synthetic trace to this file and exit",
                   "")
        .addOption("curve",
                   "print an N-point local-fraction LRU miss-rate "
                   "curve from one stack-distance pass and exit",
                   "0");

    try {
        if (!args.parse(argc, argv))
            return 0;

        auto policy = parsePolicy(args.get("policy"));
        auto seed = std::uint64_t(args.getDouble("seed"));

        ReplayStats stats;
        double touch_rate = 0.0;
        std::string label;

        if (!args.get("trace").empty()) {
            auto trace = loadTrace(args.get("trace"));
            auto frames = std::size_t(args.getDouble("frames"));
            stats = replayTrace(trace, frames, policy, seed);
            label = args.get("trace");
            std::cout << "Replayed " << trace.size()
                      << " accesses from " << label << "\n";
        } else {
            auto b = parseBenchmark(args.get("benchmark"));
            auto profile = profileFor(b);
            auto n = std::uint64_t(args.getDouble("accesses"));
            if (!args.get("generate").empty()) {
                auto trace = generateTrace(profile, n, Rng(seed));
                saveTrace(args.get("generate"), trace);
                std::cout << "Wrote " << trace.size()
                          << " accesses to " << args.get("generate")
                          << "\n";
                return 0;
            }
            double curve_pts = args.getDouble("curve");
            if (curve_pts < 0.0 || curve_pts > 1e6)
                fatal("--curve must be in [0, 1e6]");
            auto points = unsigned(curve_pts);
            if (points > 0) {
                // Exact LRU at every capacity from one replay pass.
                auto curve = lruCurveForProfile(profile, n, seed);
                std::cout << "LRU miss-rate curve for " << profile.name
                          << " (" << n << " accesses, single pass):\n";
                Table c({"Local fraction", "Miss rate",
                         "Warm miss rate", "PCIe x4 slowdown"});
                for (unsigned i = 1; i <= points; ++i) {
                    double f = double(i) / double(points);
                    auto frames = std::size_t(std::ceil(
                        double(profile.footprintPages) * f));
                    auto st = curve.statsAt(frames);
                    c.addRow({fmtPct(f, 2), fmtPct(st.missRate(), 2),
                              fmtPct(st.warmMissRate(), 2),
                              fmtPct(slowdown(st, profile,
                                              RemoteLink::pcieX4()),
                                     2)});
                }
                c.print(std::cout);
                return 0;
            }
            stats = replayProfile(profile, args.getDouble("local"),
                                  policy, n, seed);
            touch_rate = profile.touchesPerSecond;
            label = profile.name;
        }

        Table t({"Statistic", "Value"});
        t.addRow({"Accesses", std::to_string(stats.accesses)});
        t.addRow({"Misses (remote fetches)",
                  std::to_string(stats.misses)});
        t.addRow({"Cold (first-touch) misses",
                  std::to_string(stats.coldMisses)});
        t.addRow({"Miss rate", fmtPct(stats.missRate(), 2)});
        t.addRow({"Warm miss rate", fmtPct(stats.warmMissRate(), 2)});
        t.print(std::cout);

        if (touch_rate > 0.0) {
            auto profile =
                profileFor(parseBenchmark(args.get("benchmark")));
            std::cout << "\nSlowdowns (touch rate "
                      << fmtF(touch_rate, 0) << "/s):\n";
            Table s({"Link", "Slowdown"});
            for (auto link :
                 {RemoteLink::pcieX4(), RemoteLink::cbf(),
                  RemoteLink::cbfWithSetup()}) {
                s.addRow({link.name,
                          fmtPct(slowdown(stats, profile, link), 2)});
            }
            s.print(std::cout);

            double base = contendedSlowdown(stats, profile,
                                            RemoteLink::pcieX4(), 1,
                                            BladeLinkParams{});
            if (base > 0.0) {
                unsigned max_share = maxServersPerBlade(
                    stats, profile, RemoteLink::pcieX4(), 1.5 * base,
                    BladeLinkParams{}, 4096);
                std::cout << "\nServers per blade at <=1.5x the "
                             "uncontended slowdown: "
                          << max_share << "\n";
            }
        }
        return 0;
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
