/**
 * @file
 * wsc_memblade: trace-driven memory-blade analysis tool.
 *
 * Replays a page trace — either a synthetic trace for one of the
 * benchmark profiles or a user-supplied trace file (.trace text /
 * .btrace binary / .strace streaming) — through the two-level memory
 * simulator and reports miss rates, slowdowns per link, and
 * blade-sharing limits. Streaming traces replay straight off an mmap
 * without materializing the access sequence; the full policy zoo
 * (lru|random|clock|arc|slru|2q|lfuda) is available everywhere, and
 * --hierarchy models an inclusive/exclusive two-level setup with an
 * optional sequential prefetch buffer.
 *
 * Examples:
 *   wsc_memblade --benchmark websearch --local 0.25 --policy arc
 *   wsc_memblade --trace /path/app.strace --frames 120000 --policy 2q
 *   wsc_memblade --trace /path/app.strace --frames 100000 --curve 10
 *   wsc_memblade --benchmark ytube --generate /tmp/ytube.strace
 *   wsc_memblade --trace app.strace --frames 50000 --hierarchy \
 *       exclusive --l2-frames 200000 --prefetch-depth 4
 */

#include <cmath>
#include <iostream>

#include "memblade/contention.hh"
#include "memblade/hierarchy.hh"
#include "memblade/stack_distance.hh"
#include "memblade/trace_io.hh"
#include "memblade/trace_stream.hh"
#include "util/args.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace wsc;
using namespace wsc::memblade;

namespace {

workloads::Benchmark
parseBenchmark(const std::string &name)
{
    for (auto b : workloads::allBenchmarks)
        if (workloads::to_string(b) == name)
            return b;
    fatal("unknown benchmark '" + name +
          "' (websearch|webmail|ytube|mapred-wc|mapred-wr)");
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

void
printHierarchy(const HierarchyStats &hs, const HierarchyParams &hp)
{
    Table t({"Statistic", "Value"});
    t.addRow({"Mode", to_string(hp.mode)});
    t.addRow({"L1 / L2 frames", std::to_string(hp.l1Frames) + " / " +
                                    std::to_string(hp.l2Frames)});
    t.addRow({"Accesses", std::to_string(hs.accesses)});
    t.addRow({"L1 hits", std::to_string(hs.l1Hits)});
    t.addRow({"L2 hits", std::to_string(hs.l2Hits)});
    t.addRow({"Prefetch-buffer hits",
              std::to_string(hs.prefetchHits)});
    t.addRow({"Misses", std::to_string(hs.misses)});
    t.addRow({"Miss rate", fmtPct(hs.missRate(), 2)});
    t.print(std::cout);
}

/** Print an N-point LRU miss-rate curve over capacity fractions. */
void
printStreamCurve(TraceStream &ts, unsigned points)
{
    auto curve = lruCurveFromStream(ts);
    std::uint64_t footprint = ts.pageBound();
    std::cout << "LRU miss-rate curve (" << ts.count()
              << " accesses, page bound " << footprint
              << ", single pass):\n";
    Table c({"Capacity fraction", "Frames", "Miss rate"});
    for (unsigned i = 1; i <= points; ++i) {
        double f = double(i) / double(points);
        auto frames =
            std::size_t(std::ceil(double(footprint) * f));
        auto st = curve.statsAt(frames);
        c.addRow({fmtPct(f, 2), std::to_string(frames),
                  fmtPct(st.missRate(), 2)});
    }
    c.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("wsc_memblade",
                   "trace-driven two-level memory analysis");
    args.addOption("benchmark",
                   "synthetic profile to replay "
                   "(websearch|webmail|ytube|mapred-wc|mapred-wr)",
                   "websearch")
        .addOption("trace", "replay this trace file instead", "")
        .addOption("frames",
                   "local frames when replaying a trace file", "100000")
        .addOption("local",
                   "local fraction of the footprint (synthetic mode)",
                   "0.25")
        .addOption("policy", "lru|random|clock|arc|slru|2q|lfuda",
                   "random")
        .addOption("accesses", "synthetic trace length", "2000000")
        .addOption("seed", "RNG seed", "42")
        .addOption("generate",
                   "write the synthetic trace to this file and exit",
                   "")
        .addOption("curve",
                   "print an N-point local-fraction LRU miss-rate "
                   "curve from one stack-distance pass and exit",
                   "0")
        .addOption("hierarchy",
                   "two-level mode: inclusive|exclusive (replaces the "
                   "flat replay)",
                   "")
        .addOption("l2-frames",
                   "L2 frames in --hierarchy mode", "400000")
        .addOption("prefetch-depth",
                   "sequential prefetch distance in --hierarchy mode "
                   "(0 = off)",
                   "0")
        .addOption("prefetch-frames",
                   "prefetch FIFO capacity (0 = 4x depth)", "0");

    try {
        if (!args.parse(argc, argv))
            return 0;

        auto policy = policyFromString(args.get("policy"));
        auto seed = std::uint64_t(args.getDouble("seed"));

        // getDouble + unsigned cast wraps on negatives; range-check
        // every count-like option before converting.
        auto countOption = [&](const char *name, double lo, double hi) {
            double v = args.getDouble(name);
            if (v < lo || v > hi)
                fatal(std::string("--") + name + " must be in [" +
                      fmtF(lo, 0) + ", " + fmtF(hi, 0) + "]");
            return std::size_t(v);
        };

        HierarchyParams hp;
        bool hierarchical = !args.get("hierarchy").empty();
        if (hierarchical) {
            hp.mode = hierarchyModeFromString(args.get("hierarchy"));
            hp.l2Frames = countOption("l2-frames", 1, 1e12);
            hp.prefetchDepth = countOption("prefetch-depth", 0, 1e6);
            hp.prefetchFrames = countOption("prefetch-frames", 0, 1e9);
        }

        double curve_pts = args.getDouble("curve");
        if (curve_pts < 0.0 || curve_pts > 1e6)
            fatal("--curve must be in [0, 1e6]");
        auto points = unsigned(curve_pts);

        ReplayStats stats;
        double touch_rate = 0.0;
        std::string label;

        if (!args.get("trace").empty()) {
            const std::string path = args.get("trace");
            auto frames = countOption("frames", 1, 1e12);
            bool streaming = endsWith(path, ".strace");
            if (hierarchical) {
                hp.l1Frames = frames;
                HierarchyStats hs;
                if (streaming) {
                    TraceStream ts(path);
                    hs = replayHierarchyStream(ts, hp);
                } else {
                    auto trace = loadTrace(path);
                    hs = replayHierarchyPages(trace.data(),
                                              trace.size(), hp);
                }
                printHierarchy(hs, hp);
                return 0;
            }
            if (streaming) {
                TraceStream ts(path);
                if (points > 0) {
                    if (policy != PolicyKind::Lru)
                        fatal("--curve needs --policy lru: only LRU "
                              "has the Mattson inclusion property");
                    printStreamCurve(ts, points);
                    return 0;
                }
                stats = replayStream(ts, policy, frames, Rng(seed));
                label = path;
                std::cout << "Streamed " << stats.accesses
                          << " accesses from " << label << " ("
                          << (ts.mapped() ? "mmap" : "buffered")
                          << ")\n";
            } else {
                auto trace = loadTrace(path);
                stats = replayTrace(trace, frames, policy, seed);
                label = path;
                std::cout << "Replayed " << trace.size()
                          << " accesses from " << label << "\n";
            }
        } else {
            auto b = parseBenchmark(args.get("benchmark"));
            auto profile = profileFor(b);
            auto n = std::uint64_t(countOption("accesses", 0, 1e12));
            if (!args.get("generate").empty()) {
                auto trace = generateTrace(profile, n, Rng(seed));
                saveTrace(args.get("generate"), trace);
                std::cout << "Wrote " << trace.size()
                          << " accesses to " << args.get("generate")
                          << "\n";
                return 0;
            }
            if (hierarchical) {
                hp.l1Frames = std::size_t(std::ceil(
                    double(profile.footprintPages) *
                    args.getDouble("local")));
                auto hs =
                    replayHierarchyProfile(profile, hp, n, seed);
                printHierarchy(hs, hp);
                return 0;
            }
            if (points > 0) {
                // Exact LRU at every capacity from one replay pass.
                auto curve = lruCurveForProfile(profile, n, seed);
                std::cout << "LRU miss-rate curve for " << profile.name
                          << " (" << n << " accesses, single pass):\n";
                Table c({"Local fraction", "Miss rate",
                         "Warm miss rate", "PCIe x4 slowdown"});
                for (unsigned i = 1; i <= points; ++i) {
                    double f = double(i) / double(points);
                    auto frames = std::size_t(std::ceil(
                        double(profile.footprintPages) * f));
                    auto st = curve.statsAt(frames);
                    c.addRow({fmtPct(f, 2), fmtPct(st.missRate(), 2),
                              fmtPct(st.warmMissRate(), 2),
                              fmtPct(slowdown(st, profile,
                                              RemoteLink::pcieX4()),
                                     2)});
                }
                c.print(std::cout);
                return 0;
            }
            stats = replayProfile(profile, args.getDouble("local"),
                                  policy, n, seed);
            touch_rate = profile.touchesPerSecond;
            label = profile.name;
        }

        Table t({"Statistic", "Value"});
        t.addRow({"Accesses", std::to_string(stats.accesses)});
        t.addRow({"Misses (remote fetches)",
                  std::to_string(stats.misses)});
        t.addRow({"Cold (first-touch) misses",
                  std::to_string(stats.coldMisses)});
        t.addRow({"Miss rate", fmtPct(stats.missRate(), 2)});
        t.addRow({"Warm miss rate", fmtPct(stats.warmMissRate(), 2)});
        t.print(std::cout);

        if (touch_rate > 0.0) {
            auto profile =
                profileFor(parseBenchmark(args.get("benchmark")));
            std::cout << "\nSlowdowns (touch rate "
                      << fmtF(touch_rate, 0) << "/s):\n";
            Table s({"Link", "Slowdown"});
            for (auto link :
                 {RemoteLink::pcieX4(), RemoteLink::cbf(),
                  RemoteLink::cbfWithSetup()}) {
                s.addRow({link.name,
                          fmtPct(slowdown(stats, profile, link), 2)});
            }
            s.print(std::cout);

            double base = contendedSlowdown(stats, profile,
                                            RemoteLink::pcieX4(), 1,
                                            BladeLinkParams{});
            if (base > 0.0) {
                unsigned max_share = maxServersPerBlade(
                    stats, profile, RemoteLink::pcieX4(), 1.5 * base,
                    BladeLinkParams{}, 4096);
                std::cout << "\nServers per blade at <=1.5x the "
                             "uncontended slowdown: "
                          << max_share << "\n";
            }
        }
        return 0;
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
