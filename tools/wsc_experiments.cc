/**
 * @file
 * wsc_experiments: print the experiment registry.
 *
 * Lists every reproduced paper artifact and extension study with the
 * bench binary that regenerates it — the machine-readable index
 * behind DESIGN.md and EXPERIMENTS.md.
 *
 * Examples:
 *   wsc_experiments
 *   wsc_experiments --kind paper-figure
 *   wsc_experiments --csv
 */

#include <iostream>

#include "core/experiments.hh"
#include "util/args.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace wsc;
using namespace wsc::core;

int
main(int argc, char **argv)
{
    ArgParser args("wsc_experiments",
                   "list the reproduction's experiment registry");
    args.addOption("kind",
                   "filter: paper-table|paper-figure|paper-claim|"
                   "extension|all",
                   "all")
        .addFlag("csv", "emit CSV instead of an aligned table");

    try {
        if (!args.parse(argc, argv))
            return 0;
        std::string kind = args.get("kind");

        Table t({"Id", "Kind", "Title", "Bench", "Paper reference"});
        for (const auto &e : allExperiments()) {
            if (kind != "all" && to_string(e.kind) != kind)
                continue;
            t.addRow({e.id, to_string(e.kind), e.title, e.benchTarget,
                      e.paperReference.empty() ? "-"
                                               : e.paperReference});
        }
        if (t.rowCount() == 0)
            fatal("no experiments of kind '" + kind + "'");
        if (args.flag("csv"))
            t.printCsv(std::cout);
        else
            t.print(std::cout);
        return 0;
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
