/**
 * @file
 * wsc_trace: trace conversion and inspection.
 *
 * Converts page traces between the three on-disk formats — .trace
 * (text), .btrace (legacy binary v2), .strace (streaming, mmap-ready,
 * page bound in the header) — or synthesizes one from a benchmark
 * generator, and prints stats. Conversions from a generator to
 * .strace stream straight through the incremental writer, so
 * arbitrarily long traces convert in constant memory.
 *
 * Examples:
 *   wsc_trace --in app.trace --out app.strace
 *   wsc_trace --benchmark ytube --accesses 100000000 --out big.strace
 *   wsc_trace --in big.strace --stats
 */

#include <iostream>
#include <vector>

#include "memblade/trace_io.hh"
#include "memblade/trace_stream.hh"
#include "util/args.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace wsc;
using namespace wsc::memblade;

namespace {

workloads::Benchmark
parseBenchmark(const std::string &name)
{
    for (auto b : workloads::allBenchmarks)
        if (workloads::to_string(b) == name)
            return b;
    fatal("unknown benchmark '" + name +
          "' (websearch|webmail|ytube|mapred-wc|mapred-wr)");
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

void
printStats(const std::string &label, std::uint64_t count,
           std::uint64_t pageBound, const std::string &extra)
{
    Table t({"Statistic", "Value"});
    t.addRow({"Trace", label});
    t.addRow({"Accesses", std::to_string(count)});
    t.addRow({"Page-id bound", std::to_string(pageBound)});
    if (!extra.empty())
        t.addRow({"Details", extra});
    t.print(std::cout);
}

std::uint64_t
boundOf(const std::vector<PageId> &trace)
{
    std::uint64_t bound = 0;
    for (PageId p : trace)
        bound = std::max(bound, p + 1);
    return bound;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("wsc_trace", "page-trace conversion and stats");
    args.addOption("in",
                   "input trace (.trace|.btrace|.strace); omit to use "
                   "the generator",
                   "")
        .addOption("out",
                   "output trace (.trace|.btrace|.strace); omit for "
                   "--stats only",
                   "")
        .addOption("benchmark",
                   "generator profile when --in is omitted "
                   "(websearch|webmail|ytube|mapred-wc|mapred-wr)",
                   "websearch")
        .addOption("accesses", "generator trace length", "2000000")
        .addOption("seed", "generator RNG seed", "42");
    args.addFlag("stats", "print trace statistics");

    try {
        if (!args.parse(argc, argv))
            return 0;

        const std::string in = args.get("in");
        const std::string out = args.get("out");
        bool wantStats = args.flag("stats") || out.empty();

        if (in.empty()) {
            // Generator source.
            auto b = parseBenchmark(args.get("benchmark"));
            auto profile = profileFor(b);
            // getDouble + unsigned cast wraps on negatives; reject
            // out-of-range counts before converting.
            double nd = args.getDouble("accesses");
            if (nd < 0.0 || nd > 1e12)
                fatal("--accesses must be in [0, 1e12]");
            auto n = std::uint64_t(nd);
            auto seed = std::uint64_t(args.getDouble("seed"));
            if (out.empty() && !args.flag("stats"))
                fatal("generator mode needs --out (or --stats)");
            if (!out.empty() && endsWith(out, ".strace")) {
                // Constant-memory conversion: generate in batches
                // straight into the streaming writer.
                TraceGenerator gen(profile, Rng(seed));
                TraceStreamWriter w(out);
                std::vector<PageId> buf(4096);
                std::uint64_t done = 0;
                while (done < n) {
                    auto k = std::size_t(std::min<std::uint64_t>(
                        buf.size(), n - done));
                    gen.nextBatch(buf.data(), k);
                    for (std::size_t i = 0; i < k; ++i)
                        w.append(buf[i]);
                    done += k;
                }
                w.close();
                std::cout << "Wrote " << n << " accesses to " << out
                          << "\n";
                if (wantStats && args.flag("stats")) {
                    auto info = traceStreamInfo(out);
                    printStats(out, info.count, info.pageBound,
                               "streaming v1");
                }
                return 0;
            }
            auto trace = generateTrace(profile, n, Rng(seed));
            if (!out.empty()) {
                saveTrace(out, trace);
                std::cout << "Wrote " << trace.size()
                          << " accesses to " << out << "\n";
            }
            if (wantStats)
                printStats(profile.name, trace.size(),
                           boundOf(trace), "generator");
            return 0;
        }

        // File source. Streaming inputs with no conversion never
        // materialize; everything else goes through a vector (the
        // legacy formats are not streamable anyway).
        if (endsWith(in, ".strace") && out.empty()) {
            auto info = traceStreamStats(in);
            printStats(in, info.count, info.pageBound,
                       std::to_string(info.writes) + " writes, " +
                           (info.hasTimestamps ? "timestamped"
                                               : "no timestamps"));
            return 0;
        }

        auto trace = loadTrace(in);
        if (!out.empty()) {
            saveTrace(out, trace);
            std::cout << "Converted " << trace.size()
                      << " accesses: " << in << " -> " << out << "\n";
        }
        if (wantStats)
            printStats(in, trace.size(), boundOf(trace), "");
        return 0;
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
